//! Integration tests of the `diaspec-gen` command line.

use std::path::PathBuf;
use std::process::Command;

fn gen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_diaspec-gen"))
}

fn spec_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../specs")
        .join(name)
}

#[test]
fn generates_rust_framework_to_directory() {
    let out = std::env::temp_dir().join("diaspec-gen-cli-rust");
    let _ = std::fs::remove_dir_all(&out);
    let status = gen()
        .arg(spec_path("cooker.spec"))
        .args(["--language", "rust", "--out"])
        .arg(&out)
        .status()
        .expect("binary runs");
    assert!(status.success());
    let framework = std::fs::read_to_string(out.join("framework.rs")).unwrap();
    assert!(framework.contains("pub trait AlertImpl"));
    std::fs::remove_dir_all(&out).unwrap();
}

#[test]
fn generates_java_framework_to_directory() {
    let out = std::env::temp_dir().join("diaspec-gen-cli-java");
    let _ = std::fs::remove_dir_all(&out);
    let status = gen()
        .arg(spec_path("parking.spec"))
        .args(["--language", "java", "--out"])
        .arg(&out)
        .status()
        .expect("binary runs");
    assert!(status.success());
    assert!(out.join("AbstractParkingAvailability.java").exists());
    assert!(out.join("MapReduce.java").exists());
    std::fs::remove_dir_all(&out).unwrap();
}

#[test]
fn dot_flag_prints_a_digraph() {
    let output = gen()
        .arg(spec_path("cooker.spec"))
        .arg("--dot")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.starts_with("digraph \"cooker\""), "{stdout}");
    assert!(stdout.contains("cluster_contexts"));
}

#[test]
fn chains_flag_prints_functional_chains() {
    let output = gen()
        .arg(spec_path("cooker.spec"))
        .arg("--chains")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(
        stdout.contains("Clock.tickSecond -> [Alert] -> (Notify) -> TvPrompter.askQuestion()"),
        "{stdout}"
    );
    assert_eq!(stdout.lines().count(), 2, "{stdout}");
}

#[test]
fn report_flag_prints_json() {
    let output = gen()
        .arg(spec_path("homeassist.spec"))
        .arg("--report")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let report: serde_json::Value =
        serde_json::from_slice(&output.stdout).expect("valid JSON report");
    assert!(report["total_loc"].as_u64().unwrap() > 100);
    assert!(report["abstract_methods"].as_u64().unwrap() >= 2);
}

#[test]
fn invalid_spec_fails_with_diagnostics() {
    let dir = std::env::temp_dir().join("diaspec-gen-cli-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.spec");
    std::fs::write(&bad, "device D extends Ghost { }").unwrap();
    let output = gen()
        .arg(&bad)
        .arg("--report")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("E0202"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_file_and_bad_flags_are_reported() {
    let output = gen().arg("/nonexistent/x.spec").output().expect("runs");
    assert!(!output.status.success());

    let output = gen()
        .arg(spec_path("cooker.spec"))
        .args(["--language", "cobol"])
        .output()
        .expect("runs");
    assert!(!output.status.success());
    assert!(String::from_utf8(output.stderr)
        .unwrap()
        .contains("unknown language"));

    let output = gen().arg("--bogus-flag").output().expect("runs");
    assert!(!output.status.success());
}

#[test]
fn help_prints_usage() {
    let output = gen().arg("--help").output().expect("runs");
    assert!(output.status.success());
    assert!(String::from_utf8(output.stdout).unwrap().contains("usage:"));
}

#[test]
fn deploy_subcommand_writes_manifest_and_node_sources() {
    let out = std::env::temp_dir().join("diaspec-gen-cli-deploy");
    let _ = std::fs::remove_dir_all(&out);
    let output = gen()
        .arg("deploy")
        .arg(spec_path("parking.spec"))
        .args(["--edges", "2", "--port-base", "7171", "--out"])
        .arg(&out)
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let manifest = std::fs::read_to_string(out.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"design\": \"parking\""));
    assert!(manifest.contains("\"ParkingLotEnum\""));
    assert!(manifest.contains("127.0.0.1:7172"));
    assert!(out.join("node_coordinator.rs").exists());
    assert!(out.join("node_edge0.rs").exists());
    assert!(out.join("node_edge1.rs").exists());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(
        stderr.contains("1 coordinator + 2 edge node(s)"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&out).unwrap();
}

#[test]
fn deploy_without_out_prints_the_manifest() {
    let output = gen()
        .arg("deploy")
        .arg(spec_path("parking.spec"))
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let manifest: serde_json::Value = serde_json::from_str(&stdout).unwrap();
    assert_eq!(
        manifest["coordinator"]["name"].as_str(),
        Some("coordinator")
    );
    assert_eq!(
        manifest["shard"]["enumeration"].as_str(),
        Some("ParkingLotEnum")
    );
}

#[test]
fn deploy_rejects_an_unshardable_design() {
    let output = gen()
        .arg("deploy")
        .arg(spec_path("cooker.spec"))
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("enumeration"), "{stderr}");
}

//! # diaspec-codegen — the design compiler
//!
//! Paper §V: *"our approach provides the developer with a design compiler
//! that generates an application framework tailored to a given application
//! design"*. This crate is that compiler, reproduced in Rust, with two
//! backends:
//!
//! - [`generate_rust`] emits a typed Rust framework module targeting the
//!   `diaspec-runtime` component traits — abstract component traits per
//!   context/controller, typed `get`/`do` facades, typed MapReduce
//!   interfaces, and `ValueCodec` data types. The case-study applications
//!   in this repository are implemented against these generated modules.
//! - [`generate_java`] emits the Java framework matching the paper's
//!   Figures 9–11 (`AbstractAlert`, `MapReduce<K1..V3>`,
//!   `whereLocation(...)` composites), demonstrating the language
//!   independence claimed in §V.
//!
//! [`metrics`] measures the generated code (experiment E9: the "up to 80%
//! generated code" claim of TSE'12 \[8\]).
//!
//! ## Example
//!
//! ```
//! use diaspec_core::compile_str;
//! use diaspec_codegen::{generate_rust, generate_java};
//!
//! let spec = compile_str(r#"
//!     device Clock { source tickSecond as Integer; }
//!     device Siren { action wail; }
//!     context Overdue as Integer { when provided tickSecond from Clock maybe publish; }
//!     controller Alarm { when provided Overdue do wail on Siren; }
//! "#)?;
//! let rust = generate_rust(&spec);
//! assert!(rust.file("framework.rs").unwrap().content.contains("pub trait OverdueImpl"));
//! let java = generate_java(&spec);
//! assert!(java.file("AbstractOverdue.java").is_some());
//! # Ok::<(), diaspec_core::diag::CompileError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deploy;
pub mod dot;
mod emitter;
pub mod java;
pub mod lint;
pub mod metrics;
pub mod naming;
pub mod rust;

use diaspec_core::model::CheckedSpec;
use std::fmt;
use std::io;
use std::path::Path;

/// The target language of a generated framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// Rust, targeting the `diaspec-runtime` component traits.
    Rust,
    /// Java, matching the paper's Figures 9–11.
    Java,
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Language::Rust => "Rust",
            Language::Java => "Java",
        })
    }
}

/// One generated source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedFile {
    /// Path relative to the framework root, e.g. `framework.rs` or
    /// `AbstractAlert.java`.
    pub path: String,
    /// Full source text.
    pub content: String,
}

/// A generated programming framework: the design compiler's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedFramework {
    /// The target language.
    pub language: Language,
    /// Generated files in deterministic order.
    pub files: Vec<GeneratedFile>,
}

impl GeneratedFramework {
    /// Finds a generated file by its relative path.
    #[must_use]
    pub fn file(&self, path: &str) -> Option<&GeneratedFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Total lines (including blanks and comments) across all files.
    #[must_use]
    pub fn total_lines(&self) -> usize {
        self.files.iter().map(|f| f.content.lines().count()).sum()
    }

    /// Writes every file under `dir`, creating it if needed.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating directories or writing
    /// files.
    pub fn write_to(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for file in &self.files {
            std::fs::write(dir.join(&file.path), &file.content)?;
        }
        Ok(())
    }
}

/// Generates the Rust programming framework for a checked design.
#[must_use]
pub fn generate_rust(spec: &CheckedSpec) -> GeneratedFramework {
    GeneratedFramework {
        language: Language::Rust,
        files: vec![GeneratedFile {
            path: "framework.rs".to_owned(),
            content: rust::generate_module(spec),
        }],
    }
}

/// Generates the Rust framework for a design that will be co-deployed
/// with `companions` over one shared device fleet: the header records
/// the companions and the cross-application conflict verdict from
/// [`diaspec_core::analysis::analyze_deployment`].
#[must_use]
pub fn generate_rust_co_deployed(
    design: &str,
    spec: &CheckedSpec,
    companions: &[(String, &CheckedSpec)],
) -> GeneratedFramework {
    use diaspec_core::analysis::{analyze_deployment, DeploymentOptions, DesignRef};
    let mut designs = vec![DesignRef { name: design, spec }];
    designs.extend(
        companions
            .iter()
            .map(|(name, spec)| DesignRef { name, spec }),
    );
    let report = analyze_deployment(&designs, &[], &DeploymentOptions::default());
    let banner = rust::MultiAppBanner {
        companions: companions.iter().map(|(name, _)| name.clone()).collect(),
        conflict_free: report.conflict_free(),
    };
    GeneratedFramework {
        language: Language::Rust,
        files: vec![GeneratedFile {
            path: "framework.rs".to_owned(),
            content: rust::generate_module_with(spec, Some(&banner)),
        }],
    }
}

/// Generates the Java programming framework for a checked design
/// (paper Figures 9–11).
#[must_use]
pub fn generate_java(spec: &CheckedSpec) -> GeneratedFramework {
    GeneratedFramework {
        language: Language::Java,
        files: java::generate_files(spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaspec_core::compile_str;

    const SPEC: &str = r#"
        device Sensor { source v as Integer; }
        device Sink { action absorb(level as Integer); }
        context C as Integer { when provided v from Sensor always publish; }
        controller Out { when provided C do absorb on Sink; }
    "#;

    #[test]
    fn frameworks_have_expected_languages_and_files() {
        let spec = compile_str(SPEC).unwrap();
        let rust = generate_rust(&spec);
        assert_eq!(rust.language, Language::Rust);
        assert_eq!(rust.files.len(), 1);
        assert!(rust.total_lines() > 50);
        let java = generate_java(&spec);
        assert_eq!(java.language, Language::Java);
        assert!(java.files.len() >= 5);
        assert!(java.file("AbstractC.java").is_some());
        assert!(java.file("Missing.java").is_none());
    }

    #[test]
    fn write_to_creates_files() {
        let spec = compile_str(SPEC).unwrap();
        let dir = std::env::temp_dir().join("diaspec-codegen-test-write");
        let _ = std::fs::remove_dir_all(&dir);
        generate_java(&spec).write_to(&dir).unwrap();
        assert!(dir.join("AbstractOut.java").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn language_display() {
        assert_eq!(Language::Rust.to_string(), "Rust");
        assert_eq!(Language::Java.to_string(), "Java");
    }
}

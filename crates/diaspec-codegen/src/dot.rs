//! Graphical design views (paper Figures 2, 3 and 4) as Graphviz DOT.
//!
//! The paper presents every application design as a four-layer diagram —
//! device sources, contexts, controllers, device actions — with straight
//! arrows for event-driven subscriptions and "loop" arrows for
//! query-driven (`get`) reads. This backend regenerates that view from a
//! checked specification: render with `dot -Tsvg` to reproduce the
//! figures for any design.

use diaspec_core::analysis::{analyze, LoopKind};
use diaspec_core::model::{ActivationTrigger, CheckedSpec, InputRef, Subscriber};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Escapes a string for use inside a double-quoted DOT id.
fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Generates the Sense-Compute-Control diagram of a design, in the
/// four-layer layout of the paper's Figures 3 and 4.
///
/// - Solid edges: event-driven flow (`when provided` / `when periodic`
///   subscriptions, controller triggers, `do` actions). Periodic edges
///   are labeled with their period.
/// - Dashed edges: query-driven reads (`get` clauses), the paper's loop
///   arrows.
///
/// Static-analysis findings are drawn into the view: `do` edges involved
/// in an actuation conflict are red and bold; `do` edges that close an
/// environment feedback loop are orange, with a dotted return edge from
/// the actuated action back to the sensing source that re-enters the
/// design.
///
/// # Examples
///
/// ```
/// use diaspec_core::compile_str;
/// use diaspec_codegen::dot::generate_dot;
///
/// let spec = compile_str(r#"
///     device Clock { source tick as Integer; }
///     device Siren { action wail; }
///     context Overdue as Integer { when provided tick from Clock maybe publish; }
///     controller Alarm { when provided Overdue do wail on Siren; }
/// "#)?;
/// let dot = generate_dot(&spec, "doorbell");
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("\"src:Clock.tick\" -> \"ctx:Overdue\""));
/// # Ok::<(), diaspec_core::diag::CompileError>(())
/// ```
#[must_use]
pub fn generate_dot(spec: &CheckedSpec, title: &str) -> String {
    // Overlay data from the static analyzer: which `do` edges conflict,
    // which close environment loops, and where those loops re-enter.
    let report = analyze(spec);
    let mut conflict_edges: BTreeSet<(String, String, String)> = BTreeSet::new();
    for conflict in &report.conflicts {
        for site in [&conflict.first, &conflict.second] {
            conflict_edges.insert((
                site.controller.clone(),
                site.device.clone(),
                site.action.clone(),
            ));
        }
    }
    let mut loop_edges: BTreeMap<(String, String, String), LoopKind> = BTreeMap::new();
    let mut env_edges: BTreeSet<(String, String, String, String)> = BTreeSet::new();
    for lp in &report.loops {
        loop_edges
            .entry((lp.controller.clone(), lp.device.clone(), lp.action.clone()))
            .or_insert(lp.kind);
        env_edges.insert((
            lp.device.clone(),
            lp.action.clone(),
            source_owner(spec, &lp.feedback_device, &lp.source).to_owned(),
            lp.source.clone(),
        ));
    }

    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", quote(title));
    let _ = writeln!(out, "    rankdir=LR;");
    let _ = writeln!(out, "    node [fontname=\"Helvetica\", fontsize=11];");
    let _ = writeln!(
        out,
        "    label={}; labelloc=t; fontsize=16;",
        quote(&format!("{title} — Sense-Compute-Control design"))
    );

    // ---- layer 1: device sources ----
    let _ = writeln!(out, "    subgraph cluster_sources {{");
    let _ = writeln!(out, "        label=\"Devices (sources)\"; style=dashed;");
    for device in spec.devices() {
        for source in &device.sources {
            if source.declared_in != device.name {
                continue; // inherited; drawn on the declaring device
            }
            let id = format!("src:{}.{}", device.name, source.name);
            let _ = writeln!(
                out,
                "        {} [shape=ellipse, label={}];",
                quote(&id),
                quote(&format!("{}\\n{}", device.name, source.name))
            );
        }
    }
    let _ = writeln!(out, "    }}");

    // ---- layer 2: contexts ----
    let _ = writeln!(out, "    subgraph cluster_contexts {{");
    let _ = writeln!(out, "        label=\"Contexts\"; style=dashed;");
    for ctx in spec.contexts() {
        let id = format!("ctx:{}", ctx.name);
        let mr = if ctx.uses_map_reduce() {
            "\\n[MapReduce]"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "        {} [shape=box, style=rounded, label={}];",
            quote(&id),
            quote(&format!("{}\\nas {}{mr}", ctx.name, ctx.output))
        );
    }
    let _ = writeln!(out, "    }}");

    // ---- layer 3: controllers ----
    let _ = writeln!(out, "    subgraph cluster_controllers {{");
    let _ = writeln!(out, "        label=\"Controllers\"; style=dashed;");
    for ctrl in spec.controllers() {
        let id = format!("ctl:{}", ctrl.name);
        let _ = writeln!(
            out,
            "        {} [shape=box, label={}];",
            quote(&id),
            quote(&ctrl.name)
        );
    }
    let _ = writeln!(out, "    }}");

    // ---- layer 4: device actions ----
    let _ = writeln!(out, "    subgraph cluster_actions {{");
    let _ = writeln!(out, "        label=\"Devices (actions)\"; style=dashed;");
    let mut used_actions: Vec<(String, String)> = Vec::new();
    for ctrl in spec.controllers() {
        for binding in &ctrl.bindings {
            for (action, device) in &binding.actions {
                let key = (device.clone(), action.clone());
                if !used_actions.contains(&key) {
                    used_actions.push(key);
                }
            }
        }
    }
    for (device, action) in &used_actions {
        let id = format!("act:{device}.{action}");
        let _ = writeln!(
            out,
            "        {} [shape=ellipse, label={}];",
            quote(&id),
            quote(&format!("{device}\\n{action}"))
        );
    }
    let _ = writeln!(out, "    }}");

    // ---- edges ----
    for ctx in spec.contexts() {
        let ctx_id = format!("ctx:{}", ctx.name);
        for activation in &ctx.activations {
            match &activation.trigger {
                ActivationTrigger::DeviceSource { device, source } => {
                    let _ = writeln!(
                        out,
                        "    {} -> {};",
                        quote(&format!(
                            "src:{}.{source}",
                            source_owner(spec, device, source)
                        )),
                        quote(&ctx_id)
                    );
                }
                ActivationTrigger::Periodic {
                    device,
                    source,
                    period_ms,
                } => {
                    let _ = writeln!(
                        out,
                        "    {} -> {} [label={}];",
                        quote(&format!(
                            "src:{}.{source}",
                            source_owner(spec, device, source)
                        )),
                        quote(&ctx_id),
                        quote(&format!("every {}", human_period(*period_ms)))
                    );
                }
                ActivationTrigger::Context(from) => {
                    let _ = writeln!(
                        out,
                        "    {} -> {};",
                        quote(&format!("ctx:{from}")),
                        quote(&ctx_id)
                    );
                }
                ActivationTrigger::OnDemand => {}
            }
            for get in &activation.gets {
                let from = match get {
                    InputRef::DeviceSource { device, source } => {
                        format!("src:{}.{source}", source_owner(spec, device, source))
                    }
                    InputRef::Context(name) => format!("ctx:{name}"),
                };
                let _ = writeln!(
                    out,
                    "    {} -> {} [style=dashed, label=\"get\", constraint=false];",
                    quote(&from),
                    quote(&ctx_id)
                );
            }
        }
        // Context publications consumed by controllers.
        for subscriber in spec.subscribers_of_context(&ctx.name) {
            if let Subscriber::Controller(name) = subscriber {
                let _ = writeln!(
                    out,
                    "    {} -> {};",
                    quote(&ctx_id),
                    quote(&format!("ctl:{name}"))
                );
            }
        }
    }
    for ctrl in spec.controllers() {
        for binding in &ctrl.bindings {
            for (action, device) in &binding.actions {
                let key = (ctrl.name.clone(), device.clone(), action.clone());
                let attrs = if conflict_edges.contains(&key) {
                    " [color=red, penwidth=2, tooltip=\"actuation conflict\"]"
                } else {
                    match loop_edges.get(&key) {
                        Some(LoopKind::Event) => {
                            " [color=orange, penwidth=2, tooltip=\"feedback loop\"]"
                        }
                        Some(LoopKind::Query) => " [color=orange, tooltip=\"feedback loop (get)\"]",
                        None => "",
                    }
                };
                let _ = writeln!(
                    out,
                    "    {} -> {}{attrs};",
                    quote(&format!("ctl:{}", ctrl.name)),
                    quote(&format!("act:{device}.{action}"))
                );
            }
        }
    }
    // Environment return edges of detected feedback loops: the physical
    // coupling from an actuated device back into a sensed source.
    for (device, action, owner, source) in &env_edges {
        let _ = writeln!(
            out,
            "    {} -> {} [style=dotted, color=orange, label=\"environment\", constraint=false];",
            quote(&format!("act:{device}.{action}")),
            quote(&format!("src:{owner}.{source}"))
        );
    }
    out.push_str("}\n");
    out
}

/// The device that actually declares `source` (walking up `extends`), so
/// subscriptions against subtypes draw to the single declaring node.
fn source_owner<'s>(spec: &'s CheckedSpec, device: &'s str, source: &str) -> &'s str {
    spec.device(device)
        .and_then(|d| d.source(source))
        .map_or(device, |s| {
            // `declared_in` lives in the model as a String; find the
            // device entry to borrow a stable &str.
            spec.device(&s.declared_in)
                .map_or(device, |d| d.name.as_str())
        })
}

fn human_period(ms: u64) -> String {
    if ms.is_multiple_of(3_600_000) {
        format!("{} hr", ms / 3_600_000)
    } else if ms.is_multiple_of(60_000) {
        format!("{} min", ms / 60_000)
    } else if ms.is_multiple_of(1_000) {
        format!("{} sec", ms / 1_000)
    } else {
        format!("{ms} ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaspec_core::compile_str;

    const COOKER: &str = r#"
        device Clock { source tickSecond as Integer; }
        device Cooker { source consumption as Float; action On; action Off; }
        device TvPrompter {
          source answer as String indexed by questionId as String;
          action askQuestion(question as String);
        }
        context Alert as Integer {
          when provided tickSecond from Clock
            get consumption from Cooker
            maybe publish;
        }
        controller Notify { when provided Alert do askQuestion on TvPrompter; }
        context RemoteTurnOff as Boolean {
          when provided answer from TvPrompter
            get consumption from Cooker
            maybe publish;
        }
        controller TurnOff { when provided RemoteTurnOff do Off on Cooker; }
    "#;

    #[test]
    fn figure3_cooker_diagram_edges() {
        let spec = compile_str(COOKER).unwrap();
        let dot = generate_dot(&spec, "cooker");
        // The two functional chains of Figure 3.
        assert!(
            dot.contains("\"src:Clock.tickSecond\" -> \"ctx:Alert\""),
            "{dot}"
        );
        assert!(dot.contains("\"ctx:Alert\" -> \"ctl:Notify\""));
        assert!(dot.contains("\"ctl:Notify\" -> \"act:TvPrompter.askQuestion\""));
        assert!(dot.contains("\"src:TvPrompter.answer\" -> \"ctx:RemoteTurnOff\""));
        assert!(dot.contains("\"ctl:TurnOff\" -> \"act:Cooker.Off\""));
        // The query (loop) arrows are dashed.
        assert!(dot
            .contains("\"src:Cooker.consumption\" -> \"ctx:Alert\" [style=dashed, label=\"get\""));
        // Four layers are present.
        for cluster in [
            "cluster_sources",
            "cluster_contexts",
            "cluster_controllers",
            "cluster_actions",
        ] {
            assert!(dot.contains(cluster), "{dot}");
        }
    }

    #[test]
    fn periodic_edges_labeled_with_period() {
        let spec = compile_str(
            r#"
            device Sensor { attribute lot as String; source presence as Boolean; }
            device Panel { action update(s as String); }
            context Avail as Integer[] {
              when periodic presence from Sensor <10 min>
                grouped by lot always publish;
            }
            controller P { when provided Avail do update on Panel; }
            "#,
        )
        .unwrap();
        let dot = generate_dot(&spec, "parking");
        assert!(dot.contains("[label=\"every 10 min\"]"), "{dot}");
    }

    #[test]
    fn subscription_via_subtype_draws_to_declaring_device() {
        let spec = compile_str(
            r#"
            device Base { source reading as Float; }
            device Leaf extends Base { attribute where as String; }
            device Sink { action absorb; }
            context C as Float { when provided reading from Leaf always publish; }
            controller Out { when provided C do absorb on Sink; }
            "#,
        )
        .unwrap();
        let dot = generate_dot(&spec, "inherit");
        assert!(dot.contains("\"src:Base.reading\" -> \"ctx:C\""), "{dot}");
        // The subtype does not get a duplicate source node.
        assert!(!dot.contains("src:Leaf.reading"), "{dot}");
    }

    #[test]
    fn braces_balance_and_title_is_escaped() {
        let spec = compile_str(COOKER).unwrap();
        let dot = generate_dot(&spec, "weird \"title\"");
        assert_eq!(dot.matches('{').count(), dot.matches('}').count(), "{dot}");
        assert!(dot.contains("weird \\\"title\\\""));
    }

    #[test]
    fn conflicting_do_edges_are_highlighted() {
        let spec = compile_str(
            r#"
            device Probe { source v as Integer; }
            device Valve { action close; }
            context Hot as Integer { when provided v from Probe always publish; }
            controller A { when provided Hot do close on Valve; }
            controller B { when provided Hot do close on Valve; }
            "#,
        )
        .unwrap();
        let dot = generate_dot(&spec, "conflict");
        assert!(
            dot.contains("\"ctl:A\" -> \"act:Valve.close\" [color=red"),
            "{dot}"
        );
        assert!(
            dot.contains("\"ctl:B\" -> \"act:Valve.close\" [color=red"),
            "{dot}"
        );
    }

    #[test]
    fn feedback_loops_get_environment_return_edges() {
        let spec = compile_str(COOKER).unwrap();
        let dot = generate_dot(&spec, "cooker");
        // TurnOff closes a query-driven loop through Cooker.consumption.
        assert!(
            dot.contains("\"ctl:TurnOff\" -> \"act:Cooker.Off\" [color=orange"),
            "{dot}"
        );
        assert!(
            dot.contains(
                "\"act:Cooker.Off\" -> \"src:Cooker.consumption\" [style=dotted, color=orange"
            ),
            "{dot}"
        );
        // Notify does not loop: TvPrompter answers never reach Alert.
        assert!(
            dot.contains("\"ctl:Notify\" -> \"act:TvPrompter.askQuestion\";"),
            "{dot}"
        );
    }

    #[test]
    fn human_periods() {
        assert_eq!(human_period(24 * 3_600_000), "24 hr");
        assert_eq!(human_period(10 * 60_000), "10 min");
        assert_eq!(human_period(1_000), "1 sec");
        assert_eq!(human_period(1_500), "1500 ms");
    }

    #[test]
    fn mapreduce_contexts_are_marked() {
        let spec = compile_str(
            r#"
            device Sensor { attribute lot as String; source presence as Boolean; }
            device Panel { action update(s as String); }
            context Avail as Integer[] {
              when periodic presence from Sensor <10 min>
                grouped by lot with map as Boolean reduce as Integer
                always publish;
            }
            controller P { when provided Avail do update on Panel; }
            "#,
        )
        .unwrap();
        let dot = generate_dot(&spec, "mr");
        assert!(dot.contains("[MapReduce]"), "{dot}");
    }
}

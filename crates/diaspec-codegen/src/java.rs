//! The Java framework backend.
//!
//! The paper's tool chain generates Java programming frameworks
//! (Figures 9–11), and §V notes the approach "can be applied to any
//! mainstream programming language" [Van der Walt et al.]. This backend
//! demonstrates that language independence by emitting a Java framework
//! from the same [`CheckedSpec`] the Rust backend consumes, matching the
//! names and shapes of the paper's listings:
//!
//! - `AbstractAlert` with `onTickSecondFromClock(TickSecondFromClock,
//!   DiscoverForTickSecondFromClock)` returning `AlertValuePublishable`
//!   (Figure 9);
//! - the `MapReduce<K1,V1,K2,V2,K3,V3>` interface with `MapCollector` /
//!   `ReduceCollector` and the `onPeriodicPresence(Map<...>)` callback
//!   (Figure 10);
//! - `AbstractParkingEntrancePanelController` with an `onXxx(Discover,
//!   Value)` callback and a discover facade offering `whereLocation(...)`
//!   filters (Figure 11).
//!
//! Golden tests in the workspace pin these shapes against the listings.

use crate::emitter::CodeWriter;
use crate::naming::{camel_case, pascal_case};
use crate::GeneratedFile;
use diaspec_core::model::{ActivationTrigger, CheckedSpec, Context, Controller, InputRef};
use diaspec_core::types::Type;

/// Maps a DiaSpec type to its generated Java type (boxed, as in the
/// paper's listings).
#[must_use]
pub fn java_type(ty: &Type) -> String {
    match ty {
        Type::Integer => "Integer".to_owned(),
        Type::Float => "Float".to_owned(),
        Type::Boolean => "Boolean".to_owned(),
        Type::String => "String".to_owned(),
        Type::Enum(name) | Type::Struct(name) => name.clone(),
        Type::Array(elem) => format!("List<{}>", java_type(elem)),
    }
}

/// Generates every Java framework file for `spec`.
#[must_use]
pub fn generate_files(spec: &CheckedSpec) -> Vec<GeneratedFile> {
    let mut files = Vec::new();
    files.push(map_reduce_interface());
    files.push(collector("MapCollector", "emitMap"));
    files.push(collector("ReduceCollector", "emitReduce"));
    for e in spec.enumerations() {
        files.push(enumeration(&e.name, &e.variants));
    }
    for s in spec.structures() {
        files.push(structure(s));
    }
    for ctx in spec.contexts() {
        files.push(abstract_context(spec, ctx));
        files.push(value_publishable(ctx));
        for file in event_and_discover_classes(spec, ctx) {
            if !files.iter().any(|f| f.path == file.path) {
                files.push(file);
            }
        }
    }
    for ctrl in spec.controllers() {
        files.push(abstract_controller(spec, ctrl));
    }
    files
}

/// The per-trigger event classes (`TickSecondFromClock`) and typed
/// discover interfaces (`DiscoverForTickSecondFromClock`) referenced by
/// the abstract context callbacks of Figure 9.
fn event_and_discover_classes(spec: &CheckedSpec, ctx: &Context) -> Vec<GeneratedFile> {
    let mut files = Vec::new();
    for activation in &ctx.activations {
        let ActivationTrigger::DeviceSource { device, source } = &activation.trigger else {
            continue;
        };
        let dev = spec.device(device).expect("checked");
        let src = dev.source(source).expect("checked");
        let event_class = format!("{}From{}", pascal_case(source), pascal_case(device));

        // ---- the event class: published value + emitting-device info ----
        let mut w = CodeWriter::new();
        preamble(&mut w);
        w.linef(format_args!(
            "/** One `{source}` publication of a `{device}` entity (paper Figure 9). */"
        ));
        w.block(format!("public final class {event_class} {{"), "}", |w| {
            w.line("private final String entityId;");
            w.linef(format_args!("private final {} value;", java_type(&src.ty)));
            if let Some((index_name, index_ty)) = &src.index {
                w.linef(format_args!(
                    "private final {} {};",
                    java_type(index_ty),
                    camel_case(index_name)
                ));
            }
            for attr in &dev.attributes {
                w.linef(format_args!(
                    "private final {} {};",
                    java_type(&attr.ty),
                    camel_case(&attr.name)
                ));
            }
            w.blank();
            let mut params = vec![
                "String entityId".to_owned(),
                format!("{} value", java_type(&src.ty)),
            ];
            if let Some((index_name, index_ty)) = &src.index {
                params.push(format!(
                    "{} {}",
                    java_type(index_ty),
                    camel_case(index_name)
                ));
            }
            for attr in &dev.attributes {
                params.push(format!(
                    "{} {}",
                    java_type(&attr.ty),
                    camel_case(&attr.name)
                ));
            }
            w.block(
                format!("public {event_class}({}) {{", params.join(", ")),
                "}",
                |w| {
                    w.line("this.entityId = entityId;");
                    w.line("this.value = value;");
                    if let Some((index_name, _)) = &src.index {
                        let f = camel_case(index_name);
                        w.linef(format_args!("this.{f} = {f};"));
                    }
                    for attr in &dev.attributes {
                        let f = camel_case(&attr.name);
                        w.linef(format_args!("this.{f} = {f};"));
                    }
                },
            );
            w.blank();
            w.block("public String getEntityId() {", "}", |w| {
                w.line("return entityId;");
            });
            w.blank();
            w.block(
                format!("public {} getValue() {{", java_type(&src.ty)),
                "}",
                |w| {
                    w.line("return value;");
                },
            );
            if let Some((index_name, index_ty)) = &src.index {
                w.blank();
                w.block(
                    format!(
                        "public {} get{}() {{",
                        java_type(index_ty),
                        pascal_case(index_name)
                    ),
                    "}",
                    |w| {
                        w.linef(format_args!("return {};", camel_case(index_name)));
                    },
                );
            }
            for attr in &dev.attributes {
                w.blank();
                w.block(
                    format!(
                        "public {} get{}() {{",
                        java_type(&attr.ty),
                        pascal_case(&attr.name)
                    ),
                    "}",
                    |w| {
                        w.linef(format_args!("return {};", camel_case(&attr.name)));
                    },
                );
            }
        });
        files.push(file(&event_class, w.finish()));

        // ---- the typed discover interface: declared `get` clauses ----
        let discover_class = format!("DiscoverFor{event_class}");
        let mut w = CodeWriter::new();
        preamble(&mut w);
        w.linef(format_args!(
            "/** Query facade for `{}` activations triggered by `{source} from {device}`:",
            ctx.name
        ));
        w.line(" * exposes exactly the declared `get` clauses (paper Figure 9). */");
        w.block(format!("public interface {discover_class} {{"), "}", |w| {
            for get in &activation.gets {
                match get {
                    InputRef::DeviceSource {
                        device: get_device,
                        source: get_source,
                    } => {
                        let ty = java_type(
                            &spec
                                .device(get_device)
                                .and_then(|d| d.source(get_source))
                                .expect("checked")
                                .ty,
                        );
                        w.linef(format_args!(
                            "/** Declared as `get {get_source} from {get_device}`. */"
                        ));
                        w.linef(format_args!(
                            "List<{ty}> get{}From{}();",
                            pascal_case(get_source),
                            pascal_case(get_device)
                        ));
                    }
                    InputRef::Context(target) => {
                        let ty = java_type(&spec.context(target).expect("checked").output);
                        w.linef(format_args!("/** Declared as `get {target}`. */"));
                        w.linef(format_args!("{ty} get{}();", pascal_case(target)));
                    }
                }
            }
        });
        files.push(file(&discover_class, w.finish()));
    }
    files
}

fn file(name: &str, content: String) -> GeneratedFile {
    GeneratedFile {
        path: format!("{name}.java"),
        content,
    }
}

fn preamble(w: &mut CodeWriter) {
    w.line("// Generated by diaspec-codegen. DO NOT EDIT.");
    w.line("package generated;");
    w.blank();
    w.line("import java.util.List;");
    w.line("import java.util.Map;");
    w.blank();
}

fn map_reduce_interface() -> GeneratedFile {
    let mut w = CodeWriter::new();
    preamble(&mut w);
    w.line("/** The MapReduce interface of the generated framework (paper Figure 10). */");
    w.block(
        "public interface MapReduce<K1, V1, K2, V2, K3, V3> {",
        "}",
        |w| {
            w.line("void map(K1 key, V1 value, MapCollector<K2, V2> collector);");
            w.blank();
            w.line("void reduce(K2 key, List<V2> values, ReduceCollector<K3, V3> collector);");
        },
    );
    file("MapReduce", w.finish())
}

fn collector(name: &str, emit: &str) -> GeneratedFile {
    let mut w = CodeWriter::new();
    preamble(&mut w);
    w.linef(format_args!(
        "/** Receives records emitted by the {} phase. */",
        if name == "MapCollector" {
            "Map"
        } else {
            "Reduce"
        }
    ));
    w.block(format!("public final class {name}<K, V> {{"), "}", |w| {
        w.line(
            "private final java.util.ArrayList<java.util.AbstractMap.SimpleEntry<K, V>> items =",
        );
        w.line("    new java.util.ArrayList<>();");
        w.blank();
        w.block(format!("public void {emit}(K key, V value) {{"), "}", |w| {
            w.line("items.add(new java.util.AbstractMap.SimpleEntry<>(key, value));");
        });
        w.blank();
        w.block(
            "public List<java.util.AbstractMap.SimpleEntry<K, V>> items() {",
            "}",
            |w| {
                w.line("return items;");
            },
        );
    });
    file(name, w.finish())
}

fn enumeration(name: &str, variants: &[String]) -> GeneratedFile {
    let mut w = CodeWriter::new();
    preamble(&mut w);
    w.linef(format_args!("/** Generated from `enumeration {name}`. */"));
    w.block(format!("public enum {name} {{"), "}", |w| {
        let list = variants.join(", ");
        w.linef(format_args!("{list}"));
    });
    file(name, w.finish())
}

fn structure(s: &diaspec_core::model::Structure) -> GeneratedFile {
    let name = &s.name;
    let mut w = CodeWriter::new();
    preamble(&mut w);
    w.linef(format_args!("/** Generated from `structure {name}`. */"));
    w.block(format!("public final class {name} {{"), "}", |w| {
        for (field, ty) in &s.fields {
            w.linef(format_args!(
                "private final {} {};",
                java_type(ty),
                camel_case(field)
            ));
        }
        w.blank();
        let params: Vec<String> = s
            .fields
            .iter()
            .map(|(f, t)| format!("{} {}", java_type(t), camel_case(f)))
            .collect();
        w.block(
            format!("public {name}({}) {{", params.join(", ")),
            "}",
            |w| {
                for (field, _) in &s.fields {
                    let f = camel_case(field);
                    w.linef(format_args!("this.{f} = {f};"));
                }
            },
        );
        for (field, ty) in &s.fields {
            w.blank();
            w.block(
                format!("public {} get{}() {{", java_type(ty), pascal_case(field)),
                "}",
                |w| {
                    w.linef(format_args!("return {};", camel_case(field)));
                },
            );
        }
    });
    file(name, w.finish())
}

fn value_publishable(ctx: &Context) -> GeneratedFile {
    let name = format!("{}ValuePublishable", ctx.name);
    let ty = java_type(&ctx.output);
    let mut w = CodeWriter::new();
    preamble(&mut w);
    w.linef(format_args!(
        "/** Wraps a `{}` context value for publication (paper Figure 9). */",
        ctx.name
    ));
    w.block(format!("public final class {name} {{"), "}", |w| {
        w.linef(format_args!("private final {ty} value;"));
        w.line("private final boolean publish;");
        w.blank();
        w.block(
            format!("private {name}({ty} value, boolean publish) {{"),
            "}",
            |w| {
                w.line("this.value = value;");
                w.line("this.publish = publish;");
            },
        );
        w.blank();
        w.block(
            format!("public static {name} publish({ty} value) {{"),
            "}",
            |w| {
                w.linef(format_args!("return new {name}(value, true);"));
            },
        );
        w.blank();
        w.block(format!("public static {name} silent() {{"), "}", |w| {
            w.linef(format_args!("return new {name}(null, false);"));
        });
        w.blank();
        w.block(format!("public {ty} getValue() {{"), "}", |w| {
            w.line("return value;");
        });
        w.blank();
        w.block("public boolean isPublished() {", "}", |w| {
            w.line("return publish;");
        });
    });
    file(&name, w.finish())
}

/// Java callback name per activation, matching the paper's
/// `onTickSecondFromClock` / `onPeriodicPresence` / `onParkingAvailability`
/// conventions.
fn callback_name(trigger: &ActivationTrigger) -> String {
    match trigger {
        ActivationTrigger::DeviceSource { device, source } => {
            format!("on{}From{}", pascal_case(source), pascal_case(device))
        }
        ActivationTrigger::Context(name) => format!("on{}", pascal_case(name)),
        ActivationTrigger::Periodic { source, .. } => {
            format!("onPeriodic{}", pascal_case(source))
        }
        ActivationTrigger::OnDemand => "onDemand".to_owned(),
    }
}

fn abstract_context(spec: &CheckedSpec, ctx: &Context) -> GeneratedFile {
    let name = &ctx.name;
    let class = format!("Abstract{name}");
    let publishable = format!("{name}ValuePublishable");
    let mut w = CodeWriter::new();
    preamble(&mut w);
    w.linef(format_args!(
        "/** Abstract component for `context {name}` — subclass and implement"
    ));
    w.line(" * the callbacks; the runtime invokes them per the design declarations");
    w.line(" * (inversion of control, paper Figure 9). */");
    let implements = ctx
        .activations
        .iter()
        .find_map(|a| a.grouping.as_ref().and_then(|g| g.map_reduce.as_ref()))
        .map(|(map_ty, reduce_ty)| {
            // Figure 10: the grouped attribute keys all three phases.
            let attr = ctx
                .activations
                .iter()
                .find_map(|a| a.grouping.as_ref())
                .expect("grouping present");
            let k = java_type(&attr.attribute_ty);
            let v1 = ctx
                .activations
                .iter()
                .find_map(|a| match &a.trigger {
                    ActivationTrigger::Periodic { device, source, .. }
                    | ActivationTrigger::DeviceSource { device, source } => Some(java_type(
                        &spec
                            .device(device)
                            .and_then(|d| d.source(source))
                            .expect("checked")
                            .ty,
                    )),
                    _ => None,
                })
                .unwrap_or_else(|| "Object".to_owned());
            format!(
                "\n    // Implementations processing large datasets additionally implement\n    \
                 // MapReduce<{k}, {v1}, {k}, {}, {k}, {}> (paper Figure 10).",
                java_type(map_ty),
                java_type(reduce_ty)
            )
        })
        .unwrap_or_default();
    w.block(
        format!("public abstract class {class} {{{implements}"),
        "}",
        |w| {
            for activation in &ctx.activations {
                let cb = callback_name(&activation.trigger);
                w.blank();
                match &activation.trigger {
                    ActivationTrigger::DeviceSource { device, source } => {
                        let event_class =
                            format!("{}From{}", pascal_case(source), pascal_case(device));
                        w.linef(format_args!(
                            "/** Design clause: `when provided {source} from {device}`. */"
                        ));
                        w.linef(format_args!("public abstract {publishable} {cb}("));
                        w.linef(format_args!(
                            "    {event_class} {},",
                            camel_case(&event_class)
                        ));
                        w.linef(format_args!("    DiscoverFor{event_class} discover);"));
                    }
                    ActivationTrigger::Context(from) => {
                        let from_ty = java_type(&spec.context(from).expect("checked").output);
                        w.linef(format_args!(
                            "/** Design clause: `when provided {from}`. */"
                        ));
                        w.linef(format_args!(
                        "public abstract {publishable} {cb}({from_ty} value, Discover discover);"
                    ));
                    }
                    ActivationTrigger::Periodic { device, source, .. } => {
                        match activation.grouping.as_ref().and_then(|g| {
                            g.map_reduce.as_ref().map(|(_, reduce_ty)| (g, reduce_ty))
                        }) {
                            Some((grouping, reduce_ty)) => {
                                // Figure 10's `onPeriodicPresence(Map<...>)`.
                                w.linef(format_args!(
                                "/** Receives the reduced data of `grouped by {}` (Figure 10). */",
                                grouping.attribute
                            ));
                                w.linef(format_args!(
                                    "protected abstract {} {cb}(",
                                    java_type(&ctx.output)
                                ));
                                w.linef(format_args!(
                                    "    Map<{}, {}> {}By{});",
                                    java_type(&grouping.attribute_ty),
                                    java_type(reduce_ty),
                                    camel_case(source),
                                    pascal_case(&grouping.attribute)
                                ));
                            }
                            None => {
                                let src_ty = java_type(
                                    &spec
                                        .device(device)
                                        .and_then(|d| d.source(source))
                                        .expect("checked")
                                        .ty,
                                );
                                let payload = match activation.grouping.as_ref() {
                                    Some(grouping) => format!(
                                        "Map<{}, List<{src_ty}>> {}By{}",
                                        java_type(&grouping.attribute_ty),
                                        camel_case(source),
                                        pascal_case(&grouping.attribute)
                                    ),
                                    None => format!("List<{src_ty}> readings"),
                                };
                                w.linef(format_args!(
                                    "/** Design clause: `when periodic {source} from {device}`. */"
                                ));
                                w.linef(format_args!(
                                    "protected abstract {} {cb}({payload});",
                                    java_type(&ctx.output)
                                ));
                            }
                        }
                    }
                    ActivationTrigger::OnDemand => {
                        w.line("/** Design clause: `when required`. */");
                        w.linef(format_args!(
                            "public abstract {} {cb}();",
                            java_type(&ctx.output)
                        ));
                    }
                }
            }
        },
    );
    file(&class, w.finish())
}

fn abstract_controller(spec: &CheckedSpec, ctrl: &Controller) -> GeneratedFile {
    let name = &ctrl.name;
    let class = format!("Abstract{name}");
    let mut w = CodeWriter::new();
    preamble(&mut w);
    w.linef(format_args!(
        "/** Abstract component for `controller {name}` (paper Figure 11). */"
    ));
    w.block(format!("public abstract class {class} {{"), "}", |w| {
        for binding in &ctrl.bindings {
            let ctx_ty = java_type(&spec.context(&binding.context).expect("checked").output);
            w.blank();
            w.linef(format_args!(
                "/** Design clause: `when provided {}`. */",
                binding.context
            ));
            w.linef(format_args!(
                "protected abstract void on{}(Discover discover, {ctx_ty} {});",
                pascal_case(&binding.context),
                camel_case(&binding.context)
            ));
        }
        w.blank();
        w.line("/** Discover facade over the devices this controller actuates. */");
        w.block("public interface Discover {", "}", |w| {
            let mut targets: Vec<&str> = Vec::new();
            for binding in &ctrl.bindings {
                for (_, device) in &binding.actions {
                    if !targets.contains(&device.as_str()) {
                        targets.push(device);
                    }
                }
            }
            for device in targets {
                let dev = spec.device(device).expect("checked");
                w.linef(format_args!("{device}Composite {}s();", camel_case(device)));
                w.blank();
                w.linef(format_args!(
                    "/** Proxy composite over `{device}` entities. */"
                ));
                w.block(format!("interface {device}Composite {{"), "}", |w| {
                    for attr in &dev.attributes {
                        w.linef(format_args!(
                            "{device}Composite where{}({} value);",
                            pascal_case(&attr.name),
                            java_type(&attr.ty)
                        ));
                    }
                    for binding in &ctrl.bindings {
                        for (action_name, action_device) in &binding.actions {
                            if action_device != device {
                                continue;
                            }
                            let action = dev.action(action_name).expect("checked");
                            let params: Vec<String> = action
                                .params
                                .iter()
                                .map(|(p, t)| format!("{} {}", java_type(t), camel_case(p)))
                                .collect();
                            w.linef(format_args!(
                                "void {}({});",
                                camel_case(action_name),
                                params.join(", ")
                            ));
                        }
                    }
                });
            }
        });
    });
    file(&class, w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaspec_core::compile_str;

    const COOKER: &str = r#"
        device Clock { source tickSecond as Integer; }
        device Cooker { source consumption as Float; action On; action Off; }
        device TvPrompter {
          source answer as String indexed by questionId as String;
          action askQuestion(question as String);
        }
        context Alert as Integer {
          when provided tickSecond from Clock
            get consumption from Cooker
            maybe publish;
        }
        controller Notify { when provided Alert do askQuestion on TvPrompter; }
        context RemoteTurnOff as Boolean {
          when provided answer from TvPrompter
            get consumption from Cooker
            maybe publish;
        }
        controller TurnOff { when provided RemoteTurnOff do Off on Cooker; }
    "#;

    #[test]
    fn java_type_mapping() {
        assert_eq!(java_type(&Type::Integer), "Integer");
        assert_eq!(java_type(&Type::Float), "Float");
        assert_eq!(
            java_type(&Type::Struct("Availability".into()).array()),
            "List<Availability>"
        );
    }

    #[test]
    fn figure9_shape_abstract_alert() {
        let spec = compile_str(COOKER).unwrap();
        let files = generate_files(&spec);
        let alert = files
            .iter()
            .find(|f| f.path == "AbstractAlert.java")
            .expect("AbstractAlert generated");
        assert!(
            alert
                .content
                .contains("public abstract class AbstractAlert"),
            "{}",
            alert.content
        );
        assert!(alert
            .content
            .contains("public abstract AlertValuePublishable onTickSecondFromClock("));
        assert!(alert
            .content
            .contains("TickSecondFromClock tickSecondFromClock"));
        assert!(alert
            .content
            .contains("DiscoverForTickSecondFromClock discover"));
    }

    #[test]
    fn value_publishable_generated() {
        let spec = compile_str(COOKER).unwrap();
        let files = generate_files(&spec);
        let vp = files
            .iter()
            .find(|f| f.path == "AlertValuePublishable.java")
            .expect("publishable wrapper");
        assert!(vp
            .content
            .contains("public static AlertValuePublishable publish(Integer value)"));
        assert!(vp
            .content
            .contains("public static AlertValuePublishable silent()"));
    }

    #[test]
    fn figure11_shape_controller_discover() {
        let spec = compile_str(COOKER).unwrap();
        let files = generate_files(&spec);
        let ctrl = files
            .iter()
            .find(|f| f.path == "AbstractNotify.java")
            .expect("controller class");
        assert!(ctrl
            .content
            .contains("protected abstract void onAlert(Discover discover, Integer alert);"));
        assert!(ctrl.content.contains("TvPrompterComposite tvPrompters();"));
        assert!(ctrl.content.contains("void askQuestion(String question);"));
    }

    #[test]
    fn mapreduce_interface_matches_figure10() {
        let spec = compile_str(COOKER).unwrap();
        let files = generate_files(&spec);
        let mr = files
            .iter()
            .find(|f| f.path == "MapReduce.java")
            .expect("MapReduce interface");
        assert!(mr
            .content
            .contains("public interface MapReduce<K1, V1, K2, V2, K3, V3>"));
        assert!(mr
            .content
            .contains("void map(K1 key, V1 value, MapCollector<K2, V2> collector);"));
        assert!(mr
            .content
            .contains("void reduce(K2 key, List<V2> values, ReduceCollector<K3, V3> collector);"));
    }
}

//! Identifier-case conversions between DiaSpec, Rust, and Java.
//!
//! DiaSpec follows Java conventions (camelCase members, PascalCase types);
//! generated Rust follows RFC 430 (snake_case functions and fields,
//! UpperCamelCase types).

/// Converts an identifier to `snake_case` (`tickSecond` → `tick_second`,
/// `NORTH_EAST_14Y` → `north_east_14y`).
#[must_use]
pub fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    let mut prev_lower = false;
    for ch in name.chars() {
        if ch == '_' || ch == '-' {
            if !out.ends_with('_') {
                out.push('_');
            }
            prev_lower = false;
        } else if ch.is_uppercase() {
            // Break only at a lower-to-upper boundary; digits run into the
            // following capital ("14Y" -> "14y", not "14_y").
            if prev_lower && !out.ends_with('_') {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
            prev_lower = false;
        } else {
            out.push(ch);
            prev_lower = ch.is_lowercase();
        }
    }
    out
}

/// Converts an identifier to `UpperCamelCase` (`tickSecond` →
/// `TickSecond`, `NORTH_EAST_14Y` → `NorthEast14y`).
#[must_use]
pub fn pascal_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut upper_next = true;
    let mut prev_was_upper = false;
    for ch in name.chars() {
        if ch == '_' || ch == '-' {
            upper_next = true;
            prev_was_upper = false;
        } else if upper_next {
            out.extend(ch.to_uppercase());
            upper_next = false;
            prev_was_upper = true;
        } else if ch.is_uppercase() {
            if prev_was_upper {
                // Runs of capitals collapse: "NORTH" -> "North".
                out.extend(ch.to_lowercase());
            } else {
                out.push(ch);
                prev_was_upper = true;
            }
        } else {
            out.push(ch);
            prev_was_upper = false;
        }
    }
    out
}

/// Converts an identifier to `lowerCamelCase` (`tick_second` →
/// `tickSecond`).
#[must_use]
pub fn camel_case(name: &str) -> String {
    let pascal = pascal_case(name);
    let mut chars = pascal.chars();
    match chars.next() {
        Some(first) => first.to_lowercase().collect::<String>() + chars.as_str(),
        None => pascal,
    }
}

/// Escapes Rust keywords with a raw-identifier prefix where legal, or a
/// trailing underscore for keywords that cannot be raw (`self`, `super`,
/// `crate`, `Self`).
#[must_use]
pub fn rust_safe(name: &str) -> String {
    const KEYWORDS: &[&str] = &[
        "as", "break", "const", "continue", "dyn", "else", "enum", "extern", "false", "fn", "for",
        "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
        "static", "struct", "trait", "true", "type", "unsafe", "use", "where", "while", "async",
        "await", "box", "try", "union",
    ];
    const UNRAWABLE: &[&str] = &["self", "Self", "super", "crate"];
    if UNRAWABLE.contains(&name) {
        format!("{name}_")
    } else if KEYWORDS.contains(&name) {
        format!("r#{name}")
    } else {
        name.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_case_conversions() {
        assert_eq!(snake_case("tickSecond"), "tick_second");
        assert_eq!(snake_case("ParkingAvailability"), "parking_availability");
        // All-caps identifiers lower cleanly without doubling separators.
        assert_eq!(snake_case("NORTH_EAST_14Y"), "north_east_14y");
    }

    #[test]
    fn snake_case_handles_acronym_runs() {
        assert_eq!(snake_case("askQuestion"), "ask_question");
        assert_eq!(snake_case("parkingLot"), "parking_lot");
        assert_eq!(snake_case("Off"), "off");
        assert_eq!(snake_case("questionId"), "question_id");
        assert_eq!(snake_case("already_snake"), "already_snake");
    }

    #[test]
    fn pascal_case_conversions() {
        assert_eq!(pascal_case("tickSecond"), "TickSecond");
        assert_eq!(pascal_case("parking_lot"), "ParkingLot");
        assert_eq!(pascal_case("NORTH_EAST_14Y"), "NorthEast14Y");
        assert_eq!(pascal_case("A22"), "A22");
        assert_eq!(pascal_case("update"), "Update");
    }

    #[test]
    fn camel_case_conversions() {
        assert_eq!(camel_case("tick_second"), "tickSecond");
        assert_eq!(camel_case("ParkingAvailability"), "parkingAvailability");
        assert_eq!(camel_case(""), "");
    }

    #[test]
    fn rust_keywords_escaped() {
        assert_eq!(rust_safe("match"), "r#match");
        assert_eq!(rust_safe("type"), "r#type");
        assert_eq!(rust_safe("self"), "self_");
        assert_eq!(rust_safe("presence"), "presence");
    }
}

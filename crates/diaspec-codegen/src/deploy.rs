//! Deployment units: partitioning one design across nodes.
//!
//! The paper's large-scale story (§VI) moves an orchestration design
//! from a single process to a city-scale infrastructure without
//! touching the design itself. This module is the tooling side of that
//! move: [`plan_deployment`] splits a checked design into a *star* of
//! deployment units — one coordinator running the orchestration engine
//! plus N edge nodes hosting device slices — and emits
//!
//! - a machine-readable **node manifest** (`manifest.json`) naming what
//!   runs where and which addresses the nodes listen/connect on, and
//! - one **per-node Rust source** per unit, declaring exactly that
//!   node's slice of the design and the peers it bridges to over the
//!   socket transport (`diaspec_runtime::transport`).
//!
//! The split is attribute-driven, mirroring how the parking study
//! shards by parking lot: the *shard enumeration* is the enum type most
//! referenced by device attributes (or an explicit
//! [`DeployOptions::shard_enum`]), its variants are distributed
//! round-robin across the edge nodes, and every device family carrying
//! an attribute of that type follows its variants to the edges. All
//! contexts and controllers — the computations — and every non-sharded
//! device family stay on the coordinator.
//!
//! Before anything is emitted the split is validated by the static
//! partition pass ([`diaspec_core::analysis::partition`]): a plan that
//! leaves a component unplaced or routes data edge-to-edge is rejected
//! here, at design time, with E05xx diagnostics.

use crate::{GeneratedFile, GeneratedFramework, Language};
use diaspec_core::analysis::partition::{self, PartitionNode, PartitionPlan};
use diaspec_core::diag::Severity;
use diaspec_core::model::CheckedSpec;
use diaspec_core::types::Type;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tuning knobs for [`plan_deployment`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployOptions {
    /// Design name, used in the manifest and generated file headers.
    pub design: String,
    /// Number of edge nodes to shard across (≥ 1).
    pub edges: usize,
    /// Host every node binds/connects on.
    pub host: String,
    /// First listen port; edge `i` listens on `port_base + i`.
    pub port_base: u16,
    /// Explicit shard enumeration name. When `None`, the enum type most
    /// referenced by device attributes is auto-detected.
    pub shard_enum: Option<String>,
    /// Delivery-pipeline shard count for the coordinator's engine
    /// (`Orchestrator::set_shards`): 1 keeps the serial inline pipeline,
    /// N > 1 launches the sharded execution plan with its deterministic
    /// sequenced merge. Distinct from `edges`, which partitions *devices*
    /// across nodes; this partitions the coordinator's *compute* across
    /// cores.
    pub pipeline_shards: usize,
}

impl Default for DeployOptions {
    fn default() -> Self {
        DeployOptions {
            design: "design".to_owned(),
            edges: 2,
            host: "127.0.0.1".to_owned(),
            port_base: 7070,
            shard_enum: None,
            pipeline_shards: 1,
        }
    }
}

/// `(node, address)` pair in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerAddr {
    /// Peer node name.
    pub node: String,
    /// `host:port` the peer listens on.
    pub addr: String,
}

/// The coordinator's slice in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinatorManifest {
    /// Node name (always `coordinator`).
    pub name: String,
    /// Contexts and controllers it runs (all of them).
    pub components: Vec<String>,
    /// Device families hosted locally.
    pub devices: Vec<String>,
    /// Edge nodes it connects to, in node order.
    pub connects: Vec<PeerAddr>,
    /// Delivery-pipeline shard count the coordinator's engine launches
    /// with (0 only in manifests predating the shard axis; treat as 1).
    #[serde(default)]
    pub pipeline_shards: usize,
}

/// Resilience policy of one coordinator↔edge link in the manifest.
///
/// Mirrors the runtime's session layer
/// (`diaspec_runtime::deploy::SessionConfig`): when `session` is set,
/// the coordinator opens the link with at-least-once delivery —
/// cumulative acks, inline resends, a bounded replay queue for effects
/// parked across partitions, and a circuit breaker that fails fast on
/// a dead edge. All fields are integers so the manifest stays exactly
/// comparable (`Eq`) and byte-stable across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkPolicy {
    /// Whether the link runs the at-least-once session layer.
    pub session: bool,
    /// Most parked effects the replay queue holds.
    pub resend_queue: usize,
    /// Inline resend attempts per request (beyond the first send).
    pub max_attempts: u32,
    /// Base wall-clock backoff between resends (doubles per attempt).
    pub base_backoff_ms: u64,
    /// Per-request wall-clock budget (also the socket read deadline).
    pub timeout_ms: u64,
    /// Consecutive request failures that trip the circuit breaker.
    pub breaker_failures: u32,
    /// Sim-ms the breaker stays open before a half-open probe.
    pub breaker_cooldown_ms: u64,
}

impl Default for LinkPolicy {
    fn default() -> Self {
        LinkPolicy {
            session: true,
            resend_queue: 64,
            max_attempts: 3,
            base_backoff_ms: 100,
            timeout_ms: 10_000,
            breaker_failures: 4,
            breaker_cooldown_ms: 60_000,
        }
    }
}

/// One edge node's slice in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeManifest {
    /// Node name (`edge0`, `edge1`, ...).
    pub name: String,
    /// `host:port` this node listens on.
    pub listen: String,
    /// Device families with instances on this node.
    pub devices: Vec<String>,
    /// Shard-enum variants assigned to this node.
    pub shards: Vec<String>,
    /// Resilience policy of the coordinator↔node link (defaulted for
    /// manifests written before the session layer existed).
    #[serde(default)]
    pub link: LinkPolicy,
}

/// How the design was sharded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// The shard enumeration.
    pub enumeration: String,
    /// `Device.attribute` references that selected it.
    pub attributes: Vec<String>,
}

/// One dataflow route that crosses the coordinator cut at runtime.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestRoute {
    /// Producing node.
    pub from_node: String,
    /// Producing component or device.
    pub from: String,
    /// Consuming node.
    pub to_node: String,
    /// Consuming component or device.
    pub to: String,
}

/// The machine-readable deployment manifest (`manifest.json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeManifest {
    /// Design name.
    pub design: String,
    /// How the design was sharded.
    pub shard: ShardManifest,
    /// The coordinator unit.
    pub coordinator: CoordinatorManifest,
    /// The edge units, in node order.
    pub edges: Vec<EdgeManifest>,
    /// Routes that travel the transport, from the partition pass.
    pub cut_routes: Vec<ManifestRoute>,
}

/// A validated deployment split plus its emitted artifacts.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The manifest, also serialized into `files` as `manifest.json`.
    pub manifest: NodeManifest,
    /// The partition plan the manifest was validated against.
    pub plan: PartitionPlan,
    /// `manifest.json` plus one `node_<name>.rs` per unit.
    pub files: GeneratedFramework,
    /// Partition warnings (W0501), rendered one per line.
    pub warnings: Vec<String>,
}

/// Splits `spec` into deployment units and emits their artifacts.
///
/// # Errors
///
/// Returns a rendered message when the options are unusable (zero
/// edges, unknown or ambiguous shard enumeration, more edges than
/// variants) or when the static partition pass rejects the split
/// (E05xx diagnostics, one per line).
pub fn plan_deployment(spec: &CheckedSpec, options: &DeployOptions) -> Result<Deployment, String> {
    if options.edges == 0 {
        return Err("a deployment needs at least one edge node".to_owned());
    }
    let (shard_enum, shard_attrs) = shard_enumeration(spec, options)?;
    let variants = &spec
        .enumeration(&shard_enum)
        .expect("shard enumeration was resolved against the spec")
        .variants;
    if options.edges > variants.len() {
        return Err(format!(
            "cannot shard {} variant(s) of `{shard_enum}` across {} edge nodes",
            variants.len(),
            options.edges
        ));
    }

    // Device families carrying a shard-enum attribute follow their
    // instances to the edges; everything else stays central.
    let sharded: Vec<String> = spec
        .devices()
        .filter(|d| {
            d.attributes
                .iter()
                .any(|a| a.ty == Type::Enum(shard_enum.clone()))
        })
        .map(|d| d.name.clone())
        .collect();
    let central: Vec<String> = spec
        .devices()
        .filter(|d| !sharded.contains(&d.name))
        .map(|d| d.name.clone())
        .collect();
    let components: Vec<String> = spec
        .contexts()
        .map(|c| c.name.clone())
        .chain(spec.controllers().map(|c| c.name.clone()))
        .collect();

    let mut nodes = vec![PartitionNode {
        name: "coordinator".to_owned(),
        components: components.clone(),
        devices: central.clone(),
    }];
    let mut edges = Vec::new();
    for i in 0..options.edges {
        let name = format!("edge{i}");
        let shards: Vec<String> = variants
            .iter()
            .enumerate()
            .filter(|(v, _)| v % options.edges == i)
            .map(|(_, v)| v.clone())
            .collect();
        nodes.push(PartitionNode {
            name: name.clone(),
            components: Vec::new(),
            devices: sharded.clone(),
        });
        edges.push(EdgeManifest {
            name,
            listen: format!("{}:{}", options.host, options.port_base + i as u16),
            devices: sharded.clone(),
            shards,
            link: LinkPolicy::default(),
        });
    }
    let plan = PartitionPlan {
        coordinator: "coordinator".to_owned(),
        nodes,
    };

    let report = partition::validate(spec, &plan);
    if !report.is_deployable() {
        let mut message = String::from("the deployment split is not a valid partition:\n");
        for diag in report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
        {
            let _ = writeln!(message, "  {}: {}", diag.code, diag.message);
        }
        return Err(message.trim_end().to_owned());
    }
    let warnings: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity != Severity::Error)
        .map(|d| format!("{}: {}", d.code, d.message))
        .collect();

    let manifest = NodeManifest {
        design: options.design.clone(),
        shard: ShardManifest {
            enumeration: shard_enum,
            attributes: shard_attrs,
        },
        coordinator: CoordinatorManifest {
            name: "coordinator".to_owned(),
            components,
            devices: central,
            connects: edges
                .iter()
                .map(|e| PeerAddr {
                    node: e.name.clone(),
                    addr: e.listen.clone(),
                })
                .collect(),
            pipeline_shards: options.pipeline_shards.max(1),
        },
        edges,
        cut_routes: report
            .cut_routes
            .iter()
            .map(|r| ManifestRoute {
                from_node: r.from.0.clone(),
                from: r.from.1.clone(),
                to_node: r.to.0.clone(),
                to: r.to.1.clone(),
            })
            .collect(),
    };

    let mut files = vec![GeneratedFile {
        path: "manifest.json".to_owned(),
        content: serde_json::to_string_pretty(&manifest)
            .expect("manifest serialization is infallible")
            + "\n",
    }];
    files.push(coordinator_source(&manifest));
    for edge in &manifest.edges {
        files.push(edge_source(&manifest, edge));
    }

    Ok(Deployment {
        manifest,
        plan,
        files: GeneratedFramework {
            language: Language::Rust,
            files,
        },
        warnings,
    })
}

/// Resolves the shard enumeration: the explicit option, or the enum
/// type most referenced by device attributes. Returns the enum name
/// plus the `Device.attribute` references that selected it.
fn shard_enumeration(
    spec: &CheckedSpec,
    options: &DeployOptions,
) -> Result<(String, Vec<String>), String> {
    let mut refs: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for device in spec.devices() {
        for attr in &device.attributes {
            if let Type::Enum(name) = &attr.ty {
                // Inherited attributes repeat on every descendant; count
                // only the declaring family so a deep hierarchy does not
                // outvote a wide one.
                if attr.declared_in == device.name {
                    refs.entry(name)
                        .or_default()
                        .push(format!("{}.{}", device.name, attr.name));
                }
            }
        }
    }
    if let Some(name) = &options.shard_enum {
        if spec.enumeration(name).is_none() {
            return Err(format!("unknown shard enumeration `{name}`"));
        }
        let attrs = refs.get(name.as_str()).cloned().unwrap_or_default();
        if attrs.is_empty() {
            return Err(format!(
                "no device attribute has type `{name}`; nothing to shard by"
            ));
        }
        return Ok((name.clone(), attrs));
    }
    let best = refs.values().map(|a| a.len()).max().ok_or(
        "no device attribute has an enumeration type; pass --shard-enum or add a discovery \
         attribute to shard by",
    )?;
    let winners: Vec<&&str> = refs
        .iter()
        .filter(|(_, a)| a.len() == best)
        .map(|(n, _)| n)
        .collect();
    if winners.len() > 1 {
        return Err(format!(
            "ambiguous shard enumeration (equally referenced: {}); pass --shard-enum",
            winners
                .iter()
                .map(|n| format!("`{n}`"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let name = (*winners[0]).to_owned();
    let attrs = refs[name.as_str()].clone();
    Ok((name, attrs))
}

/// Shared file header for generated per-node sources.
fn node_header(manifest: &NodeManifest, node: &str, role: &str) -> String {
    format!(
        "//! Deployment unit `{node}` of design `{}` — {role}.\n\
         //!\n\
         //! Generated by `diaspec-gen deploy`; addresses and slices come\n\
         //! from the accompanying `manifest.json`. Do not edit.\n\n",
        manifest.design
    )
}

/// Emits `node_coordinator.rs`: the unit running the engine, bridging
/// every remote device family over one [`Link`] per edge node.
fn coordinator_source(manifest: &NodeManifest) -> GeneratedFile {
    let c = &manifest.coordinator;
    let mut out = node_header(manifest, &c.name, "the orchestration coordinator");
    out.push_str(
        "use diaspec_runtime::deploy::{BreakerConfig, Link, RemoteDeviceProxy, SessionConfig};\n",
    );
    out.push_str("use diaspec_runtime::{RetryConfig, TcpTransport};\n");
    out.push_str("use std::sync::Arc;\n\n");
    push_list(
        &mut out,
        "COMPONENTS",
        "Contexts and controllers this node runs.",
        c.components.iter().map(String::as_str),
    );
    push_list(
        &mut out,
        "LOCAL_DEVICES",
        "Device families hosted on this node.",
        c.devices.iter().map(String::as_str),
    );
    let _ = write!(
        out,
        "/// Delivery-pipeline shard count for this node's engine: pass to\n\
         /// `Orchestrator::set_shards` before `launch` (1 = serial inline\n\
         /// pipeline; N > 1 = sharded plan with the sequenced merge — the\n\
         /// observable outcome is byte-identical either way).\n\
         pub const PIPELINE_SHARDS: usize = {};\n\n",
        c.pipeline_shards.max(1)
    );
    out.push_str("/// Edge peers this node connects to: `(node, address)`.\n");
    out.push_str("pub const PEERS: &[(&str, &str)] = &[\n");
    for peer in &c.connects {
        let _ = writeln!(out, "    ({:?}, {:?}),", peer.node, peer.addr);
    }
    out.push_str("];\n\n");
    out.push_str("/// Remote device families, bridged per hosting edge: `(family, node)`.\n");
    out.push_str("pub const REMOTE_DEVICES: &[(&str, &str)] = &[\n");
    for edge in &manifest.edges {
        for device in &edge.devices {
            let _ = writeln!(out, "    ({device:?}, {:?}),", edge.name);
        }
    }
    out.push_str("];\n\n");
    out.push_str(
        "/// Per-link resilience policy from the manifest:\n\
         /// `(node, session, resend_queue, max_attempts, base_backoff_ms,\n\
         /// timeout_ms, breaker_failures, breaker_cooldown_ms)`.\n\
         pub const LINK_POLICIES: &[(&str, bool, usize, u32, u64, u64, u32, u64)] = &[\n",
    );
    for edge in &manifest.edges {
        let p = &edge.link;
        let _ = writeln!(
            out,
            "    ({:?}, {}, {}, {}, {}, {}, {}, {}),",
            edge.name,
            p.session,
            p.resend_queue,
            p.max_attempts,
            p.base_backoff_ms,
            p.timeout_ms,
            p.breaker_failures,
            p.breaker_cooldown_ms,
        );
    }
    out.push_str("];\n\n");
    out.push_str(
        "/// Opens one socket link per edge peer, in `PEERS` order, applying\n\
         /// each peer's `LINK_POLICIES` entry (at-least-once session layer\n\
         /// when `session` is set, best-effort otherwise).\n\
         pub fn links(retry: RetryConfig) -> Vec<(&'static str, Arc<Link>)> {\n\
         \x20   PEERS\n\
         \x20       .iter()\n\
         \x20       .map(|(node, addr)| {\n\
         \x20           let transport = TcpTransport::new(*node, *addr, retry);\n\
         \x20           let policy = LINK_POLICIES.iter().find(|(name, ..)| name == node);\n\
         \x20           let link = match policy {\n\
         \x20               Some(&(_, true, resend_queue, max_attempts, base_backoff_ms, timeout_ms, failures, cooldown_ms)) => {\n\
         \x20                   Link::with_session(\n\
         \x20                       transport,\n\
         \x20                       SessionConfig {\n\
         \x20                           retry: RetryConfig { max_attempts, base_backoff_ms, timeout_ms },\n\
         \x20                           resend_queue,\n\
         \x20                           breaker: BreakerConfig { failure_threshold: failures, cooldown_ms },\n\
         \x20                       },\n\
         \x20                   )\n\
         \x20               }\n\
         \x20               _ => Link::new(transport),\n\
         \x20           };\n\
         \x20           (*node, link)\n\
         \x20       })\n\
         \x20       .collect()\n\
         }\n\n\
         /// Proxies a remote family hosted on `node` through its link.\n\
         pub fn proxy(family: &str, node: &str, links: &[(&'static str, Arc<Link>)]) -> Option<RemoteDeviceProxy> {\n\
         \x20   links\n\
         \x20       .iter()\n\
         \x20       .find(|(name, _)| *name == node)\n\
         \x20       .map(|(_, link)| RemoteDeviceProxy::new(family, Arc::clone(link)))\n\
         }\n",
    );
    GeneratedFile {
        path: format!("node_{}.rs", c.name),
        content: out,
    }
}

/// Emits `node_<edge>.rs`: a unit hosting device shards behind an
/// [`EdgeRuntime`] served on its listen address.
fn edge_source(manifest: &NodeManifest, edge: &EdgeManifest) -> GeneratedFile {
    let mut out = node_header(manifest, &edge.name, "an edge device host");
    out.push_str("use diaspec_runtime::deploy::EdgeRuntime;\n\n");
    let _ = writeln!(
        out,
        "/// The address this node listens on.\npub const LISTEN: &str = {:?};\n",
        edge.listen
    );
    push_list(
        &mut out,
        "DEVICES",
        "Device families with instances on this node.",
        edge.devices.iter().map(String::as_str),
    );
    push_list(
        &mut out,
        "SHARDS",
        "Shard-enum variants assigned to this node.",
        edge.shards.iter().map(String::as_str),
    );
    let _ = write!(
        out,
        "/// Builds this node's runtime. Register one driver per family and\n\
         /// shard (`EdgeRuntime::add_device`) before serving on `LISTEN`.\n\
         #[must_use]\n\
         pub fn runtime() -> EdgeRuntime {{\n\
         \x20   EdgeRuntime::new({:?})\n\
         }}\n",
        edge.name
    );
    GeneratedFile {
        path: format!("node_{}.rs", edge.name),
        content: out,
    }
}

/// Appends a documented `pub const NAME: &[&str]` list.
fn push_list<'a>(out: &mut String, name: &str, doc: &str, items: impl Iterator<Item = &'a str>) {
    let _ = writeln!(out, "/// {doc}");
    let _ = writeln!(out, "pub const {name}: &[&str] = &[");
    for item in items {
        let _ = writeln!(out, "    {item:?},");
    }
    out.push_str("];\n\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaspec_core::compile_str;

    fn parking() -> CheckedSpec {
        let source = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../specs/parking.spec"
        ))
        .unwrap();
        compile_str(&source).unwrap()
    }

    #[test]
    fn parking_splits_into_coordinator_and_sharded_edges() {
        let spec = parking();
        let options = DeployOptions {
            design: "parking".to_owned(),
            ..DeployOptions::default()
        };
        let deployment = plan_deployment(&spec, &options).unwrap();
        let m = &deployment.manifest;
        assert_eq!(m.shard.enumeration, "ParkingLotEnum");
        assert!(m
            .shard
            .attributes
            .contains(&"PresenceSensor.parkingLot".to_owned()));
        // Lot-scoped families shard to the edges; city-scoped ones stay.
        for edge in &m.edges {
            assert!(edge.devices.contains(&"PresenceSensor".to_owned()));
            assert!(edge.devices.contains(&"ParkingEntrancePanel".to_owned()));
        }
        assert!(m
            .coordinator
            .devices
            .contains(&"CityEntrancePanel".to_owned()));
        assert!(m.coordinator.devices.contains(&"Messenger".to_owned()));
        // All 8 lots covered exactly once across 2 edges.
        let mut lots: Vec<&String> = m.edges.iter().flat_map(|e| &e.shards).collect();
        lots.sort();
        assert_eq!(lots.len(), 8);
        lots.dedup();
        assert_eq!(lots.len(), 8);
        // Components all run centrally, and data really crosses the cut.
        assert!(m
            .coordinator
            .components
            .contains(&"ParkingAvailability".to_owned()));
        assert!(!m.cut_routes.is_empty());
        assert!(m
            .cut_routes
            .iter()
            .all(|r| r.from_node == "coordinator" || r.to_node == "coordinator"));
        assert!(deployment.warnings.is_empty());
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let spec = parking();
        let deployment = plan_deployment(&spec, &DeployOptions::default()).unwrap();
        let json = &deployment.files.file("manifest.json").unwrap().content;
        let back: NodeManifest = serde_json::from_str(json).unwrap();
        assert_eq!(back, deployment.manifest);
    }

    #[test]
    fn pre_session_manifests_default_their_link_policy() {
        // A manifest written before the session layer existed has no
        // `link` field; deserialization must fill in the default.
        let legacy = r#"{
            "design": "parking",
            "shard": {"enumeration": "ParkingLotEnum", "attributes": []},
            "coordinator": {
                "name": "coordinator",
                "components": [],
                "devices": [],
                "connects": []
            },
            "edges": [{
                "name": "edge0",
                "listen": "127.0.0.1:7070",
                "devices": [],
                "shards": []
            }],
            "cut_routes": []
        }"#;
        let manifest: NodeManifest = serde_json::from_str(legacy).unwrap();
        assert_eq!(manifest.edges[0].link, LinkPolicy::default());
        // Likewise for manifests predating the pipeline-shard axis.
        assert_eq!(manifest.coordinator.pipeline_shards, 0);
    }

    #[test]
    fn pipeline_shards_ride_into_the_manifest_and_coordinator_source() {
        let spec = parking();
        let options = DeployOptions {
            pipeline_shards: 4,
            ..DeployOptions::default()
        };
        let deployment = plan_deployment(&spec, &options).unwrap();
        assert_eq!(deployment.manifest.coordinator.pipeline_shards, 4);
        let coord = &deployment
            .files
            .file("node_coordinator.rs")
            .unwrap()
            .content;
        assert!(coord.contains("pub const PIPELINE_SHARDS: usize = 4;"));
        // The default stays on the serial inline pipeline.
        let serial = plan_deployment(&spec, &DeployOptions::default()).unwrap();
        assert_eq!(serial.manifest.coordinator.pipeline_shards, 1);
        assert!(serial
            .files
            .file("node_coordinator.rs")
            .unwrap()
            .content
            .contains("pub const PIPELINE_SHARDS: usize = 1;"));
    }

    #[test]
    fn per_node_sources_declare_their_slice() {
        let spec = parking();
        let deployment = plan_deployment(&spec, &DeployOptions::default()).unwrap();
        let coord = &deployment
            .files
            .file("node_coordinator.rs")
            .unwrap()
            .content;
        assert!(coord.contains("pub const PEERS"));
        assert!(coord.contains("TcpTransport::new"));
        assert!(coord.contains("\"PresenceSensor\", \"edge0\""));
        // The manifest's link policy rides into the generated source.
        assert!(coord.contains("pub const LINK_POLICIES"));
        assert!(coord.contains("(\"edge0\", true, 64, 3, 100, 10000, 4, 60000),"));
        assert!(coord.contains("Link::with_session"));
        let edge = &deployment.files.file("node_edge1.rs").unwrap().content;
        assert!(edge.contains("pub const LISTEN: &str = \"127.0.0.1:7071\""));
        assert!(edge.contains("EdgeRuntime::new(\"edge1\")"));
        // Round-robin: edge1 gets the odd-indexed lots.
        assert!(edge.contains("\"B16\""));
        assert!(!edge.contains("\"A22\""));
    }

    #[test]
    fn bad_options_are_rejected_with_messages() {
        let spec = parking();
        let zero = DeployOptions {
            edges: 0,
            ..DeployOptions::default()
        };
        assert!(plan_deployment(&spec, &zero).unwrap_err().contains("edge"));
        let wide = DeployOptions {
            edges: 9,
            ..DeployOptions::default()
        };
        assert!(plan_deployment(&spec, &wide)
            .unwrap_err()
            .contains("8 variant(s)"));
        let unknown = DeployOptions {
            shard_enum: Some("NoSuchEnum".to_owned()),
            ..DeployOptions::default()
        };
        assert!(plan_deployment(&spec, &unknown)
            .unwrap_err()
            .contains("unknown shard enumeration"));
    }

    #[test]
    fn designs_without_enum_attributes_cannot_be_sharded() {
        let spec = compile_str(
            r#"
            device Sensor { source v as Integer; }
            context C as Integer { when provided v from Sensor always publish; }
            "#,
        )
        .unwrap();
        let err = plan_deployment(&spec, &DeployOptions::default()).unwrap_err();
        assert!(err.contains("no device attribute has an enumeration type"));
    }
}

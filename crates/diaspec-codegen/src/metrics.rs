//! Generation metrics: the data behind the paper's productivity claim.
//!
//! TSE'12 \[8\] reports that "the amount of generated code may represent up
//! to 80% of the resulting application code". This module measures the
//! generated side: lines of code per generated file and the number of
//! abstract callbacks a developer must implement. Experiment E9 combines
//! these with the hand-written line counts of the case-study applications
//! to reproduce the ratio.

use crate::GeneratedFramework;
use serde::{Deserialize, Serialize};

/// Lines-of-code accounting for a generated framework.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Per-file counts: (path, non-blank non-comment-only lines).
    pub files: Vec<(String, usize)>,
    /// Total generated lines of code across all files.
    pub total_loc: usize,
    /// Number of abstract callback methods the developer must implement.
    pub abstract_methods: usize,
}

impl GenerationReport {
    /// The generated fraction given `handwritten_loc` lines of
    /// developer-supplied code: `generated / (generated + handwritten)`.
    #[must_use]
    pub fn generated_fraction(&self, handwritten_loc: usize) -> f64 {
        let total = self.total_loc + handwritten_loc;
        if total == 0 {
            0.0
        } else {
            self.total_loc as f64 / total as f64
        }
    }
}

/// Counts the lines of code of one source text: non-blank lines that are
/// not pure comments.
#[must_use]
pub fn count_loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|line| {
            !line.is_empty()
                && !line.starts_with("//")
                && !line.starts_with("/*")
                && !line.starts_with('*')
                && !line.starts_with("*/")
        })
        .count()
}

/// Builds a [`GenerationReport`] for a generated framework.
#[must_use]
pub fn report(framework: &GeneratedFramework) -> GenerationReport {
    let files: Vec<(String, usize)> = framework
        .files
        .iter()
        .map(|f| (f.path.clone(), count_loc(&f.content)))
        .collect();
    let total_loc = files.iter().map(|(_, n)| n).sum();
    let abstract_methods = framework
        .files
        .iter()
        .map(|f| {
            f.content
                .lines()
                .filter(|l| {
                    let t = l.trim_start();
                    // Rust trait methods without bodies, and Java abstract methods.
                    (t.starts_with("fn ") && l.trim_end().ends_with(';'))
                        || t.contains("abstract ") && l.trim_end().ends_with(';')
                })
                .count()
        })
        .sum();
    GenerationReport {
        files,
        total_loc,
        abstract_methods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_java, generate_rust};
    use diaspec_core::compile_str;

    const SPEC: &str = r#"
        device Sensor { source v as Integer; }
        device Sink { action absorb(level as Integer); }
        context C as Integer { when provided v from Sensor always publish; }
        controller Out { when provided C do absorb on Sink; }
    "#;

    #[test]
    fn count_loc_skips_blanks_and_comments() {
        let src = "\n// comment\nfn x() {\n    body();\n}\n\n/* block */\n * cont\n */\n";
        assert_eq!(count_loc(src), 3);
        assert_eq!(count_loc(""), 0);
    }

    #[test]
    fn report_counts_generated_lines_and_callbacks() {
        let spec = compile_str(SPEC).unwrap();
        let rust = report(&generate_rust(&spec));
        assert!(rust.total_loc > 50, "framework is substantial: {rust:?}");
        assert!(rust.abstract_methods >= 2, "{rust:?}");
        let java = report(&generate_java(&spec));
        assert!(java.total_loc > 30, "{java:?}");
        assert!(!java.files.is_empty());
    }

    #[test]
    fn generated_fraction() {
        let r = GenerationReport {
            files: vec![],
            total_loc: 800,
            abstract_methods: 4,
        };
        assert!((r.generated_fraction(200) - 0.8).abs() < 1e-9);
        let empty = GenerationReport {
            files: vec![],
            total_loc: 0,
            abstract_methods: 0,
        };
        assert_eq!(empty.generated_fraction(0), 0.0);
    }
}

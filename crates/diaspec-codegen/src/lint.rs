//! The `lint` driver: whole-design diagnostics with configurable levels
//! and machine-readable output.
//!
//! Linting a specification runs the full pipeline — parse, check, and
//! every [`diaspec_core::analysis`] pass — and renders the combined
//! diagnostics one of three ways:
//!
//! - **human** — source-line + caret rendering (the compiler style);
//! - **json** — a stable object per diagnostic for scripting;
//! - **sarif** — a SARIF 2.1.0 log for code-scanning UIs.
//!
//! Severities are policy, not fact: `--deny warnings` promotes every
//! warning to an error, and per-code overrides (`--allow W0403`,
//! `--deny W0401`, `--warn E0401`) pick individual rules out, with the
//! per-code setting winning over the blanket flag — the same layering as
//! `rustc -D warnings -A some_lint`.

use diaspec_core::analysis::{analyze_with, AnalysisOptions};
use diaspec_core::diag::{Diagnostic, Severity};
use diaspec_core::span::{SourceMap, Span};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Effective level for one diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Drop the diagnostic entirely.
    Allow,
    /// Report as a warning (does not fail the lint).
    Warn,
    /// Report as an error (fails the lint).
    Deny,
}

/// Output format of [`lint_source`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintFormat {
    /// Caret diagnostics for terminals.
    #[default]
    Human,
    /// One JSON object for the whole run.
    Json,
    /// A SARIF 2.1.0 log.
    Sarif,
}

/// Configuration of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Output format.
    pub format: LintFormat,
    /// Promote all warnings without a per-code override to errors.
    pub deny_warnings: bool,
    /// Per-code overrides; these win over `deny_warnings`.
    pub levels: BTreeMap<String, LintLevel>,
    /// Fleet-size hypothesis forwarded to the capacity report.
    pub fleet_size: Option<u64>,
    /// Append the static capacity report to human output.
    pub capacity: bool,
}

/// The result of linting one specification.
#[derive(Debug, Clone)]
pub struct LintOutcome {
    /// The formatted output, ready to print.
    pub rendered: String,
    /// Diagnostics that ended up error-severity after level mapping.
    pub errors: usize,
    /// Diagnostics that ended up warning-severity.
    pub warnings: usize,
}

impl LintOutcome {
    /// Whether the lint should exit non-zero.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.errors > 0
    }
}

/// Lints `source` (read from `file`, used for reporting only) and
/// renders the outcome according to `options`.
///
/// Parse or check *errors* short-circuit the analysis passes (there is
/// no model to analyze) but still render in the requested format, so a
/// SARIF consumer sees broken designs too.
#[must_use]
pub fn lint_source(file: &str, source: &str, options: &LintOptions) -> LintOutcome {
    let map = SourceMap::new(source);
    let analysis_options = AnalysisOptions {
        fleet_size: options
            .fleet_size
            .unwrap_or(AnalysisOptions::default().fleet_size),
    };
    let (raw, capacity) = match diaspec_core::compile_str_with_warnings(source) {
        Ok((spec, warnings)) => {
            let report = analyze_with(&spec, &analysis_options);
            let mut diags: Vec<Diagnostic> = warnings.iter().cloned().collect();
            diags.extend(report.diagnostics.iter().cloned());
            (diags, Some(report.capacity))
        }
        Err(error) => (error.diagnostics().iter().cloned().collect(), None),
    };

    // Severity policy: per-code override, else the blanket flag.
    let mut kept: Vec<Diagnostic> = Vec::new();
    for mut diag in raw {
        match options.levels.get(diag.code) {
            Some(LintLevel::Allow) => continue,
            Some(LintLevel::Warn) => diag.severity = Severity::Warning,
            Some(LintLevel::Deny) => diag.severity = Severity::Error,
            None => {
                if options.deny_warnings && diag.severity == Severity::Warning {
                    diag.severity = Severity::Error;
                }
            }
        }
        kept.push(diag);
    }
    let errors = kept
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = kept.len() - errors;

    let rendered = match options.format {
        LintFormat::Human => {
            let mut out = String::new();
            for diag in &kept {
                out.push_str(&diag.render(&map));
                out.push('\n');
            }
            let _ = writeln!(out, "{file}: {errors} error(s), {warnings} warning(s)");
            if options.capacity {
                if let Some(capacity) = &capacity {
                    let _ = writeln!(out, "{capacity}");
                }
            }
            out
        }
        LintFormat::Json => {
            serde_json::to_string_pretty(&json_log(file, &map, &kept, errors, warnings))
                .expect("lint JSON serializes")
        }
        LintFormat::Sarif => serde_json::to_string_pretty(&sarif_log(file, &map, &kept))
            .expect("lint SARIF serializes"),
    };

    LintOutcome {
        rendered,
        errors,
        warnings,
    }
}

fn severity_str(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

/// A `{line, column, endLine, endColumn}` fragment for a span.
fn region(map: &SourceMap, span: Span) -> Vec<(String, Value)> {
    let start = map.line_col(span.start);
    let end = map.line_col(span.end);
    vec![
        ("startLine".to_owned(), Value::UInt(u64::from(start.line))),
        ("startColumn".to_owned(), Value::UInt(u64::from(start.col))),
        ("endLine".to_owned(), Value::UInt(u64::from(end.line))),
        ("endColumn".to_owned(), Value::UInt(u64::from(end.col))),
    ]
}

fn json_log(
    file: &str,
    map: &SourceMap,
    diags: &[Diagnostic],
    errors: usize,
    warnings: usize,
) -> Value {
    let items: Vec<Value> = diags
        .iter()
        .map(|diag| {
            let pos = map.line_col(diag.span.start);
            let notes: Vec<Value> = diag
                .notes
                .iter()
                .map(|(message, span)| {
                    let mut entries = vec![("message".to_owned(), Value::String(message.clone()))];
                    if let Some(span) = span {
                        let pos = map.line_col(span.start);
                        entries.push(("line".to_owned(), Value::UInt(u64::from(pos.line))));
                        entries.push(("column".to_owned(), Value::UInt(u64::from(pos.col))));
                    }
                    Value::Object(entries)
                })
                .collect();
            Value::Object(vec![
                ("code".to_owned(), Value::String(diag.code.to_owned())),
                (
                    "level".to_owned(),
                    Value::String(severity_str(diag.severity).to_owned()),
                ),
                ("message".to_owned(), Value::String(diag.message.clone())),
                ("line".to_owned(), Value::UInt(u64::from(pos.line))),
                ("column".to_owned(), Value::UInt(u64::from(pos.col))),
                ("notes".to_owned(), Value::Array(notes)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("file".to_owned(), Value::String(file.to_owned())),
        ("errors".to_owned(), Value::UInt(errors as u64)),
        ("warnings".to_owned(), Value::UInt(warnings as u64)),
        ("diagnostics".to_owned(), Value::Array(items)),
    ])
}

/// Builds a minimal but valid SARIF 2.1.0 log: one run, one rule entry
/// per distinct code, one result per diagnostic (notes become related
/// locations' messages inline).
fn sarif_log(file: &str, map: &SourceMap, diags: &[Diagnostic]) -> Value {
    let mut rule_ids: Vec<&str> = diags.iter().map(|d| d.code).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();
    let rules: Vec<Value> = rule_ids
        .iter()
        .map(|id| Value::Object(vec![("id".to_owned(), Value::String((*id).to_owned()))]))
        .collect();

    let results: Vec<Value> = diags
        .iter()
        .map(|diag| {
            // Fold the notes into the message text: SARIF viewers always
            // show message.text, while relatedLocations support varies.
            let mut text = diag.message.clone();
            for (note, _) in &diag.notes {
                text.push_str("\nnote: ");
                text.push_str(note);
            }
            let location = Value::Object(vec![(
                "physicalLocation".to_owned(),
                Value::Object(vec![
                    (
                        "artifactLocation".to_owned(),
                        Value::Object(vec![("uri".to_owned(), Value::String(file.to_owned()))]),
                    ),
                    ("region".to_owned(), Value::Object(region(map, diag.span))),
                ]),
            )]);
            Value::Object(vec![
                ("ruleId".to_owned(), Value::String(diag.code.to_owned())),
                (
                    "level".to_owned(),
                    Value::String(severity_str(diag.severity).to_owned()),
                ),
                (
                    "message".to_owned(),
                    Value::Object(vec![("text".to_owned(), Value::String(text))]),
                ),
                ("locations".to_owned(), Value::Array(vec![location])),
            ])
        })
        .collect();

    Value::Object(vec![
        (
            "$schema".to_owned(),
            Value::String("https://json.schemastore.org/sarif-2.1.0.json".to_owned()),
        ),
        ("version".to_owned(), Value::String("2.1.0".to_owned())),
        (
            "runs".to_owned(),
            Value::Array(vec![Value::Object(vec![
                (
                    "tool".to_owned(),
                    Value::Object(vec![(
                        "driver".to_owned(),
                        Value::Object(vec![
                            ("name".to_owned(), Value::String("diaspec-lint".to_owned())),
                            (
                                "informationUri".to_owned(),
                                Value::String("https://github.com/diaspec/diaspec".to_owned()),
                            ),
                            ("rules".to_owned(), Value::Array(rules)),
                        ]),
                    )]),
                ),
                ("results".to_owned(), Value::Array(results)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONFLICT: &str = r#"
        device Probe { source v as Integer; }
        device Valve { action close; }
        context Hot as Integer { when provided v from Probe always publish; }
        controller A { when provided Hot do close on Valve; }
        controller B { when provided Hot do close on Valve; }
    "#;

    const LOOPY: &str = r#"
        device Heater { source temperature as Float; action heat; }
        context Cold as Float { when provided temperature from Heater always publish; }
        controller Thermostat { when provided Cold do heat on Heater; }
    "#;

    #[test]
    fn human_output_renders_carets_and_summary() {
        let outcome = lint_source("x.spec", CONFLICT, &LintOptions::default());
        assert_eq!(outcome.errors, 1);
        assert!(outcome.failed());
        assert!(outcome.rendered.contains("error[E0401]"));
        assert!(outcome.rendered.contains("^"), "{}", outcome.rendered);
        assert!(outcome
            .rendered
            .contains("x.spec: 1 error(s), 0 warning(s)"));
    }

    #[test]
    fn deny_warnings_promotes() {
        let outcome = lint_source(
            "x.spec",
            LOOPY,
            &LintOptions {
                deny_warnings: true,
                ..LintOptions::default()
            },
        );
        assert!(outcome.failed());
        assert!(outcome.rendered.contains("error[W0402]"));
    }

    #[test]
    fn per_code_override_wins_over_blanket() {
        let mut levels = BTreeMap::new();
        levels.insert("W0402".to_owned(), LintLevel::Warn);
        let outcome = lint_source(
            "x.spec",
            LOOPY,
            &LintOptions {
                deny_warnings: true,
                levels,
                ..LintOptions::default()
            },
        );
        assert!(!outcome.failed());
        assert_eq!(outcome.warnings, 1);
    }

    #[test]
    fn allow_drops_the_diagnostic() {
        let mut levels = BTreeMap::new();
        levels.insert("W0402".to_owned(), LintLevel::Allow);
        let outcome = lint_source(
            "x.spec",
            LOOPY,
            &LintOptions {
                levels,
                ..LintOptions::default()
            },
        );
        assert_eq!(outcome.errors + outcome.warnings, 0);
        assert!(!outcome.failed());
    }

    #[test]
    fn json_format_is_parseable_and_located() {
        let outcome = lint_source(
            "x.spec",
            CONFLICT,
            &LintOptions {
                format: LintFormat::Json,
                ..LintOptions::default()
            },
        );
        let value: Value = serde_json::from_str(&outcome.rendered).unwrap();
        assert_eq!(value.get("file").and_then(Value::as_str), Some("x.spec"));
        assert_eq!(value.get("errors").and_then(Value::as_u64), Some(1));
        let diags = value.get("diagnostics").and_then(Value::as_array).unwrap();
        assert_eq!(diags[0].get("code").and_then(Value::as_str), Some("E0401"));
        // The span points at the first `do` clause, not 1:1.
        assert!(diags[0].get("line").and_then(Value::as_u64).unwrap() > 1);
    }

    #[test]
    fn sarif_log_has_required_shape() {
        let outcome = lint_source(
            "x.spec",
            CONFLICT,
            &LintOptions {
                format: LintFormat::Sarif,
                ..LintOptions::default()
            },
        );
        let value: Value = serde_json::from_str(&outcome.rendered).unwrap();
        assert_eq!(value.get("version").and_then(Value::as_str), Some("2.1.0"));
        assert!(value
            .get("$schema")
            .and_then(Value::as_str)
            .unwrap()
            .contains("sarif-2.1.0"));
        let run = &value.get("runs").and_then(Value::as_array).unwrap()[0];
        let driver = run.get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(
            driver.get("name").and_then(Value::as_str),
            Some("diaspec-lint")
        );
        let results = run.get("results").and_then(Value::as_array).unwrap();
        let result = &results[0];
        assert_eq!(result.get("ruleId").and_then(Value::as_str), Some("E0401"));
        assert_eq!(result.get("level").and_then(Value::as_str), Some("error"));
        let region = result.get("locations").and_then(Value::as_array).unwrap()[0]
            .get("physicalLocation")
            .and_then(|l| l.get("region"))
            .unwrap();
        assert!(region.get("startLine").and_then(Value::as_u64).unwrap() > 1);
        // Provenance chains ride along in the message text.
        let text = result
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Value::as_str)
            .unwrap();
        assert!(text.contains("actuation chain"), "{text}");
    }

    #[test]
    fn broken_specs_still_render_in_sarif() {
        let outcome = lint_source(
            "x.spec",
            "device { }",
            &LintOptions {
                format: LintFormat::Sarif,
                ..LintOptions::default()
            },
        );
        assert!(outcome.failed());
        let value: Value = serde_json::from_str(&outcome.rendered).unwrap();
        assert!(!value.get("runs").and_then(Value::as_array).unwrap()[0]
            .get("results")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn capacity_report_appended_on_request() {
        let outcome = lint_source(
            "x.spec",
            r#"
            device Meter { source reading as Float; }
            device K { action a; }
            context Usage as Float { when periodic reading from Meter <1 min> always publish; }
            controller Out { when provided Usage do a on K; }
            "#,
            &LintOptions {
                capacity: true,
                fleet_size: Some(100),
                ..LintOptions::default()
            },
        );
        assert!(outcome.rendered.contains("capacity report"));
        assert!(outcome.rendered.contains("fleet hypothesis: 100"));
    }
}

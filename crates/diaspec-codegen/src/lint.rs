//! The `lint` driver: whole-design diagnostics with configurable levels
//! and machine-readable output.
//!
//! Linting a specification runs the full pipeline — parse, check, and
//! every [`diaspec_core::analysis`] pass — and renders the combined
//! diagnostics one of three ways:
//!
//! - **human** — source-line + caret rendering (the compiler style);
//! - **json** — a stable object per diagnostic for scripting;
//! - **sarif** — a SARIF 2.1.0 log for code-scanning UIs.
//!
//! Severities are policy, not fact: `--deny warnings` promotes every
//! warning to an error, and per-code overrides (`--allow W0403`,
//! `--deny W0401`, `--warn E0401`) pick individual rules out, with the
//! per-code setting winning over the blanket flag — the same layering as
//! `rustc -D warnings -A some_lint`.
//!
//! Linting *several* specifications together ([`lint_designs`]) adds the
//! cross-design deployment passes on top: each file is linted exactly as
//! it would be alone, then [`analyze_deployment`] runs over the merged
//! device taxonomy (plus any `--manifest` deployment pins) and the
//! cross-application findings — E0601/W0601 conflicts, W0602 aggregate
//! capacity, E0602 cut safety — render in a trailing cross-design
//! section whose spans point into whichever file they belong to.

use crate::deploy::NodeManifest;
use diaspec_core::analysis::deployment::{
    analyze_deployment, CrossFinding, DeployPins, DeploymentOptions, DesignRef, DesignSpan,
    PinnedHost,
};
use diaspec_core::analysis::{analyze_with, AnalysisOptions, CapacityReport};
use diaspec_core::diag::{Diagnostic, Severity};
use diaspec_core::model::CheckedSpec;
use diaspec_core::span::{SourceMap, Span};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Effective level for one diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Drop the diagnostic entirely.
    Allow,
    /// Report as a warning (does not fail the lint).
    Warn,
    /// Report as an error (fails the lint).
    Deny,
}

/// Output format of [`lint_source`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintFormat {
    /// Caret diagnostics for terminals.
    #[default]
    Human,
    /// One JSON object for the whole run.
    Json,
    /// A SARIF 2.1.0 log.
    Sarif,
}

/// Configuration of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Output format.
    pub format: LintFormat,
    /// Promote all warnings without a per-code override to errors.
    pub deny_warnings: bool,
    /// Per-code overrides; these win over `deny_warnings`.
    pub levels: BTreeMap<String, LintLevel>,
    /// Fleet-size hypothesis forwarded to the capacity report.
    pub fleet_size: Option<u64>,
    /// Append the static capacity report to human output.
    pub capacity: bool,
    /// Cut-link budget (msgs/hour) for the cross-design W0602 pass.
    pub link_budget: Option<f64>,
}

/// The result of linting one specification (or one co-deployment).
#[derive(Debug, Clone)]
pub struct LintOutcome {
    /// The formatted output, ready to print.
    pub rendered: String,
    /// Diagnostics that ended up error-severity after level mapping.
    pub errors: usize,
    /// Diagnostics that ended up warning-severity.
    pub warnings: usize,
    /// Whether some input failed to parse or check — there was no model
    /// to analyze. Callers exit distinctly (3, not 2) on this.
    pub broken: bool,
}

impl LintOutcome {
    /// Whether the lint should exit non-zero.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.errors > 0
    }
}

/// One linted file: its diagnostics after level mapping, plus the model
/// when the front end produced one.
struct FileLint {
    file: String,
    map: SourceMap,
    kept: Vec<Diagnostic>,
    errors: usize,
    warnings: usize,
    capacity: Option<CapacityReport>,
    spec: Option<CheckedSpec>,
}

/// Applies the severity policy to one code, returning the effective
/// severity (or `None` when allowed away).
fn effective_severity(options: &LintOptions, code: &str, severity: Severity) -> Option<Severity> {
    match options.levels.get(code) {
        Some(LintLevel::Allow) => None,
        Some(LintLevel::Warn) => Some(Severity::Warning),
        Some(LintLevel::Deny) => Some(Severity::Error),
        None => {
            if options.deny_warnings && severity == Severity::Warning {
                Some(Severity::Error)
            } else {
                Some(severity)
            }
        }
    }
}

/// Runs the front end plus every single-design analysis pass over one
/// file and applies the severity policy.
fn lint_one(file: &str, source: &str, options: &LintOptions) -> FileLint {
    let map = SourceMap::new(source);
    let analysis_options = AnalysisOptions {
        fleet_size: options
            .fleet_size
            .unwrap_or(AnalysisOptions::default().fleet_size),
    };
    let (raw, capacity, spec) = match diaspec_core::compile_str_with_warnings(source) {
        Ok((spec, warnings)) => {
            let report = analyze_with(&spec, &analysis_options);
            let mut diags: Vec<Diagnostic> = warnings.iter().cloned().collect();
            diags.extend(report.diagnostics.iter().cloned());
            (diags, Some(report.capacity), Some(spec))
        }
        Err(error) => (error.diagnostics().iter().cloned().collect(), None, None),
    };

    let mut kept: Vec<Diagnostic> = Vec::new();
    for mut diag in raw {
        let Some(severity) = effective_severity(options, diag.code, diag.severity) else {
            continue;
        };
        diag.severity = severity;
        kept.push(diag);
    }
    let errors = kept
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = kept.len() - errors;
    FileLint {
        file: file.to_owned(),
        map,
        kept,
        errors,
        warnings,
        capacity,
        spec,
    }
}

/// The human-format section for one file: caret diagnostics, the
/// per-file summary line, and (on request) the capacity report.
fn render_human_file(lint: &FileLint, options: &LintOptions) -> String {
    let mut out = String::new();
    for diag in &lint.kept {
        out.push_str(&diag.render(&lint.map));
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "{}: {} error(s), {} warning(s)",
        lint.file, lint.errors, lint.warnings
    );
    if options.capacity {
        if let Some(capacity) = &lint.capacity {
            let _ = writeln!(out, "{capacity}");
        }
    }
    out
}

/// Lints `source` (read from `file`, used for reporting only) and
/// renders the outcome according to `options`.
///
/// Parse or check *errors* short-circuit the analysis passes (there is
/// no model to analyze) but still render in the requested format, so a
/// SARIF consumer sees broken designs too.
#[must_use]
pub fn lint_source(file: &str, source: &str, options: &LintOptions) -> LintOutcome {
    let lint = lint_one(file, source, options);
    let rendered = match options.format {
        LintFormat::Human => render_human_file(&lint, options),
        LintFormat::Json => {
            serde_json::to_string_pretty(&json_log(&lint)).expect("lint JSON serializes")
        }
        LintFormat::Sarif => {
            serde_json::to_string_pretty(&sarif_log(std::slice::from_ref(&lint), &[]))
                .expect("lint SARIF serializes")
        }
    };
    LintOutcome {
        rendered,
        errors: lint.errors,
        warnings: lint.warnings,
        broken: lint.spec.is_none(),
    }
}

/// The display name of a design, from its file path (the stem).
fn design_name(file: &str) -> String {
    std::path::Path::new(file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| file.to_owned())
}

/// Reduces a deployment manifest to the device pins the cross-design
/// cut-safety and link-budget passes consume.
fn manifest_pins(manifest: &NodeManifest, design: usize, origin: &str) -> DeployPins {
    let mut families: BTreeMap<String, Vec<PinnedHost>> = BTreeMap::new();
    for device in &manifest.coordinator.devices {
        families
            .entry(device.clone())
            .or_default()
            .push(PinnedHost {
                node: manifest.coordinator.name.clone(),
                addr: None,
                variants: Vec::new(),
            });
    }
    for edge in &manifest.edges {
        for device in &edge.devices {
            families
                .entry(device.clone())
                .or_default()
                .push(PinnedHost {
                    node: edge.name.clone(),
                    addr: Some(edge.listen.clone()),
                    variants: edge.shards.clone(),
                });
        }
    }
    DeployPins {
        design,
        origin: origin.to_owned(),
        families,
    }
}

/// Lints every input file exactly as [`lint_source`] would, then runs
/// the cross-design deployment passes over the whole set (plus any
/// deployment manifests, given as `(path, manifest)` pairs) and appends
/// a cross-design section.
///
/// Fails (`Err`) only on configuration problems — a manifest naming a
/// design that matches none of the input file stems; broken *specs* are
/// reported through the outcome (`broken`), not the error path.
pub fn lint_designs(
    inputs: &[(String, String)],
    manifests: &[(String, NodeManifest)],
    options: &LintOptions,
) -> Result<LintOutcome, String> {
    let lints: Vec<FileLint> = inputs
        .iter()
        .map(|(file, source)| lint_one(file, source, options))
        .collect();
    let names: Vec<String> = inputs.iter().map(|(file, _)| design_name(file)).collect();
    let broken = lints.iter().any(|l| l.spec.is_none());

    let mut cross: Vec<CrossFinding> = Vec::new();
    if !broken {
        let designs: Vec<DesignRef<'_>> = lints
            .iter()
            .zip(&names)
            .map(|(lint, name)| DesignRef {
                name,
                spec: lint.spec.as_ref().expect("not broken"),
            })
            .collect();
        let mut pins: Vec<DeployPins> = Vec::new();
        for (path, manifest) in manifests {
            let design = names
                .iter()
                .position(|name| *name == manifest.design)
                .ok_or_else(|| {
                    format!(
                        "manifest {path} is for design `{}`, which matches none of the linted specs",
                        manifest.design
                    )
                })?;
            pins.push(manifest_pins(manifest, design, path));
        }
        let report = analyze_deployment(
            &designs,
            &pins,
            &DeploymentOptions {
                fleet_size: options
                    .fleet_size
                    .unwrap_or(AnalysisOptions::default().fleet_size),
                link_budget_per_hour: options.link_budget,
            },
        );
        for mut finding in report.findings {
            let Some(severity) = effective_severity(options, finding.code, finding.severity) else {
                continue;
            };
            finding.severity = severity;
            cross.push(finding);
        }
    }
    let cross_errors = cross
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let cross_warnings = cross.len() - cross_errors;
    let errors = lints.iter().map(|l| l.errors).sum::<usize>() + cross_errors;
    let warnings = lints.iter().map(|l| l.warnings).sum::<usize>() + cross_warnings;

    let rendered = match options.format {
        LintFormat::Human => {
            let mut out = String::new();
            for lint in &lints {
                out.push_str(&render_human_file(lint, options));
            }
            if broken {
                let _ = writeln!(
                    out,
                    "cross-design passes skipped: a design failed to compile"
                );
            } else {
                for finding in &cross {
                    out.push_str(&render_cross_human(&lints, finding));
                    out.push('\n');
                }
                let _ = writeln!(
                    out,
                    "cross-design: {cross_errors} error(s), {cross_warnings} warning(s)"
                );
            }
            let _ = writeln!(out, "total: {errors} error(s), {warnings} warning(s)");
            out
        }
        LintFormat::Json => {
            let files: Vec<Value> = lints.iter().map(json_log).collect();
            let cross_items: Vec<Value> = cross.iter().map(|f| cross_json(&lints, f)).collect();
            let log = Value::Object(vec![
                ("files".to_owned(), Value::Array(files)),
                (
                    "cross".to_owned(),
                    Value::Object(vec![
                        ("errors".to_owned(), Value::UInt(cross_errors as u64)),
                        ("warnings".to_owned(), Value::UInt(cross_warnings as u64)),
                        ("diagnostics".to_owned(), Value::Array(cross_items)),
                    ]),
                ),
                ("errors".to_owned(), Value::UInt(errors as u64)),
                ("warnings".to_owned(), Value::UInt(warnings as u64)),
            ]);
            serde_json::to_string_pretty(&log).expect("lint JSON serializes")
        }
        LintFormat::Sarif => {
            serde_json::to_string_pretty(&sarif_log(&lints, &cross)).expect("lint SARIF serializes")
        }
    };

    Ok(LintOutcome {
        rendered,
        errors,
        warnings,
        broken,
    })
}

/// Renders one cross-design finding in the compiler style, prefixing
/// every position with the file it points into (the spans of one
/// finding cross file boundaries).
fn render_cross_human(lints: &[FileLint], finding: &CrossFinding) -> String {
    let at = |ds: &DesignSpan| -> (String, String) {
        let lint = &lints[ds.design];
        let pos = lint.map.line_col(ds.span.start);
        (format!("{}:{pos}", lint.file), lint.map.snippet(ds.span))
    };
    let (pos, snippet) = at(&finding.primary);
    let mut out = format!(
        "{}[{}]: {} at {pos}\n",
        finding.severity, finding.code, finding.message
    );
    out.push_str(&snippet);
    for (note, ds) in &finding.related {
        let (pos, snippet) = at(ds);
        out.push('\n');
        let _ = writeln!(out, "note: {note} at {pos}");
        out.push_str(&snippet);
    }
    for note in &finding.notes {
        out.push('\n');
        let _ = write!(out, "note: {note}");
    }
    out
}

fn severity_str(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

/// A `{line, column, endLine, endColumn}` fragment for a span.
fn region(map: &SourceMap, span: Span) -> Vec<(String, Value)> {
    let start = map.line_col(span.start);
    let end = map.line_col(span.end);
    vec![
        ("startLine".to_owned(), Value::UInt(u64::from(start.line))),
        ("startColumn".to_owned(), Value::UInt(u64::from(start.col))),
        ("endLine".to_owned(), Value::UInt(u64::from(end.line))),
        ("endColumn".to_owned(), Value::UInt(u64::from(end.col))),
    ]
}

fn json_log(lint: &FileLint) -> Value {
    let map = &lint.map;
    let items: Vec<Value> = lint
        .kept
        .iter()
        .map(|diag| {
            let pos = map.line_col(diag.span.start);
            let notes: Vec<Value> = diag
                .notes
                .iter()
                .map(|(message, span)| {
                    let mut entries = vec![("message".to_owned(), Value::String(message.clone()))];
                    if let Some(span) = span {
                        let pos = map.line_col(span.start);
                        entries.push(("line".to_owned(), Value::UInt(u64::from(pos.line))));
                        entries.push(("column".to_owned(), Value::UInt(u64::from(pos.col))));
                    }
                    Value::Object(entries)
                })
                .collect();
            Value::Object(vec![
                ("code".to_owned(), Value::String(diag.code.to_owned())),
                (
                    "level".to_owned(),
                    Value::String(severity_str(diag.severity).to_owned()),
                ),
                ("message".to_owned(), Value::String(diag.message.clone())),
                ("line".to_owned(), Value::UInt(u64::from(pos.line))),
                ("column".to_owned(), Value::UInt(u64::from(pos.col))),
                ("notes".to_owned(), Value::Array(notes)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("file".to_owned(), Value::String(lint.file.clone())),
        ("errors".to_owned(), Value::UInt(lint.errors as u64)),
        ("warnings".to_owned(), Value::UInt(lint.warnings as u64)),
        ("diagnostics".to_owned(), Value::Array(items)),
    ])
}

/// One cross-design finding as a JSON object; spans carry the file they
/// point into.
fn cross_json(lints: &[FileLint], finding: &CrossFinding) -> Value {
    let locate = |ds: &DesignSpan| -> Vec<(String, Value)> {
        let lint = &lints[ds.design];
        let pos = lint.map.line_col(ds.span.start);
        vec![
            ("file".to_owned(), Value::String(lint.file.clone())),
            ("line".to_owned(), Value::UInt(u64::from(pos.line))),
            ("column".to_owned(), Value::UInt(u64::from(pos.col))),
        ]
    };
    let mut related: Vec<Value> = finding
        .related
        .iter()
        .map(|(message, ds)| {
            let mut entries = vec![("message".to_owned(), Value::String(message.clone()))];
            entries.extend(locate(ds));
            Value::Object(entries)
        })
        .collect();
    related.extend(
        finding
            .notes
            .iter()
            .map(|note| Value::Object(vec![("message".to_owned(), Value::String(note.clone()))])),
    );
    let mut entries = vec![
        ("code".to_owned(), Value::String(finding.code.to_owned())),
        (
            "level".to_owned(),
            Value::String(severity_str(finding.severity).to_owned()),
        ),
        ("message".to_owned(), Value::String(finding.message.clone())),
    ];
    entries.extend(locate(&finding.primary));
    entries.push(("notes".to_owned(), Value::Array(related)));
    Value::Object(entries)
}

/// A SARIF physical location, optionally wrapped with a message (for
/// `relatedLocations` entries).
fn sarif_location(file: &str, map: &SourceMap, span: Span, message: Option<&str>) -> Value {
    let mut entries = vec![(
        "physicalLocation".to_owned(),
        Value::Object(vec![
            (
                "artifactLocation".to_owned(),
                Value::Object(vec![("uri".to_owned(), Value::String(file.to_owned()))]),
            ),
            ("region".to_owned(), Value::Object(region(map, span))),
        ]),
    )];
    if let Some(text) = message {
        entries.push((
            "message".to_owned(),
            Value::Object(vec![("text".to_owned(), Value::String(text.to_owned()))]),
        ));
    }
    Value::Object(entries)
}

/// Builds a minimal but valid SARIF 2.1.0 log: one run, one rule entry
/// per distinct code, one result per diagnostic. Notes *with* a span
/// become navigable `relatedLocations`; span-less notes (provenance
/// chains) fold into the message text, which every viewer shows.
fn sarif_log(lints: &[FileLint], cross: &[CrossFinding]) -> Value {
    let mut rule_ids: Vec<&str> = lints
        .iter()
        .flat_map(|l| l.kept.iter().map(|d| d.code))
        .chain(cross.iter().map(|f| f.code))
        .collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();
    let rules: Vec<Value> = rule_ids
        .iter()
        .map(|id| Value::Object(vec![("id".to_owned(), Value::String((*id).to_owned()))]))
        .collect();

    let mut results: Vec<Value> = Vec::new();
    for lint in lints {
        for diag in &lint.kept {
            let mut text = diag.message.clone();
            let mut related: Vec<Value> = Vec::new();
            for (note, span) in &diag.notes {
                match span {
                    Some(span) => {
                        related.push(sarif_location(&lint.file, &lint.map, *span, Some(note)))
                    }
                    None => {
                        text.push_str("\nnote: ");
                        text.push_str(note);
                    }
                }
            }
            let mut entries = vec![
                ("ruleId".to_owned(), Value::String(diag.code.to_owned())),
                (
                    "level".to_owned(),
                    Value::String(severity_str(diag.severity).to_owned()),
                ),
                (
                    "message".to_owned(),
                    Value::Object(vec![("text".to_owned(), Value::String(text))]),
                ),
                (
                    "locations".to_owned(),
                    Value::Array(vec![sarif_location(&lint.file, &lint.map, diag.span, None)]),
                ),
            ];
            if !related.is_empty() {
                entries.push(("relatedLocations".to_owned(), Value::Array(related)));
            }
            results.push(Value::Object(entries));
        }
    }
    for finding in cross {
        let mut text = finding.message.clone();
        for note in &finding.notes {
            text.push_str("\nnote: ");
            text.push_str(note);
        }
        let locate = |ds: &DesignSpan, message: Option<&str>| {
            let lint = &lints[ds.design];
            sarif_location(&lint.file, &lint.map, ds.span, message)
        };
        let related: Vec<Value> = finding
            .related
            .iter()
            .map(|(note, ds)| locate(ds, Some(note)))
            .collect();
        let mut entries = vec![
            ("ruleId".to_owned(), Value::String(finding.code.to_owned())),
            (
                "level".to_owned(),
                Value::String(severity_str(finding.severity).to_owned()),
            ),
            (
                "message".to_owned(),
                Value::Object(vec![("text".to_owned(), Value::String(text))]),
            ),
            (
                "locations".to_owned(),
                Value::Array(vec![locate(&finding.primary, None)]),
            ),
        ];
        if !related.is_empty() {
            entries.push(("relatedLocations".to_owned(), Value::Array(related)));
        }
        results.push(Value::Object(entries));
    }

    Value::Object(vec![
        (
            "$schema".to_owned(),
            Value::String("https://json.schemastore.org/sarif-2.1.0.json".to_owned()),
        ),
        ("version".to_owned(), Value::String("2.1.0".to_owned())),
        (
            "runs".to_owned(),
            Value::Array(vec![Value::Object(vec![
                (
                    "tool".to_owned(),
                    Value::Object(vec![(
                        "driver".to_owned(),
                        Value::Object(vec![
                            ("name".to_owned(), Value::String("diaspec-lint".to_owned())),
                            (
                                "informationUri".to_owned(),
                                Value::String("https://github.com/diaspec/diaspec".to_owned()),
                            ),
                            ("rules".to_owned(), Value::Array(rules)),
                        ]),
                    )]),
                ),
                ("results".to_owned(), Value::Array(results)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONFLICT: &str = r#"
        device Probe { source v as Integer; }
        device Valve { action close; }
        context Hot as Integer { when provided v from Probe always publish; }
        controller A { when provided Hot do close on Valve; }
        controller B { when provided Hot do close on Valve; }
    "#;

    const LOOPY: &str = r#"
        device Heater { source temperature as Float; action heat; }
        context Cold as Float { when provided temperature from Heater always publish; }
        controller Thermostat { when provided Cold do heat on Heater; }
    "#;

    #[test]
    fn human_output_renders_carets_and_summary() {
        let outcome = lint_source("x.spec", CONFLICT, &LintOptions::default());
        assert_eq!(outcome.errors, 1);
        assert!(outcome.failed());
        assert!(!outcome.broken);
        assert!(outcome.rendered.contains("error[E0401]"));
        assert!(outcome.rendered.contains("^"), "{}", outcome.rendered);
        assert!(outcome
            .rendered
            .contains("x.spec: 1 error(s), 0 warning(s)"));
    }

    #[test]
    fn deny_warnings_promotes() {
        let outcome = lint_source(
            "x.spec",
            LOOPY,
            &LintOptions {
                deny_warnings: true,
                ..LintOptions::default()
            },
        );
        assert!(outcome.failed());
        assert!(outcome.rendered.contains("error[W0402]"));
    }

    #[test]
    fn per_code_override_wins_over_blanket() {
        let mut levels = BTreeMap::new();
        levels.insert("W0402".to_owned(), LintLevel::Warn);
        let outcome = lint_source(
            "x.spec",
            LOOPY,
            &LintOptions {
                deny_warnings: true,
                levels,
                ..LintOptions::default()
            },
        );
        assert!(!outcome.failed());
        assert_eq!(outcome.warnings, 1);
    }

    #[test]
    fn allow_drops_the_diagnostic() {
        let mut levels = BTreeMap::new();
        levels.insert("W0402".to_owned(), LintLevel::Allow);
        let outcome = lint_source(
            "x.spec",
            LOOPY,
            &LintOptions {
                levels,
                ..LintOptions::default()
            },
        );
        assert_eq!(outcome.errors + outcome.warnings, 0);
        assert!(!outcome.failed());
    }

    #[test]
    fn json_format_is_parseable_and_located() {
        let outcome = lint_source(
            "x.spec",
            CONFLICT,
            &LintOptions {
                format: LintFormat::Json,
                ..LintOptions::default()
            },
        );
        let value: Value = serde_json::from_str(&outcome.rendered).unwrap();
        assert_eq!(value.get("file").and_then(Value::as_str), Some("x.spec"));
        assert_eq!(value.get("errors").and_then(Value::as_u64), Some(1));
        let diags = value.get("diagnostics").and_then(Value::as_array).unwrap();
        assert_eq!(diags[0].get("code").and_then(Value::as_str), Some("E0401"));
        // The span points at the first `do` clause, not 1:1.
        assert!(diags[0].get("line").and_then(Value::as_u64).unwrap() > 1);
    }

    #[test]
    fn sarif_log_has_required_shape() {
        let outcome = lint_source(
            "x.spec",
            CONFLICT,
            &LintOptions {
                format: LintFormat::Sarif,
                ..LintOptions::default()
            },
        );
        let value: Value = serde_json::from_str(&outcome.rendered).unwrap();
        assert_eq!(value.get("version").and_then(Value::as_str), Some("2.1.0"));
        assert!(value
            .get("$schema")
            .and_then(Value::as_str)
            .unwrap()
            .contains("sarif-2.1.0"));
        let run = &value.get("runs").and_then(Value::as_array).unwrap()[0];
        let driver = run.get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(
            driver.get("name").and_then(Value::as_str),
            Some("diaspec-lint")
        );
        let results = run.get("results").and_then(Value::as_array).unwrap();
        let result = &results[0];
        assert_eq!(result.get("ruleId").and_then(Value::as_str), Some("E0401"));
        assert_eq!(result.get("level").and_then(Value::as_str), Some("error"));
        let region = result.get("locations").and_then(Value::as_array).unwrap()[0]
            .get("physicalLocation")
            .and_then(|l| l.get("region"))
            .unwrap();
        assert!(region.get("startLine").and_then(Value::as_u64).unwrap() > 1);
        // Provenance chains ride along in the message text.
        let text = result
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Value::as_str)
            .unwrap();
        assert!(text.contains("actuation chain"), "{text}");
    }

    #[test]
    fn sarif_spanned_notes_become_related_locations() {
        let outcome = lint_source(
            "x.spec",
            CONFLICT,
            &LintOptions {
                format: LintFormat::Sarif,
                ..LintOptions::default()
            },
        );
        let value: Value = serde_json::from_str(&outcome.rendered).unwrap();
        let result = &value.get("runs").and_then(Value::as_array).unwrap()[0]
            .get("results")
            .and_then(Value::as_array)
            .unwrap()[0];
        // The "conflicting `do` clause here" note has a span, so it is a
        // navigable related location rather than message text.
        let related = result
            .get("relatedLocations")
            .and_then(Value::as_array)
            .expect("conflict results carry relatedLocations");
        assert_eq!(related.len(), 1);
        let message = related[0]
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Value::as_str)
            .unwrap();
        assert!(message.contains("conflicting `do` clause"), "{message}");
        let uri = related[0]
            .get("physicalLocation")
            .and_then(|l| l.get("artifactLocation"))
            .and_then(|l| l.get("uri"))
            .and_then(Value::as_str)
            .unwrap();
        assert_eq!(uri, "x.spec");
        let text = result
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Value::as_str)
            .unwrap();
        assert!(!text.contains("conflicting `do` clause"), "{text}");
    }

    #[test]
    fn broken_specs_still_render_in_sarif() {
        let outcome = lint_source(
            "x.spec",
            "device { }",
            &LintOptions {
                format: LintFormat::Sarif,
                ..LintOptions::default()
            },
        );
        assert!(outcome.failed());
        assert!(outcome.broken);
        let value: Value = serde_json::from_str(&outcome.rendered).unwrap();
        assert!(!value.get("runs").and_then(Value::as_array).unwrap()[0]
            .get("results")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn capacity_report_appended_on_request() {
        let outcome = lint_source(
            "x.spec",
            r#"
            device Meter { source reading as Float; }
            device K { action a; }
            context Usage as Float { when periodic reading from Meter <1 min> always publish; }
            controller Out { when provided Usage do a on K; }
            "#,
            &LintOptions {
                capacity: true,
                fleet_size: Some(100),
                ..LintOptions::default()
            },
        );
        assert!(outcome.rendered.contains("capacity report"));
        assert!(outcome.rendered.contains("fleet hypothesis: 100"));
    }

    // ---- multi-design lint --------------------------------------------------

    const SHARED_A: &str = r#"
        device Sensor { source motion as Boolean; }
        device Lamp { action lit; }
        context Presence as Boolean { when provided motion from Sensor always publish; }
        controller Comfort { when provided Presence do lit on Lamp; }
    "#;

    const SHARED_B: &str = r#"
        device Sensor { source motion as Boolean; }
        device Lamp { action lit; }
        context Intrusion as Boolean { when provided motion from Sensor always publish; }
        controller Patrol { when provided Intrusion do lit on Lamp; }
    "#;

    fn pair() -> Vec<(String, String)> {
        vec![
            ("a.spec".to_owned(), SHARED_A.to_owned()),
            ("b.spec".to_owned(), SHARED_B.to_owned()),
        ]
    }

    #[test]
    fn multi_design_lint_reports_cross_conflicts() {
        let outcome = lint_designs(&pair(), &[], &LintOptions::default()).unwrap();
        assert!(outcome.failed());
        assert!(!outcome.broken);
        assert_eq!(outcome.errors, 1);
        let rendered = &outcome.rendered;
        assert!(rendered.contains("error[E0601]"), "{rendered}");
        // Both per-file sections and the cross section are present,
        // with spans attributed to their files.
        assert!(rendered.contains("a.spec: 0 error(s), 0 warning(s)"));
        assert!(rendered.contains("b.spec: 0 error(s), 0 warning(s)"));
        assert!(rendered.contains("at a.spec:"), "{rendered}");
        assert!(rendered.contains("at b.spec:"), "{rendered}");
        assert!(rendered.contains("cross-design: 1 error(s), 0 warning(s)"));
        assert!(rendered.contains("total: 1 error(s), 0 warning(s)"));
        assert!(rendered.contains("first actuation chain (a)"), "{rendered}");
        assert!(
            rendered.contains("second actuation chain (b)"),
            "{rendered}"
        );
    }

    #[test]
    fn cross_findings_obey_the_severity_policy() {
        let mut levels = BTreeMap::new();
        levels.insert("E0601".to_owned(), LintLevel::Allow);
        let outcome = lint_designs(
            &pair(),
            &[],
            &LintOptions {
                levels,
                ..LintOptions::default()
            },
        )
        .unwrap();
        assert!(!outcome.failed());
        assert!(outcome
            .rendered
            .contains("cross-design: 0 error(s), 0 warning(s)"));
    }

    #[test]
    fn multi_design_json_has_files_and_cross_sections() {
        let outcome = lint_designs(
            &pair(),
            &[],
            &LintOptions {
                format: LintFormat::Json,
                ..LintOptions::default()
            },
        )
        .unwrap();
        let value: Value = serde_json::from_str(&outcome.rendered).unwrap();
        let files = value.get("files").and_then(Value::as_array).unwrap();
        assert_eq!(files.len(), 2);
        let cross = value.get("cross").unwrap();
        assert_eq!(cross.get("errors").and_then(Value::as_u64), Some(1));
        let diags = cross.get("diagnostics").and_then(Value::as_array).unwrap();
        assert_eq!(diags[0].get("code").and_then(Value::as_str), Some("E0601"));
        assert_eq!(diags[0].get("file").and_then(Value::as_str), Some("a.spec"));
        assert_eq!(value.get("errors").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn multi_design_sarif_relates_across_files() {
        let outcome = lint_designs(
            &pair(),
            &[],
            &LintOptions {
                format: LintFormat::Sarif,
                ..LintOptions::default()
            },
        )
        .unwrap();
        let value: Value = serde_json::from_str(&outcome.rendered).unwrap();
        let results = value.get("runs").and_then(Value::as_array).unwrap()[0]
            .get("results")
            .and_then(Value::as_array)
            .unwrap();
        let cross = results
            .iter()
            .find(|r| r.get("ruleId").and_then(Value::as_str) == Some("E0601"))
            .expect("E0601 result");
        let primary_uri = cross.get("locations").and_then(Value::as_array).unwrap()[0]
            .get("physicalLocation")
            .and_then(|l| l.get("artifactLocation"))
            .and_then(|l| l.get("uri"))
            .and_then(Value::as_str)
            .unwrap();
        assert_eq!(primary_uri, "a.spec");
        let related_uri = cross
            .get("relatedLocations")
            .and_then(Value::as_array)
            .unwrap()[0]
            .get("physicalLocation")
            .and_then(|l| l.get("artifactLocation"))
            .and_then(|l| l.get("uri"))
            .and_then(Value::as_str)
            .unwrap();
        assert_eq!(related_uri, "b.spec");
    }

    #[test]
    fn broken_design_skips_cross_passes() {
        let inputs = vec![
            ("a.spec".to_owned(), SHARED_A.to_owned()),
            ("b.spec".to_owned(), "device { }".to_owned()),
        ];
        let outcome = lint_designs(&inputs, &[], &LintOptions::default()).unwrap();
        assert!(outcome.broken);
        assert!(outcome.failed());
        assert!(outcome.rendered.contains("cross-design passes skipped"));
    }

    fn manifest_for(design: &str) -> NodeManifest {
        let json = format!(
            r#"{{
                "design": "{design}",
                "shard": {{"enumeration": "E", "attributes": []}},
                "coordinator": {{
                    "name": "coordinator",
                    "components": [],
                    "devices": ["Lamp"],
                    "connects": []
                }},
                "edges": [{{
                    "name": "edge0",
                    "listen": "127.0.0.1:7070",
                    "devices": ["Sensor"],
                    "shards": []
                }}],
                "cut_routes": []
            }}"#
        );
        serde_json::from_str(&json).unwrap()
    }

    #[test]
    fn unmatched_manifest_is_a_configuration_error() {
        let error = lint_designs(
            &pair(),
            &[("m.json".to_owned(), manifest_for("zeta"))],
            &LintOptions::default(),
        )
        .unwrap_err();
        assert!(error.contains("matches none"), "{error}");
        assert!(error.contains("m.json"), "{error}");
    }

    #[test]
    fn conflicting_manifest_pins_surface_as_cut_violations() {
        let mut security = manifest_for("b");
        security.edges[0].listen = "127.0.0.1:9090".to_owned();
        let mut levels = BTreeMap::new();
        levels.insert("E0601".to_owned(), LintLevel::Allow);
        let outcome = lint_designs(
            &pair(),
            &[
                ("a.json".to_owned(), manifest_for("a")),
                ("b.json".to_owned(), security),
            ],
            &LintOptions {
                levels,
                ..LintOptions::default()
            },
        )
        .unwrap();
        assert!(
            outcome.rendered.contains("error[E0602]"),
            "{}",
            outcome.rendered
        );
        assert!(outcome.failed());
    }
}

//! Indentation-aware source emitter shared by the Rust and Java backends.

use std::fmt::Arguments;

/// A source-code builder that tracks indentation.
#[derive(Debug)]
pub struct CodeWriter {
    out: String,
    indent: usize,
    /// The string emitted per indentation level.
    unit: &'static str,
}

impl CodeWriter {
    /// Creates a writer indenting with four spaces per level.
    #[must_use]
    pub fn new() -> Self {
        CodeWriter {
            out: String::new(),
            indent: 0,
            unit: "    ",
        }
    }

    /// Emits one line at the current indentation.
    pub fn line(&mut self, text: impl AsRef<str>) {
        let text = text.as_ref();
        if text.is_empty() {
            self.out.push('\n');
            return;
        }
        for _ in 0..self.indent {
            self.out.push_str(self.unit);
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// Emits a formatted line (avoids an intermediate `String` at call
    /// sites that already use `format_args!`).
    pub fn linef(&mut self, args: Arguments<'_>) {
        self.line(args.to_string());
    }

    /// Emits a blank line.
    pub fn blank(&mut self) {
        self.out.push('\n');
    }

    /// Emits `open`, runs `body` one level deeper, then emits `close`.
    pub fn block(
        &mut self,
        open: impl AsRef<str>,
        close: impl AsRef<str>,
        body: impl FnOnce(&mut CodeWriter),
    ) {
        self.line(open);
        self.indent += 1;
        body(self);
        self.indent -= 1;
        self.line(close);
    }

    /// Finishes, returning the accumulated source text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

impl Default for CodeWriter {
    fn default() -> Self {
        CodeWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_indent_and_dedent() {
        let mut w = CodeWriter::new();
        w.line("fn main() {");
        w.block("{", "}", |w| {
            w.line("inner();");
            w.block("loop {", "}", |w| w.line("deep();"));
        });
        let text = w.finish();
        assert!(text.contains("    inner();"), "{text}");
        assert!(text.contains("        deep();"), "{text}");
        assert!(text.contains("    loop {"), "{text}");
    }

    #[test]
    fn empty_lines_carry_no_indent() {
        let mut w = CodeWriter::new();
        w.block("{", "}", |w| {
            w.line("");
            w.blank();
        });
        assert_eq!(w.finish(), "{\n\n\n}\n");
    }

    #[test]
    fn linef_formats() {
        let mut w = CodeWriter::new();
        w.linef(format_args!("let x = {};", 42));
        assert_eq!(w.finish(), "let x = 42;\n");
    }
}

//! `diaspec-gen` — the design-compiler command line.
//!
//! Usage:
//!
//! ```text
//! diaspec-gen <SPEC.spec> --language rust|java --out <DIR> [--report]
//!             [--with <SPEC2.spec>]...
//! diaspec-gen lint <SPEC.spec>... [--format json|sarif] [--deny warnings]
//!                  [--allow CODE] [--warn CODE] [--deny CODE]
//!                  [--fleet N] [--capacity] [--manifest <M.json>]...
//!                  [--link-budget N]
//! diaspec-gen deploy <SPEC.spec> [--edges N] [--host H] [--port-base P]
//!                    [--shard-enum NAME] [--shards N] [--out <DIR>]
//! ```
//!
//! Compiles a DiaSpec design and writes the generated programming
//! framework into `<DIR>` (Rust: a single `framework.rs`; Java: one file
//! per class). With `--report`, prints a JSON generation report (file
//! list, generated LoC, abstract-method count) to stdout. With `--with`,
//! the Rust header additionally records the co-deployed companion
//! designs and the cross-application conflict verdict.
//!
//! The `lint` subcommand runs the checker plus every whole-design
//! analysis pass (actuation conflicts, feedback loops, reachability,
//! rate propagation) and, given several specs, the cross-design
//! deployment passes over the whole co-deployment (plus any `--manifest`
//! deployment pins). Exit codes classify the outcome: `0` clean (or
//! warnings only), `2` at least one diagnostic ended up error-severity
//! after the level flags, `3` an input could not be read or parsed at
//! all, `1` bad flags.
//!
//! The `deploy` subcommand partitions a design into deployment units —
//! one coordinator plus N edge nodes sharded by a discovery-attribute
//! enumeration — validates the split with the static partition pass,
//! and emits `manifest.json` plus one `node_<name>.rs` source per unit.
//! Without `--out` the manifest is printed to stdout.

use diaspec_codegen::deploy::{plan_deployment, DeployOptions, NodeManifest};
use diaspec_codegen::lint::{lint_designs, lint_source, LintFormat, LintLevel, LintOptions};
use diaspec_codegen::{generate_java, generate_rust, generate_rust_co_deployed, metrics};
use std::path::PathBuf;
use std::process::ExitCode;

/// Exit code for inputs that could not be read or parsed at all — the
/// lint never saw a model — as opposed to deny-level findings (2).
const EXIT_BROKEN: u8 = 3;
/// Exit code for deny-level findings in otherwise-analyzable designs.
const EXIT_FINDINGS: u8 = 2;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("lint") {
        args.next();
        return match run_lint(args) {
            Ok(code) => ExitCode::from(code),
            Err(message) => {
                eprintln!("diaspec-gen: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.peek().map(String::as_str) == Some("deploy") {
        args.next();
        return match run_deploy(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("diaspec-gen: {message}");
                ExitCode::FAILURE
            }
        };
    }
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("diaspec-gen: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Parses deploy flags, partitions the design, and writes or prints
/// the deployment artifacts.
fn run_deploy(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut options = DeployOptions::default();
    let mut spec_path: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--edges" => {
                let value = args.next().ok_or("--edges needs a node count")?;
                options.edges = value
                    .parse()
                    .map_err(|_| format!("--edges needs an integer, got `{value}`"))?;
            }
            "--host" => options.host = args.next().ok_or("--host needs a value")?,
            "--port-base" => {
                let value = args.next().ok_or("--port-base needs a port")?;
                options.port_base = value
                    .parse()
                    .map_err(|_| format!("--port-base needs a port number, got `{value}`"))?;
            }
            "--shard-enum" => {
                options.shard_enum = Some(args.next().ok_or("--shard-enum needs a name")?);
            }
            "--shards" => {
                let value = args.next().ok_or("--shards needs a shard count")?;
                options.pipeline_shards = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--shards needs a positive integer, got `{value}`"))?;
            }
            "--out" | "-o" => {
                out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?));
            }
            "--help" | "-h" => {
                println!(
                    "usage: diaspec-gen deploy <SPEC.spec> [--edges N] [--host H] \
                     [--port-base P] [--shard-enum NAME] [--shards N] [--out <DIR>]"
                );
                return Ok(());
            }
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let spec_path = spec_path.ok_or("deploy needs a <SPEC.spec> argument")?;
    options.design = spec_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "design".to_owned());
    let source = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
    let spec = diaspec_core::compile_str(&source).map_err(|e| e.to_string())?;

    let deployment = plan_deployment(&spec, &options)?;
    for warning in &deployment.warnings {
        eprintln!("diaspec-gen: warning: {warning}");
    }
    if let Some(dir) = &out {
        deployment
            .files
            .write_to(dir)
            .map_err(|e| format!("cannot write to {}: {e}", dir.display()))?;
        eprintln!(
            "deployed `{}` as 1 coordinator + {} edge node(s), {} cut route(s), into {}",
            deployment.manifest.design,
            deployment.manifest.edges.len(),
            deployment.manifest.cut_routes.len(),
            dir.display()
        );
    } else {
        print!(
            "{}",
            deployment
                .files
                .file("manifest.json")
                .expect("plan_deployment always emits a manifest")
                .content
        );
    }
    Ok(())
}

/// Parses lint flags, lints the given specs (together, when several),
/// prints the outcome, and returns the process exit code. `Err` is
/// reserved for flag-usage mistakes (exit 1); unreadable or unparsable
/// inputs exit [`EXIT_BROKEN`] with the offending path on stderr.
fn run_lint(mut args: impl Iterator<Item = String>) -> Result<u8, String> {
    let mut options = LintOptions::default();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut manifest_paths: Vec<PathBuf> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                options.format = match args.next().as_deref() {
                    Some("human") => LintFormat::Human,
                    Some("json") => LintFormat::Json,
                    Some("sarif") => LintFormat::Sarif,
                    Some(other) => {
                        return Err(format!(
                            "unknown format `{other}` (expected human, json, or sarif)"
                        ))
                    }
                    None => return Err("--format needs a value".to_owned()),
                };
            }
            "--deny" => match args.next() {
                Some(value) if value == "warnings" => options.deny_warnings = true,
                Some(code) => {
                    options.levels.insert(code, LintLevel::Deny);
                }
                None => return Err("--deny needs `warnings` or a code".to_owned()),
            },
            "--allow" => {
                let code = args.next().ok_or("--allow needs a diagnostic code")?;
                options.levels.insert(code, LintLevel::Allow);
            }
            "--warn" => {
                let code = args.next().ok_or("--warn needs a diagnostic code")?;
                options.levels.insert(code, LintLevel::Warn);
            }
            "--fleet" => {
                let value = args.next().ok_or("--fleet needs a device count")?;
                options.fleet_size = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--fleet needs an integer, got `{value}`"))?,
                );
            }
            "--capacity" => options.capacity = true,
            "--manifest" => {
                manifest_paths.push(PathBuf::from(
                    args.next().ok_or("--manifest needs a manifest JSON file")?,
                ));
            }
            "--link-budget" => {
                let value = args.next().ok_or("--link-budget needs a msgs/hour rate")?;
                options.link_budget = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--link-budget needs a number, got `{value}`"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: diaspec-gen lint <SPEC.spec>... [--format human|json|sarif] \
                     [--deny warnings] [--allow CODE] [--warn CODE] [--deny CODE] \
                     [--fleet N] [--capacity] [--manifest <M.json>] [--link-budget N]"
                );
                return Ok(0);
            }
            other if !other.starts_with('-') => files.push(PathBuf::from(other)),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if files.is_empty() {
        return Err("lint needs at least one <SPEC.spec> argument".to_owned());
    }

    let mut inputs: Vec<(String, String)> = Vec::new();
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(source) => inputs.push((path.display().to_string(), source)),
            Err(e) => {
                eprintln!("diaspec-gen: cannot read {}: {e}", path.display());
                return Ok(EXIT_BROKEN);
            }
        }
    }
    let mut manifests: Vec<(String, NodeManifest)> = Vec::new();
    for path in &manifest_paths {
        let raw = match std::fs::read_to_string(path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("diaspec-gen: cannot read {}: {e}", path.display());
                return Ok(EXIT_BROKEN);
            }
        };
        match serde_json::from_str::<NodeManifest>(&raw) {
            Ok(manifest) => manifests.push((path.display().to_string(), manifest)),
            Err(e) => {
                eprintln!("diaspec-gen: invalid manifest {}: {e}", path.display());
                return Ok(EXIT_BROKEN);
            }
        }
    }

    // A single spec without manifests keeps the historical single-design
    // output byte-for-byte; several specs lint as one co-deployment.
    let outcome = if inputs.len() == 1 && manifests.is_empty() {
        let (file, source) = &inputs[0];
        lint_source(file, source, &options)
    } else {
        match lint_designs(&inputs, &manifests, &options) {
            Ok(outcome) => outcome,
            Err(message) => {
                eprintln!("diaspec-gen: {message}");
                return Ok(EXIT_BROKEN);
            }
        }
    };
    print!("{}", outcome.rendered);
    if !outcome.rendered.ends_with('\n') {
        println!();
    }
    if outcome.broken {
        Ok(EXIT_BROKEN)
    } else if outcome.failed() {
        Ok(EXIT_FINDINGS)
    } else {
        Ok(0)
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut spec_path: Option<PathBuf> = None;
    let mut language = "rust".to_owned();
    let mut out: Option<PathBuf> = None;
    let mut report = false;
    let mut dot = false;
    let mut chains = false;
    let mut requirements = false;
    let mut match_infra: Option<PathBuf> = None;
    let mut with: Vec<PathBuf> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--language" | "-l" => {
                language = args.next().ok_or("--language needs a value")?;
            }
            "--with" => {
                with.push(PathBuf::from(
                    args.next().ok_or("--with needs a companion <SPEC.spec>")?,
                ));
            }
            "--out" | "-o" => {
                out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?));
            }
            "--report" => report = true,
            "--dot" => dot = true,
            "--chains" => chains = true,
            "--requirements" => requirements = true,
            "--match" => {
                match_infra = Some(PathBuf::from(
                    args.next()
                        .ok_or("--match needs an infrastructure JSON file")?,
                ));
            }
            "--help" | "-h" => {
                println!(
                    "usage: diaspec-gen <SPEC.spec> --language rust|java --out <DIR> \
                     [--report] [--dot] [--chains] [--requirements] \
                     [--match <INFRA.json>] [--with <SPEC2.spec>]..."
                );
                return Ok(());
            }
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let spec_path = spec_path.ok_or("missing <SPEC.spec> argument")?;
    let source = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
    let spec = diaspec_core::compile_str(&source).map_err(|e| e.to_string())?;

    if let Some(infra_path) = &match_infra {
        let infra_src = std::fs::read_to_string(infra_path)
            .map_err(|e| format!("cannot read {}: {e}", infra_path.display()))?;
        let infra: diaspec_core::requirements::Infrastructure = serde_json::from_str(&infra_src)
            .map_err(|e| format!("invalid infrastructure JSON: {e}"))?;
        let req = diaspec_core::requirements::estimate(&spec);
        let report = diaspec_core::requirements::match_infrastructure(&spec, &req, &infra);
        print!("{report}");
        return if report.deployable() {
            Ok(())
        } else {
            Err("design does not fit the infrastructure".to_owned())
        };
    }

    if requirements {
        let req = diaspec_core::requirements::estimate(&spec);
        let json = serde_json::to_string_pretty(&req).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }

    if chains {
        for chain in diaspec_core::chains::functional_chains(&spec) {
            println!("{chain}");
        }
        return Ok(());
    }

    if dot {
        let name = spec_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "design".to_owned());
        print!("{}", diaspec_codegen::dot::generate_dot(&spec, &name));
        return Ok(());
    }

    let mut companions: Vec<(String, diaspec_core::model::CheckedSpec)> = Vec::new();
    for path in &with {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let companion =
            diaspec_core::compile_str(&source).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        companions.push((name, companion));
    }

    let framework = match language.as_str() {
        "rust" if !companions.is_empty() => {
            let design = spec_path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "design".to_owned());
            let refs: Vec<(String, &diaspec_core::model::CheckedSpec)> = companions
                .iter()
                .map(|(name, spec)| (name.clone(), spec))
                .collect();
            generate_rust_co_deployed(&design, &spec, &refs)
        }
        "rust" => generate_rust(&spec),
        "java" => {
            if !companions.is_empty() {
                return Err("--with is only supported with --language rust".to_owned());
            }
            generate_java(&spec)
        }
        other => {
            return Err(format!(
                "unknown language `{other}` (expected rust or java)"
            ))
        }
    };

    if let Some(dir) = &out {
        framework
            .write_to(dir)
            .map_err(|e| format!("cannot write to {}: {e}", dir.display()))?;
        eprintln!(
            "generated {} {} file(s) into {}",
            framework.files.len(),
            framework.language,
            dir.display()
        );
    }
    if report {
        let report = metrics::report(&framework);
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        println!("{json}");
    }
    if out.is_none() && !report {
        for file in &framework.files {
            println!("// ===== {} =====", file.path);
            println!("{}", file.content);
        }
    }
    Ok(())
}

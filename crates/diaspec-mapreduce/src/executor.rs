//! Serial and parallel MapReduce executors.
//!
//! The serial executor is the measurement baseline; the parallel executor
//! fans both phases out over scoped worker threads. Both produce
//! byte-identical output (final records sorted by intermediate key, with
//! per-key emission order preserved), so experiments compare *time*, never
//! correctness.

use crate::collector::{MapCollector, ReduceCollector};
use crate::stats::ExecutionStats;
use crate::{Combiner, MapReduce};
use std::collections::BTreeMap;
use std::time::Instant;

/// Which execution strategy a [`Job`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Single-threaded baseline.
    Serial,
    /// Map and Reduce phases run on this many worker threads.
    Parallel {
        /// Number of worker threads (clamped to at least 1).
        workers: usize,
    },
}

/// A pass-through combiner used when none is configured.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCombiner;

impl<K2, V2> Combiner<K2, V2> for NoCombiner {
    fn combine(&self, _key: &K2, values: Vec<V2>) -> Vec<V2> {
        values
    }
}

/// Result of a MapReduce execution: final records in deterministic order
/// (ascending intermediate key, per-key emission order) plus statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapReduceResult<K3, V3> {
    /// The final records.
    pub output: Vec<(K3, V3)>,
    /// Execution statistics.
    pub stats: ExecutionStats,
}

/// Result shaped as a map, for the common one-record-per-key case — the
/// form the generated `onPeriodicPresence(Map<...>)` callback of Figure 10
/// receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedResult<K3, V3> {
    /// Final records keyed by `K3`. Later emissions for the same key win.
    pub output: BTreeMap<K3, V3>,
    /// Execution statistics.
    pub stats: ExecutionStats,
}

/// A configured MapReduce execution: strategy plus optional combiner.
///
/// Construct with [`Job::serial`] or [`Job::parallel`], optionally add a
/// [`Combiner`] with [`Job::combiner`], then call [`Job::run`] or
/// [`Job::run_to_map`].
#[derive(Debug, Clone)]
pub struct Job<C = NoCombiner> {
    executor: Executor,
    combiner: C,
}

impl Job<NoCombiner> {
    /// A single-threaded job (the experiment baseline).
    #[must_use]
    pub fn serial() -> Self {
        Job {
            executor: Executor::Serial,
            combiner: NoCombiner,
        }
    }

    /// A parallel job over `workers` threads (clamped to at least 1).
    #[must_use]
    pub fn parallel(workers: usize) -> Self {
        Job {
            executor: Executor::Parallel {
                workers: workers.max(1),
            },
            combiner: NoCombiner,
        }
    }
}

impl<C> Job<C> {
    /// Replaces the combiner, keeping the execution strategy.
    #[must_use]
    pub fn combiner<C2>(self, combiner: C2) -> Job<C2> {
        Job {
            executor: self.executor,
            combiner,
        }
    }

    /// The configured execution strategy.
    #[must_use]
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// Runs the job, returning final records in deterministic order.
    ///
    /// Output order is: ascending intermediate key (`K2`), then the order
    /// in which the Reduce invocation emitted — identical for the serial
    /// and parallel executors.
    pub fn run<K1, V1, K2, V2, K3, V3, MR, I>(&self, mr: &MR, input: I) -> MapReduceResult<K3, V3>
    where
        MR: MapReduce<K1, V1, K2, V2, K3, V3>,
        I: IntoIterator<Item = (K1, V1)>,
        K1: Send + Sync,
        V1: Send + Sync,
        K2: Ord + Send + Sync,
        V2: Send + Sync,
        K3: Send,
        V3: Send,
        C: Combiner<K2, V2>,
    {
        let input: Vec<(K1, V1)> = input.into_iter().collect();
        let mut stats = ExecutionStats {
            map_input_records: input.len() as u64,
            ..ExecutionStats::default()
        };
        match self.executor {
            Executor::Serial => {
                stats.workers = 1;
                let output = self.run_serial(mr, input, &mut stats);
                MapReduceResult { output, stats }
            }
            Executor::Parallel { workers } => {
                stats.workers = workers;
                let output = self.run_parallel(mr, input, workers, &mut stats);
                MapReduceResult { output, stats }
            }
        }
    }

    /// Runs the job, collapsing the output into a `BTreeMap` (later
    /// emissions for the same final key overwrite earlier ones).
    pub fn run_to_map<K1, V1, K2, V2, K3, V3, MR, I>(
        &self,
        mr: &MR,
        input: I,
    ) -> MappedResult<K3, V3>
    where
        MR: MapReduce<K1, V1, K2, V2, K3, V3>,
        I: IntoIterator<Item = (K1, V1)>,
        K1: Send + Sync,
        V1: Send + Sync,
        K2: Ord + Send + Sync,
        V2: Send + Sync,
        K3: Ord + Send,
        V3: Send,
        C: Combiner<K2, V2>,
    {
        let result = self.run(mr, input);
        MappedResult {
            output: result.output.into_iter().collect(),
            stats: result.stats,
        }
    }

    fn run_serial<K1, V1, K2, V2, K3, V3, MR>(
        &self,
        mr: &MR,
        input: Vec<(K1, V1)>,
        stats: &mut ExecutionStats,
    ) -> Vec<(K3, V3)>
    where
        MR: MapReduce<K1, V1, K2, V2, K3, V3>,
        K2: Ord,
        C: Combiner<K2, V2>,
    {
        // Map.
        let map_start = Instant::now();
        let mut collector = MapCollector::new();
        for (k, v) in &input {
            mr.map(k, v, &mut collector);
        }
        let intermediate = collector.into_items();
        stats.map_time = map_start.elapsed();

        // Shuffle.
        let shuffle_start = Instant::now();
        let mut groups: BTreeMap<K2, Vec<V2>> = BTreeMap::new();
        for (k, v) in intermediate {
            groups.entry(k).or_default().push(v);
        }
        // The combiner runs here in serial mode: with one worker there is
        // no shuffle traffic to save, but running it keeps serial and
        // parallel semantics identical for combiners that transform values.
        let groups: BTreeMap<K2, Vec<V2>> = groups
            .into_iter()
            .map(|(k, vs)| {
                let combined = self.combiner.combine(&k, vs);
                (k, combined)
            })
            .collect();
        stats.map_output_records = groups.values().map(|v| v.len() as u64).sum();
        stats.groups = groups.len() as u64;
        stats.shuffle_time = shuffle_start.elapsed();

        // Reduce.
        let reduce_start = Instant::now();
        let mut out = ReduceCollector::new();
        for (k, vs) in &groups {
            mr.reduce(k, vs, &mut out);
        }
        let output = out.into_items();
        stats.reduce_output_records = output.len() as u64;
        stats.reduce_time = reduce_start.elapsed();
        output
    }

    fn run_parallel<K1, V1, K2, V2, K3, V3, MR>(
        &self,
        mr: &MR,
        input: Vec<(K1, V1)>,
        workers: usize,
        stats: &mut ExecutionStats,
    ) -> Vec<(K3, V3)>
    where
        MR: MapReduce<K1, V1, K2, V2, K3, V3>,
        K1: Send + Sync,
        V1: Send + Sync,
        K2: Ord + Send + Sync,
        V2: Send + Sync,
        K3: Send,
        V3: Send,
        C: Combiner<K2, V2>,
    {
        let workers = workers.max(1);
        let combiner = &self.combiner;

        // Map phase: each worker maps a contiguous chunk and pre-groups
        // locally (running the combiner on its partial groups).
        let map_start = Instant::now();
        let chunk_size = input.len().div_ceil(workers).max(1);
        let chunks: Vec<&[(K1, V1)]> = input.chunks(chunk_size).collect();
        let partials: Vec<BTreeMap<K2, Vec<V2>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut collector = MapCollector::new();
                        for (k, v) in chunk {
                            mr.map(k, v, &mut collector);
                        }
                        let mut local: BTreeMap<K2, Vec<V2>> = BTreeMap::new();
                        for (k, v) in collector.into_items() {
                            local.entry(k).or_default().push(v);
                        }
                        local
                            .into_iter()
                            .map(|(k, vs)| {
                                let combined = combiner.combine(&k, vs);
                                (k, combined)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("map worker panicked"))
                .collect()
        });
        stats.map_time = map_start.elapsed();

        // Shuffle: merge the per-worker partial groups. Workers are merged
        // in chunk order, so per-key value order equals the serial
        // executor's input order.
        let shuffle_start = Instant::now();
        let mut groups: BTreeMap<K2, Vec<V2>> = BTreeMap::new();
        for partial in partials {
            for (k, vs) in partial {
                groups.entry(k).or_default().extend(vs);
            }
        }
        stats.map_output_records = groups.values().map(|v| v.len() as u64).sum();
        stats.groups = groups.len() as u64;
        stats.shuffle_time = shuffle_start.elapsed();

        // Reduce phase: partition the key space contiguously, reduce each
        // partition on its own worker, concatenate in partition order.
        let reduce_start = Instant::now();
        let entries: Vec<(&K2, &Vec<V2>)> = groups.iter().collect();
        let chunk_size = entries.len().div_ceil(workers).max(1);
        let output: Vec<(K3, V3)> = std::thread::scope(|scope| {
            let handles: Vec<_> = entries
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut out = ReduceCollector::new();
                        for (k, vs) in chunk {
                            mr.reduce(k, vs, &mut out);
                        }
                        out.into_items()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("reduce worker panicked"))
                .collect()
        });
        stats.reduce_output_records = output.len() as u64;
        stats.reduce_time = reduce_start.elapsed();
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sums values per key; emits per-key sums.
    struct SumPerKey;

    impl MapReduce<u32, i64, u32, i64, u32, i64> for SumPerKey {
        fn map(&self, key: &u32, value: &i64, out: &mut MapCollector<u32, i64>) {
            out.emit_map(*key, *value);
        }

        fn reduce(&self, key: &u32, values: &[i64], out: &mut ReduceCollector<u32, i64>) {
            out.emit_reduce(*key, values.iter().sum());
        }
    }

    fn dataset(n: usize, keys: u32) -> Vec<(u32, i64)> {
        (0..n).map(|i| ((i as u32) % keys, i as i64)).collect()
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let result = Job::serial().run(&SumPerKey, Vec::new());
        assert!(result.output.is_empty());
        assert_eq!(result.stats.map_input_records, 0);
        assert_eq!(result.stats.groups, 0);
        let result = Job::parallel(4).run(&SumPerKey, Vec::new());
        assert!(result.output.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let data = dataset(10_000, 17);
        let serial = Job::serial().run(&SumPerKey, data.clone());
        for workers in [1, 2, 3, 4, 7, 16] {
            let parallel = Job::parallel(workers).run(&SumPerKey, data.clone());
            assert_eq!(serial.output, parallel.output, "workers = {workers}");
            assert_eq!(parallel.stats.workers, workers);
        }
    }

    #[test]
    fn output_sorted_by_intermediate_key() {
        let data = vec![(3u32, 1i64), (1, 2), (2, 3), (1, 4)];
        let result = Job::serial().run(&SumPerKey, data);
        let keys: Vec<u32> = result.output.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(result.output[0], (1, 6));
    }

    #[test]
    fn stats_count_records() {
        let data = dataset(100, 10);
        let result = Job::parallel(4).run(&SumPerKey, data);
        assert_eq!(result.stats.map_input_records, 100);
        assert_eq!(result.stats.map_output_records, 100);
        assert_eq!(result.stats.groups, 10);
        assert_eq!(result.stats.reduce_output_records, 10);
        assert!(result.stats.total_time() >= result.stats.map_time);
    }

    #[test]
    fn more_workers_than_records_is_fine() {
        let data = dataset(3, 3);
        let result = Job::parallel(64).run(&SumPerKey, data);
        assert_eq!(result.output.len(), 3);
    }

    #[test]
    fn per_key_value_order_matches_serial_input_order() {
        /// Emits the concatenation of values per key, exposing ordering.
        struct Concat;
        impl MapReduce<u32, String, u32, String, u32, String> for Concat {
            fn map(&self, key: &u32, value: &String, out: &mut MapCollector<u32, String>) {
                out.emit_map(*key, value.clone());
            }
            fn reduce(&self, key: &u32, values: &[String], out: &mut ReduceCollector<u32, String>) {
                out.emit_reduce(*key, values.join(""));
            }
        }
        let data: Vec<(u32, String)> = (0..26)
            .map(|i| (i % 2, char::from(b'a' + i as u8).to_string()))
            .collect();
        let serial = Job::serial().run(&Concat, data.clone());
        let parallel = Job::parallel(4).run(&Concat, data);
        assert_eq!(serial.output, parallel.output);
        // Even key: a, c, e, ... in input order.
        assert_eq!(serial.output[0].1, "acegikmoqsuwy");
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        use crate::FnCombiner;
        let data = dataset(10_000, 5);
        let no_combiner = Job::parallel(4).run(&SumPerKey, data.clone());
        let with_combiner = Job::parallel(4)
            .combiner(FnCombiner(|_k: &u32, vs: Vec<i64>| {
                vec![vs.iter().sum::<i64>()]
            }))
            .run(&SumPerKey, data);
        assert_eq!(no_combiner.output, with_combiner.output);
        assert!(
            with_combiner.stats.map_output_records < no_combiner.stats.map_output_records,
            "combiner must shrink intermediate volume: {} vs {}",
            with_combiner.stats.map_output_records,
            no_combiner.stats.map_output_records
        );
        // At most workers * keys intermediate records after combining.
        assert!(with_combiner.stats.map_output_records <= 4 * 5);
    }

    #[test]
    fn run_to_map_collapses_keys() {
        let data = dataset(50, 7);
        let result = Job::serial().run_to_map(&SumPerKey, data);
        assert_eq!(result.output.len(), 7);
        let total: i64 = result.output.values().sum();
        assert_eq!(total, (0..50).sum::<i64>());
    }

    #[test]
    fn filtering_map_phase() {
        /// Drops odd values entirely in Map (some keys vanish).
        struct EvensOnly;
        impl MapReduce<u32, i64, u32, i64, u32, i64> for EvensOnly {
            fn map(&self, key: &u32, value: &i64, out: &mut MapCollector<u32, i64>) {
                if value % 2 == 0 {
                    out.emit_map(*key, *value);
                }
            }
            fn reduce(&self, key: &u32, values: &[i64], out: &mut ReduceCollector<u32, i64>) {
                out.emit_reduce(*key, values.len() as i64);
            }
        }
        let data = vec![(1u32, 1i64), (1, 3), (2, 2), (2, 4)];
        let result = Job::parallel(2).run(&EvensOnly, data);
        assert_eq!(result.output, vec![(2, 2)]);
        assert_eq!(result.stats.groups, 1);
    }
}

//! Serial and parallel MapReduce executors with task-level fault
//! tolerance.
//!
//! The serial executor is the measurement baseline; the parallel executor
//! fans both phases out over a pool of scoped worker threads pulling from
//! a shared task queue. Both produce byte-identical output (final records
//! sorted by intermediate key, with per-key emission order preserved), so
//! experiments compare *time*, never correctness.
//!
//! Fault tolerance follows the original MapReduce design (Dean &
//! Ghemawat, OSDI'04):
//!
//! - every task attempt runs under `catch_unwind`, so a panicking user
//!   function becomes a structured [`TaskError`] instead of tearing down
//!   the process;
//! - failed attempts are retried up to [`Job::task_retries`] times;
//! - straggling attempts are speculatively re-executed when
//!   [`Job::speculation`] is configured — first result wins, the loser is
//!   discarded, and output stays byte-identical because results are
//!   assembled by task index, never by arrival order;
//! - with [`Job::allow_partial`], tasks that exhaust their budget are
//!   *dropped* rather than fatal: the job completes degraded and the
//!   [`CoverageReport`] in its stats accounts for exactly what was lost.

use crate::collector::{MapCollector, ReduceCollector};
use crate::fault::{
    JobError, SpeculationConfig, TaskError, TaskFailure, TaskFault, TaskFaultPlan, TaskPhase,
};
use crate::stats::{CoverageReport, ExecutionStats};
use crate::{Combiner, MapReduce};
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex, Once};
use std::time::{Duration, Instant};

/// Which execution strategy a [`Job`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Single-threaded baseline.
    Serial,
    /// Map and Reduce phases run on this many worker threads.
    Parallel {
        /// Number of worker threads (clamped to at least 1, and capped
        /// per phase at the phase's task count).
        workers: usize,
    },
}

/// A pass-through combiner used when none is configured.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCombiner;

impl<K2, V2> Combiner<K2, V2> for NoCombiner {
    fn combine(&self, _key: &K2, values: Vec<V2>) -> Vec<V2> {
        values
    }
}

/// Result of a MapReduce execution: final records in deterministic order
/// (ascending intermediate key, per-key emission order) plus statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapReduceResult<K3, V3> {
    /// The final records. In a degraded run ([`Job::allow_partial`]),
    /// records belonging to permanently failed tasks are absent.
    pub output: Vec<(K3, V3)>,
    /// Execution statistics, including the [`CoverageReport`].
    pub stats: ExecutionStats,
    /// Tasks that exhausted their retry budget (empty unless the job ran
    /// with [`Job::allow_partial`]).
    pub failed_tasks: Vec<TaskError>,
}

/// Result shaped as a map, for the common one-record-per-key case — the
/// form the generated `onPeriodicPresence(Map<...>)` callback of Figure 10
/// receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedResult<K3, V3> {
    /// Final records keyed by `K3`. Later emissions for the same key win.
    pub output: BTreeMap<K3, V3>,
    /// Execution statistics, including the [`CoverageReport`].
    pub stats: ExecutionStats,
    /// Tasks that exhausted their retry budget (empty unless the job ran
    /// with [`Job::allow_partial`]).
    pub failed_tasks: Vec<TaskError>,
}

/// A configured MapReduce execution: strategy, optional combiner, and
/// fault-tolerance knobs.
///
/// Construct with [`Job::serial`] or [`Job::parallel`], optionally add a
/// [`Combiner`] with [`Job::combiner`] and fault tolerance with
/// [`Job::task_retries`] / [`Job::fault_plan`] / [`Job::speculation`] /
/// [`Job::allow_partial`], then call [`Job::run`] ([`Job::try_run`] for
/// structured errors) or [`Job::run_to_map`] ([`Job::try_run_to_map`]).
#[derive(Debug, Clone)]
pub struct Job<C = NoCombiner> {
    executor: Executor,
    combiner: C,
    faults: Option<TaskFaultPlan>,
    max_retries: u32,
    speculation: Option<SpeculationConfig>,
    allow_partial: bool,
    tasks: Option<usize>,
}

impl Job<NoCombiner> {
    /// A single-threaded job (the experiment baseline).
    #[must_use]
    pub fn serial() -> Self {
        Job::new(Executor::Serial)
    }

    /// A parallel job over `workers` threads (clamped to at least 1).
    #[must_use]
    pub fn parallel(workers: usize) -> Self {
        Job::new(Executor::Parallel {
            workers: workers.max(1),
        })
    }

    fn new(executor: Executor) -> Self {
        Job {
            executor,
            combiner: NoCombiner,
            faults: None,
            max_retries: 0,
            speculation: None,
            allow_partial: false,
            tasks: None,
        }
    }
}

impl<C> Job<C> {
    /// Replaces the combiner, keeping every other setting.
    #[must_use]
    pub fn combiner<C2>(self, combiner: C2) -> Job<C2> {
        Job {
            executor: self.executor,
            combiner,
            faults: self.faults,
            max_retries: self.max_retries,
            speculation: self.speculation,
            allow_partial: self.allow_partial,
            tasks: self.tasks,
        }
    }

    /// The configured execution strategy.
    #[must_use]
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// Injects the given seeded [`TaskFaultPlan`] into task attempts.
    ///
    /// # Panics
    ///
    /// Panics if the plan holds a probability outside `[0, 1]`.
    #[must_use]
    pub fn fault_plan(mut self, plan: TaskFaultPlan) -> Self {
        plan.validate();
        self.faults = Some(plan);
        self
    }

    /// Retries each failed task up to `retries` times (default 0).
    #[must_use]
    pub fn task_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Enables speculative re-execution of straggling tasks. Only the
    /// parallel executor speculates — with a single worker there is no
    /// idle capacity to race a duplicate on.
    #[must_use]
    pub fn speculation(mut self, config: SpeculationConfig) -> Self {
        self.speculation = Some(config);
        self
    }

    /// Lets the job complete in degraded mode when tasks exhaust their
    /// retry budget, instead of failing outright: lost tasks are dropped
    /// from the output and accounted in the [`CoverageReport`].
    #[must_use]
    pub fn allow_partial(mut self, allow: bool) -> Self {
        self.allow_partial = allow;
        self
    }

    /// Overrides the number of tasks per phase (input chunks for Map,
    /// key-range partitions for Reduce). Defaults to the worker count —
    /// override it to decouple fault granularity from parallelism, e.g.
    /// to give the serial executor task-level fault isolation.
    #[must_use]
    pub fn tasks(mut self, tasks: usize) -> Self {
        self.tasks = Some(tasks.max(1));
        self
    }

    /// Runs the job, returning final records in deterministic order.
    ///
    /// Output order is: ascending intermediate key (`K2`), then the order
    /// in which the Reduce invocation emitted — identical for the serial
    /// and parallel executors.
    ///
    /// # Panics
    ///
    /// Panics with the [`JobError`] message if a task exhausts its retry
    /// budget and [`Job::allow_partial`] is off; use [`Job::try_run`] to
    /// handle that structurally.
    pub fn run<K1, V1, K2, V2, K3, V3, MR, I>(&self, mr: &MR, input: I) -> MapReduceResult<K3, V3>
    where
        MR: MapReduce<K1, V1, K2, V2, K3, V3>,
        I: IntoIterator<Item = (K1, V1)>,
        K1: Send + Sync,
        V1: Send + Sync,
        K2: Ord + Send + Sync,
        V2: Send + Sync,
        K3: Send,
        V3: Send,
        C: Combiner<K2, V2>,
    {
        self.try_run(mr, input)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Runs the job, collapsing the output into a `BTreeMap` (later
    /// emissions for the same final key overwrite earlier ones).
    ///
    /// # Panics
    ///
    /// As [`Job::run`]; use [`Job::try_run_to_map`] to handle task
    /// failure structurally.
    pub fn run_to_map<K1, V1, K2, V2, K3, V3, MR, I>(
        &self,
        mr: &MR,
        input: I,
    ) -> MappedResult<K3, V3>
    where
        MR: MapReduce<K1, V1, K2, V2, K3, V3>,
        I: IntoIterator<Item = (K1, V1)>,
        K1: Send + Sync,
        V1: Send + Sync,
        K2: Ord + Send + Sync,
        V2: Send + Sync,
        K3: Ord + Send,
        V3: Send,
        C: Combiner<K2, V2>,
    {
        self.try_run_to_map(mr, input)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// As [`Job::run_to_map`], but task failure beyond the retry budget
    /// surfaces as a [`JobError`] instead of a panic.
    pub fn try_run_to_map<K1, V1, K2, V2, K3, V3, MR, I>(
        &self,
        mr: &MR,
        input: I,
    ) -> Result<MappedResult<K3, V3>, JobError>
    where
        MR: MapReduce<K1, V1, K2, V2, K3, V3>,
        I: IntoIterator<Item = (K1, V1)>,
        K1: Send + Sync,
        V1: Send + Sync,
        K2: Ord + Send + Sync,
        V2: Send + Sync,
        K3: Ord + Send,
        V3: Send,
        C: Combiner<K2, V2>,
    {
        let result = self.try_run(mr, input)?;
        Ok(MappedResult {
            output: result.output.into_iter().collect(),
            stats: result.stats,
            failed_tasks: result.failed_tasks,
        })
    }

    /// As [`Job::run`], but task failure beyond the retry budget surfaces
    /// as a [`JobError`] instead of a panic. With [`Job::allow_partial`],
    /// the job never errs: it completes degraded and reports the damage
    /// in `failed_tasks` and the [`CoverageReport`].
    pub fn try_run<K1, V1, K2, V2, K3, V3, MR, I>(
        &self,
        mr: &MR,
        input: I,
    ) -> Result<MapReduceResult<K3, V3>, JobError>
    where
        MR: MapReduce<K1, V1, K2, V2, K3, V3>,
        I: IntoIterator<Item = (K1, V1)>,
        K1: Send + Sync,
        V1: Send + Sync,
        K2: Ord + Send + Sync,
        V2: Send + Sync,
        K3: Send,
        V3: Send,
        C: Combiner<K2, V2>,
    {
        let input: Vec<(K1, V1)> = input.into_iter().collect();
        let requested_workers = match self.executor {
            Executor::Serial => 1,
            Executor::Parallel { workers } => workers.max(1),
        };
        let n_tasks = self.tasks.unwrap_or(requested_workers).max(1);
        let faults = self.faults.as_ref().filter(|plan| !plan.is_empty());
        let speculation = self.speculation.as_ref();

        let mut stats = ExecutionStats {
            map_input_records: input.len() as u64,
            ..ExecutionStats::default()
        };
        let mut coverage = CoverageReport {
            map_records_total: input.len() as u64,
            ..CoverageReport::default()
        };
        let mut failed_tasks: Vec<TaskError> = Vec::new();
        let combiner = &self.combiner;

        // Map phase: each task maps a contiguous chunk and pre-groups
        // locally (running the combiner on its partial groups, tracking
        // the pre-combine value count per key for coverage accounting).
        let map_start = Instant::now();
        let chunk_size = input.len().div_ceil(n_tasks).max(1);
        let chunks: Vec<&[(K1, V1)]> = input.chunks(chunk_size).collect();
        coverage.map_tasks = chunks.len() as u32;
        let map_work = |task: usize| -> BTreeMap<K2, (Vec<V2>, u64)> {
            let mut collector = MapCollector::new();
            for (k, v) in chunks[task] {
                mr.map(k, v, &mut collector);
            }
            let mut local: BTreeMap<K2, Vec<V2>> = BTreeMap::new();
            for (k, v) in collector.into_items() {
                local.entry(k).or_default().push(v);
            }
            local
                .into_iter()
                .map(|(k, vs)| {
                    let raw = vs.len() as u64;
                    let combined = combiner.combine(&k, vs);
                    (k, (combined, raw))
                })
                .collect()
        };
        let map_out = run_phase(
            chunks.len(),
            requested_workers,
            TaskPhase::Map,
            faults,
            self.max_retries,
            speculation,
            &map_work,
        );
        stats.map_time = map_start.elapsed();
        let map_workers = map_out.workers;
        absorb_phase(&mut coverage, &mut stats, &map_out);
        let mut partials: Vec<BTreeMap<K2, (Vec<V2>, u64)>> = Vec::with_capacity(chunks.len());
        for (task, result) in map_out.results.into_iter().enumerate() {
            match result {
                Ok(partial) => partials.push(partial),
                Err(err) => {
                    coverage.map_tasks_failed += 1;
                    coverage.map_records_lost += chunks[task].len() as u64;
                    failed_tasks.push(err);
                }
            }
        }
        if !self.allow_partial && !failed_tasks.is_empty() {
            return Err(JobError {
                failed: failed_tasks,
            });
        }

        // Shuffle: merge the per-task partial groups. Tasks are merged in
        // chunk order, so per-key value order equals the serial
        // executor's input order.
        let shuffle_start = Instant::now();
        let mut groups: BTreeMap<K2, (Vec<V2>, u64)> = BTreeMap::new();
        for partial in partials {
            for (k, (vs, raw)) in partial {
                let entry = groups.entry(k).or_insert_with(|| (Vec::new(), 0));
                entry.0.extend(vs);
                entry.1 += raw;
            }
        }
        stats.map_output_records = groups.values().map(|(vs, _)| vs.len() as u64).sum();
        stats.groups = groups.len() as u64;
        coverage.group_values_total = groups.values().map(|(_, raw)| *raw).sum();
        stats.shuffle_time = shuffle_start.elapsed();

        // Reduce phase: partition the key space contiguously, reduce each
        // partition as one task, concatenate in partition order.
        let reduce_start = Instant::now();
        let entries: Vec<(&K2, &Vec<V2>, u64)> =
            groups.iter().map(|(k, (vs, raw))| (k, vs, *raw)).collect();
        let chunk_size = entries.len().div_ceil(n_tasks).max(1);
        let partitions: Vec<&[(&K2, &Vec<V2>, u64)]> = entries.chunks(chunk_size).collect();
        coverage.reduce_tasks = partitions.len() as u32;
        let reduce_work = |task: usize| -> Vec<(K3, V3)> {
            let mut out = ReduceCollector::new();
            for (k, vs, _) in partitions[task] {
                mr.reduce(k, vs, &mut out);
            }
            out.into_items()
        };
        let reduce_out = run_phase(
            partitions.len(),
            requested_workers,
            TaskPhase::Reduce,
            faults,
            self.max_retries,
            speculation,
            &reduce_work,
        );
        absorb_phase(&mut coverage, &mut stats, &reduce_out);
        let mut output: Vec<(K3, V3)> = Vec::new();
        for (task, result) in reduce_out.results.into_iter().enumerate() {
            match result {
                Ok(records) => output.extend(records),
                Err(err) => {
                    coverage.reduce_tasks_failed += 1;
                    coverage.group_values_lost +=
                        partitions[task].iter().map(|(_, _, raw)| raw).sum::<u64>();
                    failed_tasks.push(err);
                }
            }
        }
        stats.reduce_output_records = output.len() as u64;
        stats.reduce_time = reduce_start.elapsed();
        stats.workers = map_workers.max(reduce_out.workers).max(1);
        stats.coverage = coverage;

        if !self.allow_partial && coverage.reduce_tasks_failed > 0 {
            return Err(JobError {
                failed: failed_tasks,
            });
        }
        Ok(MapReduceResult {
            output,
            stats,
            failed_tasks,
        })
    }
}

/// Folds one phase's fault-tolerance counters into the job totals.
fn absorb_phase<T>(
    coverage: &mut CoverageReport,
    stats: &mut ExecutionStats,
    out: &PhaseOutcome<T>,
) {
    coverage.task_retries += out.retries;
    coverage.speculative_attempts += out.speculative;
    coverage.injected_faults += out.injected;
    stats.recovery_time += out.recovery;
}

/// Everything one phase execution produced.
struct PhaseOutcome<T> {
    /// Per-task outcome, indexed by task.
    results: Vec<Result<T, TaskError>>,
    /// Worker threads actually used (0 when the phase had no tasks).
    workers: usize,
    /// Failed attempts re-queued within the retry budget.
    retries: u32,
    /// Speculative duplicate attempts launched.
    speculative: u32,
    /// Attempts the fault plan injected into.
    injected: u32,
    /// Wall time of attempts whose result was discarded.
    recovery: Duration,
}

/// Runs `n_tasks` tasks on up to `requested_workers` threads, retrying
/// failures and (optionally) speculating on stragglers.
fn run_phase<T, F>(
    n_tasks: usize,
    requested_workers: usize,
    phase: TaskPhase,
    faults: Option<&TaskFaultPlan>,
    max_retries: u32,
    speculation: Option<&SpeculationConfig>,
    work: &F,
) -> PhaseOutcome<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_tasks == 0 {
        return PhaseOutcome {
            results: Vec::new(),
            workers: 0,
            retries: 0,
            speculative: 0,
            injected: 0,
            recovery: Duration::ZERO,
        };
    }
    // Cap the pool at the task count: a task never runs on two pool
    // threads at once unless speculation duplicates it, so extra threads
    // would only pay spawn/join cost.
    let workers = requested_workers.min(n_tasks).max(1);
    if workers == 1 {
        run_phase_sequential(n_tasks, phase, faults, max_retries, work)
    } else {
        run_phase_pool(
            n_tasks,
            workers,
            phase,
            faults,
            max_retries,
            speculation,
            work,
        )
    }
}

/// Single-threaded phase driver: same retry semantics as the pool, no
/// thread spawns, no speculation (there is no idle capacity to race on).
fn run_phase_sequential<T, F>(
    n_tasks: usize,
    phase: TaskPhase,
    faults: Option<&TaskFaultPlan>,
    max_retries: u32,
    work: &F,
) -> PhaseOutcome<T>
where
    F: Fn(usize) -> T,
{
    let mut out = PhaseOutcome {
        results: Vec::with_capacity(n_tasks),
        workers: 1,
        retries: 0,
        speculative: 0,
        injected: 0,
        recovery: Duration::ZERO,
    };
    for task in 0..n_tasks {
        let mut failures = 0u32;
        let result = loop {
            let started = Instant::now();
            let (attempt_result, injected) =
                run_attempt(phase, task, failures + 1, faults, || work(task));
            if injected {
                out.injected += 1;
            }
            match attempt_result {
                Ok(value) => break Ok(value),
                Err(failure) => {
                    failures += 1;
                    out.recovery += started.elapsed();
                    if failures <= max_retries {
                        out.retries += 1;
                        continue;
                    }
                    break Err(TaskError {
                        phase,
                        task,
                        attempts: failures,
                        failure,
                    });
                }
            }
        };
        out.results.push(result);
    }
    out
}

/// State shared by the pool workers of one phase.
struct PoolState<T> {
    /// Attempts ready to run: `(task, attempt_number)`.
    pending: VecDeque<(usize, u32)>,
    /// Per-task resolution slot; the first successful attempt wins.
    slots: Vec<Option<Result<T, TaskError>>>,
    /// Attempts of each task currently executing on some worker.
    live: Vec<u32>,
    /// Start of the oldest live attempt per task (straggler detection).
    started: Vec<Option<Instant>>,
    /// Attempt numbers handed out per task.
    launched: Vec<u32>,
    /// Concluded failed attempts per task.
    failures: Vec<u32>,
    /// Tasks not yet resolved.
    outstanding: usize,
    /// Durations of winning attempts (speculation baseline).
    durations: Vec<Duration>,
    retries: u32,
    speculative: u32,
    injected: u32,
    recovery: Duration,
}

impl<T> PoolState<T> {
    fn new(n_tasks: usize) -> Self {
        PoolState {
            pending: (0..n_tasks).map(|task| (task, 1)).collect(),
            slots: (0..n_tasks).map(|_| None).collect(),
            live: vec![0; n_tasks],
            started: vec![None; n_tasks],
            launched: vec![1; n_tasks],
            failures: vec![0; n_tasks],
            outstanding: n_tasks,
            durations: Vec::new(),
            retries: 0,
            speculative: 0,
            injected: 0,
            recovery: Duration::ZERO,
        }
    }

    fn has_pending_for(&self, task: usize) -> bool {
        self.pending.iter().any(|(t, _)| *t == task)
    }

    /// The straggling task most worth duplicating, if any: a single live
    /// attempt, nothing queued, running longer than the speculation
    /// threshold derived from completed-task durations.
    fn pick_straggler(&self, spec: &SpeculationConfig) -> Option<usize> {
        if self.durations.len() < spec.min_observations {
            return None;
        }
        let mut sorted = self.durations.clone();
        sorted.sort();
        let index = ((sorted.len() as f64) * spec.quantile.clamp(0.0, 1.0)).ceil() as usize;
        let baseline = sorted[index.saturating_sub(1).min(sorted.len() - 1)];
        let threshold = baseline
            .mul_f64(spec.multiplier.max(1.0))
            .max(spec.min_elapsed);
        (0..self.slots.len()).find(|&task| {
            self.slots[task].is_none()
                && self.live[task] == 1
                && !self.has_pending_for(task)
                && self.started[task].is_some_and(|s| s.elapsed() > threshold)
        })
    }
}

/// Multi-threaded phase driver: a shared queue of task attempts drained
/// by `workers` scoped threads; idle workers speculate on stragglers.
fn run_phase_pool<T, F>(
    n_tasks: usize,
    workers: usize,
    phase: TaskPhase,
    faults: Option<&TaskFaultPlan>,
    max_retries: u32,
    speculation: Option<&SpeculationConfig>,
    work: &F,
) -> PhaseOutcome<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let state = Mutex::new(PoolState::<T>::new(n_tasks));
    let ready = Condvar::new();
    let worker_loop = || {
        let mut guard = state.lock().expect("pool lock");
        loop {
            if guard.outstanding == 0 {
                ready.notify_all();
                return;
            }
            let Some((task, attempt)) = guard.pending.pop_front() else {
                // Idle: speculate on a straggler, or wait for work. The
                // short timeout re-checks straggler thresholds, which
                // advance with wall time rather than with events.
                if let Some(spec) = speculation {
                    if let Some(task) = guard.pick_straggler(spec) {
                        let attempt = guard.launched[task] + 1;
                        guard.launched[task] = attempt;
                        guard.pending.push_back((task, attempt));
                        guard.speculative += 1;
                        continue;
                    }
                }
                let (next, _timeout) = ready
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("pool lock");
                guard = next;
                continue;
            };
            guard.live[task] += 1;
            if guard.started[task].is_none() {
                guard.started[task] = Some(Instant::now());
            }
            drop(guard);
            let attempt_start = Instant::now();
            let (attempt_result, injected) =
                run_attempt(phase, task, attempt, faults, || work(task));
            let elapsed = attempt_start.elapsed();
            guard = state.lock().expect("pool lock");
            guard.live[task] -= 1;
            if guard.live[task] == 0 {
                guard.started[task] = None;
            }
            if injected {
                guard.injected += 1;
            }
            let resolved = guard.slots[task].is_some();
            match attempt_result {
                Ok(value) => {
                    if resolved {
                        // A duplicate already won the race; discard.
                        guard.recovery += elapsed;
                    } else {
                        guard.slots[task] = Some(Ok(value));
                        guard.outstanding -= 1;
                        guard.durations.push(elapsed);
                        // Orphan any queued duplicates of this task.
                        guard.pending.retain(|(t, _)| *t != task);
                        ready.notify_all();
                    }
                }
                Err(failure) => {
                    guard.recovery += elapsed;
                    if !resolved {
                        guard.failures[task] += 1;
                        let failures = guard.failures[task];
                        if failures <= max_retries {
                            let attempt = guard.launched[task] + 1;
                            guard.launched[task] = attempt;
                            guard.pending.push_back((task, attempt));
                            guard.retries += 1;
                            ready.notify_all();
                        } else if guard.live[task] == 0 && !guard.has_pending_for(task) {
                            // Out of budget and no duplicate can still
                            // save the task: permanently failed.
                            guard.slots[task] = Some(Err(TaskError {
                                phase,
                                task,
                                attempts: failures,
                                failure,
                            }));
                            guard.outstanding -= 1;
                            ready.notify_all();
                        }
                        // Otherwise a still-running or queued duplicate
                        // decides the task's fate.
                    }
                }
            }
        }
    };
    std::thread::scope(|scope| {
        // Spawn through a shared reference so every worker runs the same
        // (non-Copy) closure.
        let worker = &worker_loop;
        for _ in 0..workers {
            scope.spawn(worker);
        }
    });
    let state = state.into_inner().expect("pool lock");
    PhaseOutcome {
        results: state
            .slots
            .into_iter()
            .map(|slot| slot.expect("every task resolved"))
            .collect(),
        workers,
        retries: state.retries,
        speculative: state.speculative,
        injected: state.injected,
        recovery: state.recovery,
    }
}

thread_local! {
    /// Set while a task attempt executes under `catch_unwind`: its panics
    /// are converted into structured [`TaskError`]s, so the default
    /// "thread panicked" stderr noise would be misleading.
    static SILENCE_PANICS: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once per process) a panic hook that suppresses output for
/// panics the executor catches and converts, delegating every other
/// panic to the previously installed hook.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCE_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs one task attempt under `catch_unwind`, applying the injected
/// fate first. Returns the outcome plus whether a fault was injected.
fn run_attempt<T>(
    phase: TaskPhase,
    task: usize,
    attempt: u32,
    faults: Option<&TaskFaultPlan>,
    work: impl FnOnce() -> T,
) -> (Result<T, TaskFailure>, bool) {
    let fate = faults.and_then(|plan| plan.fate(phase, task, attempt));
    if fate == Some(TaskFault::WorkerLost) {
        // The worker vanishes: the attempt never runs and never reports.
        return (Err(TaskFailure::WorkerLost), true);
    }
    let injected = fate.is_some();
    install_quiet_hook();
    SILENCE_PANICS.with(|silence| silence.set(true));
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        match fate {
            Some(TaskFault::Panic) => {
                panic!("injected fault: {phase} task {task} attempt {attempt} panicked")
            }
            Some(TaskFault::Delay { ms }) => std::thread::sleep(Duration::from_millis(ms)),
            _ => {}
        }
        work()
    }));
    SILENCE_PANICS.with(|silence| silence.set(false));
    match caught {
        Ok(value) => (Ok(value), injected),
        Err(payload) => (
            Err(TaskFailure::Panicked {
                // `&*` reaches the payload itself: a bare `&payload`
                // would coerce the Box into `dyn Any` and defeat the
                // downcasts below.
                message: panic_message(&*payload),
            }),
            injected,
        ),
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "<opaque panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sums values per key; emits per-key sums.
    struct SumPerKey;

    impl MapReduce<u32, i64, u32, i64, u32, i64> for SumPerKey {
        fn map(&self, key: &u32, value: &i64, out: &mut MapCollector<u32, i64>) {
            out.emit_map(*key, *value);
        }

        fn reduce(&self, key: &u32, values: &[i64], out: &mut ReduceCollector<u32, i64>) {
            out.emit_reduce(*key, values.iter().sum());
        }
    }

    fn dataset(n: usize, keys: u32) -> Vec<(u32, i64)> {
        (0..n).map(|i| ((i as u32) % keys, i as i64)).collect()
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let result = Job::serial().run(&SumPerKey, Vec::new());
        assert!(result.output.is_empty());
        assert_eq!(result.stats.map_input_records, 0);
        assert_eq!(result.stats.groups, 0);
        assert!(result.stats.coverage.is_complete());
        let result = Job::parallel(4).run(&SumPerKey, Vec::new());
        assert!(result.output.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let data = dataset(10_000, 17);
        let serial = Job::serial().run(&SumPerKey, data.clone());
        for workers in [1, 2, 3, 4, 7, 16] {
            let parallel = Job::parallel(workers).run(&SumPerKey, data.clone());
            assert_eq!(serial.output, parallel.output, "workers = {workers}");
            assert_eq!(parallel.stats.workers, workers);
        }
    }

    #[test]
    fn output_sorted_by_intermediate_key() {
        let data = vec![(3u32, 1i64), (1, 2), (2, 3), (1, 4)];
        let result = Job::serial().run(&SumPerKey, data);
        let keys: Vec<u32> = result.output.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(result.output[0], (1, 6));
    }

    #[test]
    fn stats_count_records() {
        let data = dataset(100, 10);
        let result = Job::parallel(4).run(&SumPerKey, data);
        assert_eq!(result.stats.map_input_records, 100);
        assert_eq!(result.stats.map_output_records, 100);
        assert_eq!(result.stats.groups, 10);
        assert_eq!(result.stats.reduce_output_records, 10);
        assert!(result.stats.total_time() >= result.stats.map_time);
        assert_eq!(result.stats.coverage.map_tasks, 4);
        assert_eq!(result.stats.coverage.map_records_total, 100);
        assert_eq!(result.stats.coverage.group_values_total, 100);
        assert!(result.stats.coverage.is_complete());
        assert_eq!(result.stats.recovery_time, Duration::ZERO);
    }

    #[test]
    fn workers_capped_at_task_count() {
        let data = dataset(3, 3);
        let result = Job::parallel(64).run(&SumPerKey, data);
        assert_eq!(result.output.len(), 3);
        // 3 records -> 3 map chunks, 3 groups -> 3 reduce partitions:
        // only 3 of the 64 requested threads are worth spawning.
        assert_eq!(result.stats.workers, 3);
        assert_eq!(result.stats.coverage.map_tasks, 3);
    }

    #[test]
    fn per_key_value_order_matches_serial_input_order() {
        /// Emits the concatenation of values per key, exposing ordering.
        struct Concat;
        impl MapReduce<u32, String, u32, String, u32, String> for Concat {
            fn map(&self, key: &u32, value: &String, out: &mut MapCollector<u32, String>) {
                out.emit_map(*key, value.clone());
            }
            fn reduce(&self, key: &u32, values: &[String], out: &mut ReduceCollector<u32, String>) {
                out.emit_reduce(*key, values.join(""));
            }
        }
        let data: Vec<(u32, String)> = (0..26)
            .map(|i| (i % 2, char::from(b'a' + i as u8).to_string()))
            .collect();
        let serial = Job::serial().run(&Concat, data.clone());
        let parallel = Job::parallel(4).run(&Concat, data);
        assert_eq!(serial.output, parallel.output);
        // Even key: a, c, e, ... in input order.
        assert_eq!(serial.output[0].1, "acegikmoqsuwy");
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        use crate::FnCombiner;
        let data = dataset(10_000, 5);
        let no_combiner = Job::parallel(4).run(&SumPerKey, data.clone());
        let with_combiner = Job::parallel(4)
            .combiner(FnCombiner(|_k: &u32, vs: Vec<i64>| {
                vec![vs.iter().sum::<i64>()]
            }))
            .run(&SumPerKey, data);
        assert_eq!(no_combiner.output, with_combiner.output);
        assert!(
            with_combiner.stats.map_output_records < no_combiner.stats.map_output_records,
            "combiner must shrink intermediate volume: {} vs {}",
            with_combiner.stats.map_output_records,
            no_combiner.stats.map_output_records
        );
        // At most workers * keys intermediate records after combining.
        assert!(with_combiner.stats.map_output_records <= 4 * 5);
        // Coverage accounting sees through the combiner: raw counts.
        assert_eq!(with_combiner.stats.coverage.group_values_total, 10_000);
    }

    #[test]
    fn run_to_map_collapses_keys() {
        let data = dataset(50, 7);
        let result = Job::serial().run_to_map(&SumPerKey, data);
        assert_eq!(result.output.len(), 7);
        let total: i64 = result.output.values().sum();
        assert_eq!(total, (0..50).sum::<i64>());
    }

    #[test]
    fn filtering_map_phase() {
        /// Drops odd values entirely in Map (some keys vanish).
        struct EvensOnly;
        impl MapReduce<u32, i64, u32, i64, u32, i64> for EvensOnly {
            fn map(&self, key: &u32, value: &i64, out: &mut MapCollector<u32, i64>) {
                if value % 2 == 0 {
                    out.emit_map(*key, *value);
                }
            }
            fn reduce(&self, key: &u32, values: &[i64], out: &mut ReduceCollector<u32, i64>) {
                out.emit_reduce(*key, values.len() as i64);
            }
        }
        let data = vec![(1u32, 1i64), (1, 3), (2, 2), (2, 4)];
        let result = Job::parallel(2).run(&EvensOnly, data);
        assert_eq!(result.output, vec![(2, 2)]);
        assert_eq!(result.stats.groups, 1);
    }

    // ------------------------------------------------------------------
    // Fault tolerance.
    // ------------------------------------------------------------------

    /// Panics while mapping any record whose value is divisible by 97.
    struct PanicsOn97;
    impl MapReduce<u32, i64, u32, i64, u32, i64> for PanicsOn97 {
        fn map(&self, key: &u32, value: &i64, out: &mut MapCollector<u32, i64>) {
            assert!(
                value % 97 != 0 || *value == 0,
                "user map panicked on {value}"
            );
            out.emit_map(*key, *value);
        }
        fn reduce(&self, key: &u32, values: &[i64], out: &mut ReduceCollector<u32, i64>) {
            out.emit_reduce(*key, values.iter().sum());
        }
    }

    #[test]
    fn injected_panic_is_retried_and_heals_byte_identically() {
        let data = dataset(1_000, 13);
        let clean = Job::parallel(4).run(&SumPerKey, data.clone());
        let plan = TaskFaultPlan::seeded(11).panic_task(TaskPhase::Map, 1, 2);
        let healed = Job::parallel(4)
            .fault_plan(plan)
            .task_retries(2)
            .run(&SumPerKey, data);
        assert_eq!(clean.output, healed.output);
        assert!(healed.failed_tasks.is_empty());
        let coverage = healed.stats.coverage;
        assert!(coverage.is_complete());
        assert_eq!(coverage.task_retries, 2);
        assert_eq!(coverage.injected_faults, 2);
        assert_eq!(coverage.fraction_covered(), 1.0);
    }

    #[test]
    fn user_panic_surfaces_as_structured_job_error() {
        // No injected faults at all: a genuinely panicking user function
        // must yield a JobError, not abort the process (old behavior was
        // `h.join().expect("map worker panicked")`).
        let data = dataset(1_000, 13); // contains 97, 194, ...
        let err = Job::parallel(4)
            .try_run(&PanicsOn97, data)
            .expect_err("map panics must fail the job");
        assert!(!err.failed.is_empty());
        let first = &err.failed[0];
        assert_eq!(first.phase, TaskPhase::Map);
        assert_eq!(first.attempts, 1);
        match &first.failure {
            TaskFailure::Panicked { message } => {
                assert!(message.contains("user map panicked"), "{message}")
            }
            other => panic!("expected panic failure, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "map task 0 failed")]
    fn run_still_panics_when_partial_results_not_allowed() {
        let plan = TaskFaultPlan::seeded(1).panic_task(TaskPhase::Map, 0, 10);
        let _ = Job::parallel(2)
            .fault_plan(plan)
            .run(&SumPerKey, dataset(100, 5));
    }

    #[test]
    fn exhausted_retries_complete_degraded_with_exact_coverage() {
        let data = dataset(100, 4);
        let plan = TaskFaultPlan::seeded(5).panic_task(TaskPhase::Map, 0, 10);
        let result = Job::parallel(4)
            .fault_plan(plan)
            .task_retries(1)
            .allow_partial(true)
            .run(&SumPerKey, data.clone());
        assert_eq!(result.failed_tasks.len(), 1);
        let failed = &result.failed_tasks[0];
        assert_eq!(
            (failed.phase, failed.task, failed.attempts),
            (TaskPhase::Map, 0, 2)
        );
        let coverage = result.stats.coverage;
        assert_eq!(coverage.map_tasks, 4);
        assert_eq!(coverage.map_tasks_failed, 1);
        assert_eq!(coverage.map_records_total, 100);
        assert_eq!(coverage.map_records_lost, 25);
        assert_eq!(coverage.task_retries, 1);
        assert_eq!(coverage.percent_covered(), 75);
        // The output is exactly the fault-free output of the surviving
        // three chunks.
        let surviving: Vec<(u32, i64)> = data[25..].to_vec();
        let expected = Job::serial().run(&SumPerKey, surviving);
        assert_eq!(result.output, expected.output);
    }

    #[test]
    fn lost_reduce_worker_drops_exactly_its_partition() {
        let data = dataset(100, 8);
        let plan = TaskFaultPlan::seeded(3).lose_task(TaskPhase::Reduce, 0, 10);
        let result = Job::parallel(4)
            .fault_plan(plan)
            .allow_partial(true)
            .run(&SumPerKey, data);
        let coverage = result.stats.coverage;
        assert_eq!(coverage.reduce_tasks, 4);
        assert_eq!(coverage.reduce_tasks_failed, 1);
        // 8 groups over 4 partitions: the first partition held keys 0-1,
        // which got 13 values each (100 records over 8 keys).
        assert_eq!(coverage.group_values_total, 100);
        assert_eq!(coverage.group_values_lost, 26);
        assert_eq!(result.failed_tasks[0].failure, TaskFailure::WorkerLost);
        let keys: Vec<u32> = result.output.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn serial_executor_gets_task_isolation_via_tasks_override() {
        let data = dataset(100, 4);
        let plan = TaskFaultPlan::seeded(2).panic_task(TaskPhase::Map, 3, 10);
        let result = Job::serial()
            .tasks(4)
            .fault_plan(plan)
            .allow_partial(true)
            .run(&SumPerKey, data);
        assert_eq!(result.stats.workers, 1);
        let coverage = result.stats.coverage;
        assert_eq!(coverage.map_tasks, 4);
        assert_eq!(coverage.map_tasks_failed, 1);
        assert_eq!(coverage.percent_covered(), 75);
    }

    #[test]
    fn probabilistic_faults_are_deterministic_per_seed() {
        let data = dataset(2_000, 11);
        let job = || {
            Job::parallel(4)
                .tasks(16)
                .fault_plan(TaskFaultPlan::seeded(99).panic_tasks(0.4).lose_workers(0.2))
                .task_retries(3)
                .allow_partial(true)
                .run(&SumPerKey, data.clone())
        };
        let first = job();
        let second = job();
        assert_eq!(first.output, second.output);
        assert_eq!(first.failed_tasks, second.failed_tasks);
        assert_eq!(
            first.stats.coverage.task_retries,
            second.stats.coverage.task_retries
        );
        assert_eq!(
            first.stats.coverage.injected_faults,
            second.stats.coverage.injected_faults
        );
    }

    #[test]
    fn straggler_is_speculatively_duplicated() {
        let data = dataset(800, 16);
        let plan = TaskFaultPlan::seeded(8).delay_task(TaskPhase::Map, 0, 400, 1);
        let result = Job::parallel(4)
            .tasks(8)
            .fault_plan(plan)
            .speculation(SpeculationConfig {
                quantile: 0.5,
                multiplier: 2.0,
                min_observations: 2,
                min_elapsed: Duration::from_millis(20),
            })
            .run(&SumPerKey, data.clone());
        let clean = Job::serial().run(&SumPerKey, data);
        assert_eq!(
            result.output, clean.output,
            "first result wins, byte-identical"
        );
        assert!(result.failed_tasks.is_empty());
        assert!(
            result.stats.coverage.speculative_attempts >= 1,
            "the 400 ms straggler must attract a backup task"
        );
        assert!(result.stats.coverage.is_complete());
    }
}

//! Collectors through which Map and Reduce phases emit records.
//!
//! These mirror the `MapCollector.emitMap` / `ReduceCollector.emitReduce`
//! methods of the generated framework in the paper's Figure 10.

/// Receives intermediate `(key, value)` records from a Map invocation.
#[derive(Debug)]
pub struct MapCollector<K, V> {
    items: Vec<(K, V)>,
}

impl<K, V> MapCollector<K, V> {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        MapCollector { items: Vec::new() }
    }

    /// Emits one intermediate record (the paper's `emitMap`).
    pub fn emit_map(&mut self, key: K, value: V) {
        self.items.push((key, value));
    }

    /// Number of records emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Consumes the collector, yielding the emitted records in order.
    #[must_use]
    pub fn into_items(self) -> Vec<(K, V)> {
        self.items
    }
}

impl<K, V> Default for MapCollector<K, V> {
    fn default() -> Self {
        MapCollector::new()
    }
}

/// Receives final `(key, value)` records from a Reduce invocation.
#[derive(Debug)]
pub struct ReduceCollector<K, V> {
    items: Vec<(K, V)>,
}

impl<K, V> ReduceCollector<K, V> {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        ReduceCollector { items: Vec::new() }
    }

    /// Emits one final record (the paper's `emitReduce`).
    pub fn emit_reduce(&mut self, key: K, value: V) {
        self.items.push((key, value));
    }

    /// Number of records emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Consumes the collector, yielding the emitted records in order.
    #[must_use]
    pub fn into_items(self) -> Vec<(K, V)> {
        self.items
    }
}

impl<K, V> Default for ReduceCollector<K, V> {
    fn default() -> Self {
        ReduceCollector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collector_preserves_emission_order() {
        let mut c = MapCollector::new();
        assert!(c.is_empty());
        c.emit_map("b", 2);
        c.emit_map("a", 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.into_items(), vec![("b", 2), ("a", 1)]);
    }

    #[test]
    fn reduce_collector_preserves_emission_order() {
        let mut c = ReduceCollector::default();
        c.emit_reduce(1, "x");
        c.emit_reduce(2, "y");
        assert!(!c.is_empty());
        assert_eq!(c.into_items(), vec![(1, "x"), (2, "y")]);
    }
}

//! Seeded task-level fault injection for the MapReduce executors.
//!
//! The original MapReduce design (Dean & Ghemawat, OSDI'04) assumes that
//! *task* failure is the common case at scale: a map or reduce task can
//! panic, stall, or lose its worker, and the framework — not the
//! application — re-executes it. This module supplies the deterministic
//! fault side of that story for experiments and acceptance tests:
//!
//! - [`TaskFaultPlan`] — a seeded plan of per-attempt faults
//!   ([`TaskFault::Panic`], [`TaskFault::WorkerLost`],
//!   [`TaskFault::Delay`]), either *targeted* at an exact task for its
//!   first N attempts or sampled probabilistically;
//! - determinism by construction: the fate of an attempt is a **pure
//!   function** of `(seed, phase, task, attempt)` — a split-mix hash, not
//!   a shared RNG — so the injected fault sequence is byte-identical no
//!   matter how worker threads interleave, and identical between the
//!   serial and parallel executors at the same task granularity.
//!
//! The recovery half (bounded retries, speculation, coverage accounting)
//! lives in the executor; see [`Job`](crate::Job).

use std::time::Duration;

/// Which executor phase a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskPhase {
    /// A map task (one contiguous input chunk).
    Map,
    /// A reduce task (one contiguous run of shuffled groups).
    Reduce,
}

impl std::fmt::Display for TaskPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskPhase::Map => write!(f, "map"),
            TaskPhase::Reduce => write!(f, "reduce"),
        }
    }
}

/// What an injected fault does to one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFault {
    /// The attempt panics mid-task (exercises the executor's
    /// `catch_unwind` isolation; the panic is real, not simulated).
    Panic,
    /// The worker executing the attempt is lost: the attempt produces no
    /// result and no panic — it simply never reports back.
    WorkerLost,
    /// The attempt stalls for this long before doing its work, turning
    /// the task into a straggler (speculation bait).
    Delay {
        /// Extra latency injected before the attempt runs.
        ms: u64,
    },
}

impl std::fmt::Display for TaskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskFault::Panic => write!(f, "panic"),
            TaskFault::WorkerLost => write!(f, "lost worker"),
            TaskFault::Delay { ms } => write!(f, "delay +{ms} ms"),
        }
    }
}

/// A fault targeted at one exact task: its first `attempts` attempts
/// suffer `fault`, later attempts run clean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetedTaskFault {
    /// The phase of the targeted task.
    pub phase: TaskPhase,
    /// The task index within the phase (0-based).
    pub task: usize,
    /// The fault injected into each targeted attempt.
    pub fault: TaskFault,
    /// How many attempts (1-based, from the first) are faulted.
    pub attempts: u32,
}

/// A seeded plan of task-level faults, consulted once per task attempt.
///
/// Probabilities apply independently per attempt, so a probabilistically
/// faulted task heals itself under retry with probability
/// `1 - p^(retries + 1)`. Targeted faults take precedence over sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFaultPlan {
    /// Seed of the per-attempt hash (independent of any other RNG).
    pub seed: u64,
    /// Probability in `[0, 1]` that an attempt panics.
    pub panic_probability: f64,
    /// Probability in `[0, 1]` that an attempt's worker is lost.
    pub lost_probability: f64,
    /// Probability in `[0, 1]` that an attempt is delayed by
    /// [`TaskFaultPlan::delay_ms`].
    pub delay_probability: f64,
    /// Stall applied to delayed attempts.
    pub delay_ms: u64,
    /// Exact-task faults, checked before any sampling.
    pub targeted: Vec<TargetedTaskFault>,
}

impl Default for TaskFaultPlan {
    fn default() -> Self {
        TaskFaultPlan {
            seed: 0,
            panic_probability: 0.0,
            lost_probability: 0.0,
            delay_probability: 0.0,
            delay_ms: 0,
            targeted: Vec::new(),
        }
    }
}

impl TaskFaultPlan {
    /// A plan with no faults and the given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        TaskFaultPlan {
            seed,
            ..TaskFaultPlan::default()
        }
    }

    /// Sets the per-attempt panic probability.
    #[must_use]
    pub fn panic_tasks(mut self, probability: f64) -> Self {
        self.panic_probability = probability;
        self
    }

    /// Sets the per-attempt lost-worker probability.
    #[must_use]
    pub fn lose_workers(mut self, probability: f64) -> Self {
        self.lost_probability = probability;
        self
    }

    /// Delays each attempt by `delay_ms` with the given probability.
    #[must_use]
    pub fn delay_tasks(mut self, probability: f64, delay_ms: u64) -> Self {
        self.delay_probability = probability;
        self.delay_ms = delay_ms;
        self
    }

    /// Panics the first `attempts` attempts of one exact task.
    #[must_use]
    pub fn panic_task(self, phase: TaskPhase, task: usize, attempts: u32) -> Self {
        self.target(phase, task, TaskFault::Panic, attempts)
    }

    /// Loses the worker of the first `attempts` attempts of one task.
    #[must_use]
    pub fn lose_task(self, phase: TaskPhase, task: usize, attempts: u32) -> Self {
        self.target(phase, task, TaskFault::WorkerLost, attempts)
    }

    /// Delays the first `attempts` attempts of one task by `ms`.
    #[must_use]
    pub fn delay_task(self, phase: TaskPhase, task: usize, ms: u64, attempts: u32) -> Self {
        self.target(phase, task, TaskFault::Delay { ms }, attempts)
    }

    fn target(mut self, phase: TaskPhase, task: usize, fault: TaskFault, attempts: u32) -> Self {
        self.targeted.push(TargetedTaskFault {
            phase,
            task,
            fault,
            attempts,
        });
        self
    }

    /// Whether the plan can inject anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targeted.is_empty()
            && self.panic_probability == 0.0
            && self.lost_probability == 0.0
            && self.delay_probability == 0.0
    }

    /// Validates all probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn validate(&self) {
        for (name, p) in [
            ("panic", self.panic_probability),
            ("lost", self.lost_probability),
            ("delay", self.delay_probability),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} probability {p} outside [0, 1]"
            );
        }
    }

    /// The fate of one attempt — a pure function of
    /// `(seed, phase, task, attempt)` (`attempt` is 1-based), so the
    /// injected sequence is independent of thread interleaving.
    #[must_use]
    pub fn fate(&self, phase: TaskPhase, task: usize, attempt: u32) -> Option<TaskFault> {
        for t in &self.targeted {
            if t.phase == phase && t.task == task && attempt <= t.attempts {
                return Some(t.fault);
            }
        }
        let base = self
            .seed
            .wrapping_add(match phase {
                TaskPhase::Map => 0x4d41_5054,
                TaskPhase::Reduce => 0x5245_4455,
            })
            .wrapping_add((task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        if self.panic_probability > 0.0 && unit(base, 1) < self.panic_probability {
            return Some(TaskFault::Panic);
        }
        if self.lost_probability > 0.0 && unit(base, 2) < self.lost_probability {
            return Some(TaskFault::WorkerLost);
        }
        if self.delay_probability > 0.0 && unit(base, 3) < self.delay_probability {
            return Some(TaskFault::Delay { ms: self.delay_ms });
        }
        None
    }
}

/// SplitMix64 finalizer: a well-mixed `[0, 1)` draw from `(state, stream)`.
fn unit(state: u64, stream: u64) -> f64 {
    let mut z = state.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Why a task permanently failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFailure {
    /// Every attempt panicked; the message is from the last panic payload.
    Panicked {
        /// The panic message of the final attempt (`<opaque panic
        /// payload>` for non-string payloads).
        message: String,
    },
    /// Every attempt's worker was lost before reporting a result.
    WorkerLost,
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskFailure::Panicked { message } => write!(f, "panicked: {message}"),
            TaskFailure::WorkerLost => write!(f, "worker lost"),
        }
    }
}

/// A task that exhausted its retry budget: the structured record the
/// executor returns instead of poisoning the orchestrator with a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// The phase of the failed task.
    pub phase: TaskPhase,
    /// The task index within the phase (0-based).
    pub task: usize,
    /// Total attempts made (initial execution + retries).
    pub attempts: u32,
    /// Why the final attempt failed.
    pub failure: TaskFailure,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} task {} failed after {} attempt{}: {}",
            self.phase,
            self.task,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.failure
        )
    }
}

impl std::error::Error for TaskError {}

/// A job that could not produce a complete result and was not allowed to
/// return a partial one (see [`Job::allow_partial`](crate::Job::allow_partial)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Every task that exhausted its retry budget.
    pub failed: Vec<TaskError>,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MapReduce job failed ({} task", self.failed.len())?;
        if self.failed.len() != 1 {
            write!(f, "s")?;
        }
        write!(f, "): ")?;
        for (i, task) in self.failed.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{task}")?;
        }
        Ok(())
    }
}

impl std::error::Error for JobError {}

/// When the executor launches a speculative duplicate of a straggling
/// task (Dean & Ghemawat §3.6: "backup tasks").
///
/// A task is a straggler once its oldest live attempt has run longer
/// than `multiplier` times the `quantile` of completed task durations in
/// the same phase — and at least `min_observations` tasks have completed
/// (no baseline, no speculation) and `min_elapsed` wall time has passed
/// (never speculate near-instant tasks). The duplicate races the
/// original; the first result wins and the loser is discarded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// Latency quantile of completed tasks used as the baseline, in
    /// `(0, 1]` (e.g. `0.75` = the 75th percentile).
    pub quantile: f64,
    /// How many times the baseline an attempt must exceed to be
    /// considered straggling.
    pub multiplier: f64,
    /// Completed tasks required before any speculation.
    pub min_observations: usize,
    /// Minimum elapsed time of the straggling attempt.
    pub min_elapsed: Duration,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            quantile: 0.75,
            multiplier: 2.0,
            min_observations: 3,
            min_elapsed: Duration::from_millis(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let plan = TaskFaultPlan::seeded(9);
        assert!(plan.is_empty());
        for task in 0..100 {
            for attempt in 1..4 {
                assert_eq!(plan.fate(TaskPhase::Map, task, attempt), None);
                assert_eq!(plan.fate(TaskPhase::Reduce, task, attempt), None);
            }
        }
    }

    #[test]
    fn fate_is_a_pure_function_of_coordinates() {
        let plan = TaskFaultPlan::seeded(42)
            .panic_tasks(0.3)
            .lose_workers(0.1)
            .delay_tasks(0.2, 50);
        let other = plan.clone();
        for task in 0..200 {
            for attempt in 1..5 {
                assert_eq!(
                    plan.fate(TaskPhase::Map, task, attempt),
                    other.fate(TaskPhase::Map, task, attempt)
                );
            }
        }
    }

    /// The property the sharded delivery pipeline leans on: because a
    /// fate is a pure hash with no RNG stream, it is identical no matter
    /// which thread asks, in what order, or how tasks are partitioned
    /// across shards — unlike message fates, which consume a sequential
    /// RNG and must therefore stay on the coordinator.
    #[test]
    fn fate_is_invariant_under_query_order_and_sharding() {
        let plan = std::sync::Arc::new(
            TaskFaultPlan::seeded(17)
                .panic_tasks(0.3)
                .lose_workers(0.15)
                .delay_tasks(0.2, 40),
        );
        let serial: Vec<_> = (0..128).map(|t| plan.fate(TaskPhase::Map, t, 1)).collect();
        // Reverse query order on the same plan instance.
        let reversed: Vec<_> = (0..128)
            .rev()
            .map(|t| plan.fate(TaskPhase::Map, t, 1))
            .collect();
        assert!(serial.iter().eq(reversed.iter().rev()));
        // Shard-partitioned concurrent queries: each worker sees exactly
        // the serial fates for its stripe.
        let handles: Vec<_> = (0..4usize)
            .map(|shard| {
                let plan = std::sync::Arc::clone(&plan);
                std::thread::spawn(move || {
                    (0..128)
                        .filter(|t| t % 4 == shard)
                        .map(|t| (t, plan.fate(TaskPhase::Map, t, 1)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (task, fate) in handle.join().unwrap() {
                assert_eq!(fate, serial[task], "task {task} fate diverged");
            }
        }
    }

    #[test]
    fn probabilistic_rates_roughly_match() {
        let plan = TaskFaultPlan::seeded(7).panic_tasks(0.25);
        let panics = (0..10_000)
            .filter(|task| plan.fate(TaskPhase::Map, *task, 1) == Some(TaskFault::Panic))
            .count();
        let rate = panics as f64 / 10_000.0;
        assert!((0.22..0.28).contains(&rate), "panic rate {rate}");
    }

    #[test]
    fn phases_and_attempts_sample_independently() {
        let plan = TaskFaultPlan::seeded(1).panic_tasks(0.5);
        let map: Vec<bool> = (0..64)
            .map(|t| plan.fate(TaskPhase::Map, t, 1).is_some())
            .collect();
        let reduce: Vec<bool> = (0..64)
            .map(|t| plan.fate(TaskPhase::Reduce, t, 1).is_some())
            .collect();
        let second: Vec<bool> = (0..64)
            .map(|t| plan.fate(TaskPhase::Map, t, 2).is_some())
            .collect();
        assert_ne!(map, reduce, "phase feeds the hash");
        assert_ne!(map, second, "attempt feeds the hash");
    }

    #[test]
    fn targeted_fault_hits_exact_attempts_then_clears() {
        let plan = TaskFaultPlan::seeded(3).panic_task(TaskPhase::Map, 2, 2);
        assert_eq!(plan.fate(TaskPhase::Map, 2, 1), Some(TaskFault::Panic));
        assert_eq!(plan.fate(TaskPhase::Map, 2, 2), Some(TaskFault::Panic));
        assert_eq!(plan.fate(TaskPhase::Map, 2, 3), None);
        assert_eq!(plan.fate(TaskPhase::Map, 1, 1), None);
        assert_eq!(plan.fate(TaskPhase::Reduce, 2, 1), None);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_rejected() {
        TaskFaultPlan::seeded(0).panic_tasks(1.5).validate();
    }

    #[test]
    fn display_forms_are_readable() {
        let err = TaskError {
            phase: TaskPhase::Map,
            task: 3,
            attempts: 3,
            failure: TaskFailure::Panicked {
                message: "boom".into(),
            },
        };
        assert_eq!(
            err.to_string(),
            "map task 3 failed after 3 attempts: panicked: boom"
        );
        let job = JobError {
            failed: vec![
                err,
                TaskError {
                    phase: TaskPhase::Reduce,
                    task: 0,
                    attempts: 1,
                    failure: TaskFailure::WorkerLost,
                },
            ],
        };
        let text = job.to_string();
        assert!(text.contains("2 tasks"), "{text}");
        assert!(
            text.contains("reduce task 0 failed after 1 attempt"),
            "{text}"
        );
        assert_eq!(TaskFault::Delay { ms: 40 }.to_string(), "delay +40 ms");
        assert_eq!(TaskFault::WorkerLost.to_string(), "lost worker");
    }
}

//! Per-execution statistics.

use std::time::Duration;

/// Record counts and phase timings of one MapReduce execution.
///
/// Timings use the monotonic wall clock of the executing machine; record
/// counts are exact and deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Input records fed to the Map phase.
    pub map_input_records: u64,
    /// Intermediate records emitted by the Map phase (after combining,
    /// when a combiner is configured).
    pub map_output_records: u64,
    /// Distinct intermediate keys after the shuffle.
    pub groups: u64,
    /// Final records emitted by the Reduce phase.
    pub reduce_output_records: u64,
    /// Worker threads used (1 for the serial executor).
    pub workers: usize,
    /// Wall-clock time of the Map phase (including combining).
    pub map_time: Duration,
    /// Wall-clock time of the shuffle (grouping by intermediate key).
    pub shuffle_time: Duration,
    /// Wall-clock time of the Reduce phase.
    pub reduce_time: Duration,
}

impl ExecutionStats {
    /// Total wall-clock time across all phases.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.map_time + self.shuffle_time + self.reduce_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_sums_phases() {
        let stats = ExecutionStats {
            map_time: Duration::from_millis(5),
            shuffle_time: Duration::from_millis(3),
            reduce_time: Duration::from_millis(2),
            ..ExecutionStats::default()
        };
        assert_eq!(stats.total_time(), Duration::from_millis(10));
    }
}

//! Per-execution statistics and coverage accounting.

use std::time::Duration;

/// Record counts and phase timings of one MapReduce execution.
///
/// Timings use the monotonic wall clock of the executing machine; record
/// counts are exact and deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Input records fed to the Map phase.
    pub map_input_records: u64,
    /// Intermediate records emitted by the Map phase (after combining,
    /// when a combiner is configured).
    pub map_output_records: u64,
    /// Distinct intermediate keys after the shuffle.
    pub groups: u64,
    /// Final records emitted by the Reduce phase.
    pub reduce_output_records: u64,
    /// Worker threads used (1 for the serial executor; for the parallel
    /// executor, the largest thread pool either phase actually spawned —
    /// capped at the phase's task count, so small jobs never pay for
    /// idle threads).
    pub workers: usize,
    /// Wall-clock time of the Map phase (including combining).
    pub map_time: Duration,
    /// Wall-clock time of the shuffle (grouping by intermediate key).
    pub shuffle_time: Duration,
    /// Wall-clock time of the Reduce phase.
    pub reduce_time: Duration,
    /// Wall-clock time burnt on attempts whose result was discarded:
    /// failed attempts that were retried or abandoned, and superseded
    /// speculative duplicates. Zero on a fault-free run.
    pub recovery_time: Duration,
    /// Task-level fault-tolerance accounting for this execution.
    pub coverage: CoverageReport,
}

impl ExecutionStats {
    /// Total wall-clock time across all phases.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.map_time + self.shuffle_time + self.reduce_time
    }
}

/// Coverage accounting for one execution: how many tasks ran, were
/// retried, speculated, or permanently failed, and what fraction of the
/// input the surviving tasks covered.
///
/// A fault-free run reports every `*_failed`/`*_lost` field as zero and
/// [`CoverageReport::fraction_covered`] as exactly `1.0`. All counts are
/// deterministic for a fixed seed and task layout **except**
/// `speculative_attempts`, which depends on real wall-clock straggling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// Map tasks in the job (contiguous input chunks).
    pub map_tasks: u32,
    /// Reduce tasks in the job (contiguous key-range partitions).
    pub reduce_tasks: u32,
    /// Failed attempts that were re-queued within the retry budget.
    pub task_retries: u32,
    /// Speculative duplicate attempts launched for stragglers.
    pub speculative_attempts: u32,
    /// Attempts into which the fault plan injected a fault.
    pub injected_faults: u32,
    /// Map tasks that exhausted their retry budget.
    pub map_tasks_failed: u32,
    /// Reduce tasks that exhausted their retry budget.
    pub reduce_tasks_failed: u32,
    /// Input records assigned to map tasks (all of them).
    pub map_records_total: u64,
    /// Input records assigned to permanently failed map tasks.
    pub map_records_lost: u64,
    /// Grouped intermediate values entering the Reduce phase (counted
    /// before combining, so combiners do not distort coverage).
    pub group_values_total: u64,
    /// Grouped intermediate values assigned to permanently failed reduce
    /// tasks (counted before combining).
    pub group_values_lost: u64,
}

impl CoverageReport {
    /// Whether every task ultimately succeeded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.map_tasks_failed == 0 && self.reduce_tasks_failed == 0
    }

    /// Tasks that exhausted their retry budget, across both phases.
    #[must_use]
    pub fn tasks_failed(&self) -> u32 {
        self.map_tasks_failed + self.reduce_tasks_failed
    }

    /// Fraction of the input the final output covers, in `[0, 1]`.
    ///
    /// The product of the surviving map fraction (input records whose map
    /// task succeeded) and the surviving reduce fraction (grouped values
    /// whose reduce task succeeded); an empty phase counts as fully
    /// covered. `1.0` exactly when [`CoverageReport::is_complete`].
    #[must_use]
    pub fn fraction_covered(&self) -> f64 {
        fn surviving(total: u64, lost: u64) -> f64 {
            if total == 0 {
                1.0
            } else {
                (total - total.min(lost)) as f64 / total as f64
            }
        }
        surviving(self.map_records_total, self.map_records_lost)
            * surviving(self.group_values_total, self.group_values_lost)
    }

    /// [`CoverageReport::fraction_covered`] as a whole percentage,
    /// rounded down so a lossy run never rounds up to 100.
    #[must_use]
    pub fn percent_covered(&self) -> u32 {
        (self.fraction_covered() * 100.0).floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_sums_phases() {
        let stats = ExecutionStats {
            map_time: Duration::from_millis(5),
            shuffle_time: Duration::from_millis(3),
            reduce_time: Duration::from_millis(2),
            ..ExecutionStats::default()
        };
        assert_eq!(stats.total_time(), Duration::from_millis(10));
    }

    #[test]
    fn default_coverage_is_complete() {
        let coverage = CoverageReport::default();
        assert!(coverage.is_complete());
        assert_eq!(coverage.fraction_covered(), 1.0);
        assert_eq!(coverage.percent_covered(), 100);
    }

    #[test]
    fn coverage_fraction_multiplies_phase_survival() {
        let coverage = CoverageReport {
            map_tasks: 4,
            reduce_tasks: 2,
            map_tasks_failed: 1,
            reduce_tasks_failed: 1,
            map_records_total: 100,
            map_records_lost: 25,
            group_values_total: 60,
            group_values_lost: 30,
            ..CoverageReport::default()
        };
        assert!(!coverage.is_complete());
        assert_eq!(coverage.tasks_failed(), 2);
        let expected = 0.75 * 0.5;
        assert!((coverage.fraction_covered() - expected).abs() < 1e-12);
        assert_eq!(coverage.percent_covered(), 37);
    }

    #[test]
    fn percent_rounds_down() {
        let coverage = CoverageReport {
            map_records_total: 3,
            map_records_lost: 1,
            ..CoverageReport::default()
        };
        // 2/3 = 66.66 % floors to 66, never 67.
        assert_eq!(coverage.percent_covered(), 66);
    }
}

//! # diaspec-mapreduce — design-level MapReduce for sensor orchestration
//!
//! Paper §IV.2 introduces MapReduce \[Dean & Ghemawat\] *at the design
//! level*: the `grouped by` construct partitions mass sensor data, and the
//! optional `with map as X reduce as Y` clause declares the types of a Map
//! and a Reduce phase. The generated framework then "parallelizes the Map
//! and Reduce phases" while the application only implements the
//! `MapReduce` interface of the paper's Figure 10.
//!
//! This crate is that execution substrate, reproduced in Rust:
//!
//! - [`MapReduce`] — the six-type-parameter interface of Figure 10
//!   (`MapReduce<K1, V1, K2, V2, K3, V3>`), with [`MapCollector`] /
//!   [`ReduceCollector`] mirroring `emitMap` / `emitReduce`;
//! - [`Job`] — an executor with a **serial** baseline and a **parallel**
//!   mode (worker threads via crossbeam scoped threads) so experiments can
//!   compare the two (experiment E10);
//! - optional [`Combiner`] — per-worker local pre-aggregation, the classic
//!   MapReduce optimization, used by the ablation benchmarks;
//! - [`ExecutionStats`] — per-phase record counts and wall-clock timings,
//!   including a [`CoverageReport`] of task-level fault tolerance;
//! - task fault tolerance in the spirit of the original MapReduce paper:
//!   panic isolation via `catch_unwind`, bounded per-task retries,
//!   speculative straggler re-execution ([`SpeculationConfig`]), degraded
//!   partial results, and a seeded, deterministic [`TaskFaultPlan`] for
//!   injecting panics, stalls, and lost workers into task attempts.
//!
//! ## Example: parking availability (paper Figure 10)
//!
//! ```
//! use diaspec_mapreduce::{Job, MapCollector, MapReduce, ReduceCollector};
//!
//! /// Counts free parking spaces per lot from raw presence readings.
//! struct Availability;
//!
//! impl MapReduce<String, bool, String, bool, String, i64> for Availability {
//!     fn map(&self, lot: &String, presence: &bool, out: &mut MapCollector<String, bool>) {
//!         if !presence {
//!             out.emit_map(lot.clone(), true); // a free space
//!         }
//!     }
//!     fn reduce(&self, lot: &String, frees: &[bool], out: &mut ReduceCollector<String, i64>) {
//!         out.emit_reduce(lot.clone(), frees.len() as i64);
//!     }
//! }
//!
//! let readings = vec![
//!     ("A22".to_owned(), true),
//!     ("A22".to_owned(), false),
//!     ("B16".to_owned(), false),
//!     ("B16".to_owned(), false),
//! ];
//! let result = Job::serial().run_to_map(&Availability, readings);
//! assert_eq!(result.output[&"A22".to_owned()], 1);
//! assert_eq!(result.output[&"B16".to_owned()], 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod collector;
mod executor;
pub mod fault;
mod stats;

pub use collector::{MapCollector, ReduceCollector};
pub use executor::{Executor, Job, MapReduceResult, MappedResult};
pub use fault::{
    JobError, SpeculationConfig, TaskError, TaskFailure, TaskFault, TaskFaultPlan, TaskPhase,
};
pub use stats::{CoverageReport, ExecutionStats};

/// The application-facing MapReduce interface, mirroring the generated
/// `MapReduce<K1, V1, K2, V2, K3, V3>` interface of the paper's Figure 10.
///
/// - `(K1, V1)`: input records — for sensor orchestration, the grouping
///   attribute value and one raw reading;
/// - `(K2, V2)`: intermediate records emitted by [`map`](Self::map),
///   grouped by `K2` by the framework;
/// - `(K3, V3)`: final records emitted by [`reduce`](Self::reduce).
///
/// Implementations must be [`Sync`] so the parallel executor can share
/// them across worker threads; they should therefore not carry mutable
/// per-record state (accumulate through the collectors instead).
pub trait MapReduce<K1, V1, K2, V2, K3, V3>: Sync {
    /// Processes one input record, emitting zero or more intermediate
    /// records through `collector`.
    fn map(&self, key: &K1, value: &V1, collector: &mut MapCollector<K2, V2>);

    /// Folds all intermediate values sharing `key` into zero or more final
    /// records.
    fn reduce(&self, key: &K2, values: &[V2], collector: &mut ReduceCollector<K3, V3>);
}

/// Optional per-worker local aggregation between Map and the shuffle.
///
/// When the reduction is associative and commutative, a combiner shrinks
/// the intermediate data each worker ships to the shuffle, trading a little
/// CPU for a lot of shuffle volume — the classic MapReduce optimization.
/// Supply one via [`Job::combiner`].
pub trait Combiner<K2, V2>: Sync {
    /// Collapses the intermediate `values` for `key` into a smaller set.
    fn combine(&self, key: &K2, values: Vec<V2>) -> Vec<V2>;
}

/// A combiner defined by a plain function.
pub struct FnCombiner<F>(pub F);

impl<K2, V2, F> Combiner<K2, V2> for FnCombiner<F>
where
    F: Fn(&K2, Vec<V2>) -> Vec<V2> + Sync,
{
    fn combine(&self, key: &K2, values: Vec<V2>) -> Vec<V2> {
        (self.0)(key, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct WordCount;

    impl MapReduce<usize, String, String, u64, String, u64> for WordCount {
        fn map(&self, _line_no: &usize, line: &String, out: &mut MapCollector<String, u64>) {
            for word in line.split_whitespace() {
                out.emit_map(word.to_owned(), 1);
            }
        }

        fn reduce(&self, word: &String, counts: &[u64], out: &mut ReduceCollector<String, u64>) {
            out.emit_reduce(word.clone(), counts.iter().sum());
        }
    }

    fn corpus() -> Vec<(usize, String)> {
        vec![
            (0, "the quick brown fox".to_owned()),
            (1, "the lazy dog".to_owned()),
            (2, "the quick dog".to_owned()),
        ]
    }

    #[test]
    fn word_count_serial() {
        let result = Job::serial().run_to_map(&WordCount, corpus());
        assert_eq!(result.output[&"the".to_owned()], 3);
        assert_eq!(result.output[&"quick".to_owned()], 2);
        assert_eq!(result.output[&"dog".to_owned()], 2);
        assert_eq!(result.output[&"fox".to_owned()], 1);
        assert_eq!(result.stats.map_input_records, 3);
        assert_eq!(result.stats.map_output_records, 10);
        assert_eq!(result.stats.groups, 6);
    }

    #[test]
    fn word_count_parallel_matches_serial() {
        let serial = Job::serial().run_to_map(&WordCount, corpus());
        for workers in [1, 2, 4, 8] {
            let parallel = Job::parallel(workers).run_to_map(&WordCount, corpus());
            assert_eq!(serial.output, parallel.output, "workers = {workers}");
        }
    }

    #[test]
    fn combiner_preserves_result() {
        let without = Job::serial().run_to_map(&WordCount, corpus());
        let job = Job::parallel(4).combiner(FnCombiner(|_word: &String, counts: Vec<u64>| {
            vec![counts.iter().sum::<u64>()]
        }));
        let with = job.run_to_map(&WordCount, corpus());
        assert_eq!(without.output, with.output);
    }
}

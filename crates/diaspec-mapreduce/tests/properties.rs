//! Property-based tests: the parallel executor is observationally
//! identical to the serial baseline for arbitrary datasets, worker
//! counts, and (for associative folds) with combiners.

use diaspec_mapreduce::{FnCombiner, Job, MapCollector, MapReduce, ReduceCollector};
use proptest::prelude::*;

/// Sums values per key.
struct Sum;

impl MapReduce<u16, i64, u16, i64, u16, i64> for Sum {
    fn map(&self, key: &u16, value: &i64, out: &mut MapCollector<u16, i64>) {
        out.emit_map(*key, *value);
    }

    fn reduce(&self, key: &u16, values: &[i64], out: &mut ReduceCollector<u16, i64>) {
        out.emit_reduce(*key, values.iter().sum());
    }
}

/// Concatenates stringified values per key — order-sensitive, so it
/// detects any reordering introduced by parallel execution.
struct Concat;

impl MapReduce<u16, i64, u16, String, u16, String> for Concat {
    fn map(&self, key: &u16, value: &i64, out: &mut MapCollector<u16, String>) {
        out.emit_map(*key, value.to_string());
    }

    fn reduce(&self, key: &u16, values: &[String], out: &mut ReduceCollector<u16, String>) {
        out.emit_reduce(*key, values.join(","));
    }
}

/// A filtering, fan-out map: emits 0..3 records per input.
struct FanOut;

impl MapReduce<u16, i64, u16, i64, u16, i64> for FanOut {
    fn map(&self, key: &u16, value: &i64, out: &mut MapCollector<u16, i64>) {
        for offset in 0..(value.unsigned_abs() % 3) {
            out.emit_map(key.wrapping_add(offset as u16), *value);
        }
    }

    fn reduce(&self, key: &u16, values: &[i64], out: &mut ReduceCollector<u16, i64>) {
        out.emit_reduce(*key, values.len() as i64);
    }
}

fn dataset() -> impl Strategy<Value = Vec<(u16, i64)>> {
    proptest::collection::vec((0u16..32, -1000i64..1000), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parallel_equals_serial_for_sums(data in dataset(), workers in 1usize..9) {
        let serial = Job::serial().run(&Sum, data.clone());
        let parallel = Job::parallel(workers).run(&Sum, data);
        prop_assert_eq!(serial.output, parallel.output);
        prop_assert_eq!(serial.stats.groups, parallel.stats.groups);
        prop_assert_eq!(
            serial.stats.map_output_records,
            parallel.stats.map_output_records
        );
    }

    #[test]
    fn parallel_preserves_per_key_order(data in dataset(), workers in 1usize..9) {
        let serial = Job::serial().run(&Concat, data.clone());
        let parallel = Job::parallel(workers).run(&Concat, data);
        prop_assert_eq!(serial.output, parallel.output);
    }

    #[test]
    fn parallel_equals_serial_with_fan_out(data in dataset(), workers in 1usize..9) {
        let serial = Job::serial().run(&FanOut, data.clone());
        let parallel = Job::parallel(workers).run(&FanOut, data);
        prop_assert_eq!(serial.output, parallel.output);
    }

    #[test]
    fn sum_combiner_is_semantics_preserving(data in dataset(), workers in 1usize..9) {
        let plain = Job::serial().run(&Sum, data.clone());
        let combined = Job::parallel(workers)
            .combiner(FnCombiner(|_k: &u16, vs: Vec<i64>| {
                vec![vs.iter().sum::<i64>()]
            }))
            .run(&Sum, data);
        prop_assert_eq!(plain.output, combined.output);
    }

    #[test]
    fn output_totals_are_conserved(data in dataset()) {
        let result = Job::serial().run(&Sum, data.clone());
        let expected: i64 = data.iter().map(|(_, v)| *v).sum();
        let got: i64 = result.output.iter().map(|(_, v)| *v).sum();
        prop_assert_eq!(expected, got, "group sums conserve the grand total");
        prop_assert_eq!(
            result.stats.map_input_records as usize,
            data.len()
        );
    }
}

//! Property-based tests: the parallel executor is observationally
//! identical to the serial baseline for arbitrary datasets, worker
//! counts, and (for associative folds) with combiners.

use diaspec_mapreduce::{FnCombiner, Job, MapCollector, MapReduce, ReduceCollector};
use proptest::prelude::*;

/// Sums values per key.
struct Sum;

impl MapReduce<u16, i64, u16, i64, u16, i64> for Sum {
    fn map(&self, key: &u16, value: &i64, out: &mut MapCollector<u16, i64>) {
        out.emit_map(*key, *value);
    }

    fn reduce(&self, key: &u16, values: &[i64], out: &mut ReduceCollector<u16, i64>) {
        out.emit_reduce(*key, values.iter().sum());
    }
}

/// Concatenates stringified values per key — order-sensitive, so it
/// detects any reordering introduced by parallel execution.
struct Concat;

impl MapReduce<u16, i64, u16, String, u16, String> for Concat {
    fn map(&self, key: &u16, value: &i64, out: &mut MapCollector<u16, String>) {
        out.emit_map(*key, value.to_string());
    }

    fn reduce(&self, key: &u16, values: &[String], out: &mut ReduceCollector<u16, String>) {
        out.emit_reduce(*key, values.join(","));
    }
}

/// A filtering, fan-out map: emits 0..3 records per input.
struct FanOut;

impl MapReduce<u16, i64, u16, i64, u16, i64> for FanOut {
    fn map(&self, key: &u16, value: &i64, out: &mut MapCollector<u16, i64>) {
        for offset in 0..(value.unsigned_abs() % 3) {
            out.emit_map(key.wrapping_add(offset as u16), *value);
        }
    }

    fn reduce(&self, key: &u16, values: &[i64], out: &mut ReduceCollector<u16, i64>) {
        out.emit_reduce(*key, values.len() as i64);
    }
}

fn dataset() -> impl Strategy<Value = Vec<(u16, i64)>> {
    proptest::collection::vec((0u16..32, -1000i64..1000), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parallel_equals_serial_for_sums(data in dataset(), workers in 1usize..9) {
        let serial = Job::serial().run(&Sum, data.clone());
        let parallel = Job::parallel(workers).run(&Sum, data);
        prop_assert_eq!(serial.output, parallel.output);
        prop_assert_eq!(serial.stats.groups, parallel.stats.groups);
        prop_assert_eq!(
            serial.stats.map_output_records,
            parallel.stats.map_output_records
        );
    }

    #[test]
    fn parallel_preserves_per_key_order(data in dataset(), workers in 1usize..9) {
        let serial = Job::serial().run(&Concat, data.clone());
        let parallel = Job::parallel(workers).run(&Concat, data);
        prop_assert_eq!(serial.output, parallel.output);
    }

    #[test]
    fn parallel_equals_serial_with_fan_out(data in dataset(), workers in 1usize..9) {
        let serial = Job::serial().run(&FanOut, data.clone());
        let parallel = Job::parallel(workers).run(&FanOut, data);
        prop_assert_eq!(serial.output, parallel.output);
    }

    #[test]
    fn sum_combiner_is_semantics_preserving(data in dataset(), workers in 1usize..9) {
        let plain = Job::serial().run(&Sum, data.clone());
        let combined = Job::parallel(workers)
            .combiner(FnCombiner(|_k: &u16, vs: Vec<i64>| {
                vec![vs.iter().sum::<i64>()]
            }))
            .run(&Sum, data);
        prop_assert_eq!(plain.output, combined.output);
    }

    #[test]
    fn output_totals_are_conserved(data in dataset()) {
        let result = Job::serial().run(&Sum, data.clone());
        let expected: i64 = data.iter().map(|(_, v)| *v).sum();
        let got: i64 = result.output.iter().map(|(_, v)| *v).sum();
        prop_assert_eq!(expected, got, "group sums conserve the grand total");
        prop_assert_eq!(
            result.stats.map_input_records as usize,
            data.len()
        );
    }
}

// ---------------------------------------------------------------------
// Fault-tolerance properties: injected task faults that stay within the
// retry budget are invisible in the output, and seeded fault plans are
// fully deterministic.
// ---------------------------------------------------------------------

use diaspec_mapreduce::{TaskFault, TaskFaultPlan, TaskPhase};

fn targeted_faults() -> impl Strategy<Value = Vec<(TaskPhase, usize, TaskFault, u32)>> {
    let phase = prop_oneof![Just(TaskPhase::Map), Just(TaskPhase::Reduce)];
    let fault = prop_oneof![Just(TaskFault::Panic), Just(TaskFault::WorkerLost)];
    // Attempts <= 2 with a retry budget of 2: every task ultimately
    // succeeds.
    proptest::collection::vec((phase, 0usize..16, fault, 1u32..3), 0..6)
}

fn plan_from(seed: u64, faults: &[(TaskPhase, usize, TaskFault, u32)]) -> TaskFaultPlan {
    let mut plan = TaskFaultPlan::seeded(seed);
    for (phase, task, fault, attempts) in faults {
        plan = match fault {
            TaskFault::Panic => plan.panic_task(*phase, *task, *attempts),
            TaskFault::WorkerLost => plan.lose_task(*phase, *task, *attempts),
            TaskFault::Delay { ms } => plan.delay_task(*phase, *task, *ms, *attempts),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fault_injected_parallel_is_byte_identical_when_all_tasks_heal(
        data in dataset(),
        workers in 2usize..9,
        seed in 0u64..1000,
        faults in targeted_faults(),
    ) {
        let serial = Job::serial().run(&Concat, data.clone());
        let injected = Job::parallel(workers)
            .fault_plan(plan_from(seed, &faults))
            .task_retries(2)
            .run(&Concat, data);
        // Every fault window (<= 2 attempts) fits in the retry budget, so
        // the job heals completely and the order-sensitive output is
        // byte-identical to the fault-free serial baseline.
        prop_assert_eq!(serial.output, injected.output);
        prop_assert!(injected.failed_tasks.is_empty());
        prop_assert!(injected.stats.coverage.is_complete());
        prop_assert_eq!(injected.stats.coverage.fraction_covered(), 1.0);
    }

    #[test]
    fn probabilistic_fault_runs_are_deterministic_per_seed(
        data in dataset(),
        workers in 2usize..9,
        seed in 0u64..1000,
    ) {
        let job = || Job::parallel(workers)
            .tasks(8)
            .fault_plan(TaskFaultPlan::seeded(seed).panic_tasks(0.3).lose_workers(0.2))
            .task_retries(1)
            .allow_partial(true)
            .run(&Sum, data.clone());
        let first = job();
        let second = job();
        prop_assert_eq!(first.output, second.output);
        prop_assert_eq!(first.failed_tasks, second.failed_tasks);
        prop_assert_eq!(first.stats.coverage, second.stats.coverage);
    }

    #[test]
    fn degraded_coverage_never_exceeds_complete(
        data in dataset(),
        seed in 0u64..1000,
    ) {
        let result = Job::parallel(4)
            .fault_plan(TaskFaultPlan::seeded(seed).panic_tasks(0.5))
            .allow_partial(true)
            .run(&Sum, data);
        let coverage = result.stats.coverage;
        let fraction = coverage.fraction_covered();
        prop_assert!((0.0..=1.0).contains(&fraction));
        prop_assert_eq!(coverage.is_complete(), fraction == 1.0);
        prop_assert_eq!(
            coverage.tasks_failed() as usize,
            result.failed_tasks.len()
        );
    }
}

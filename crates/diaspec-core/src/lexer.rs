//! Hand-written lexer for the DiaSpec design language.
//!
//! The lexer is total: it always produces a token stream ending in
//! [`TokenKind::Eof`], reporting invalid input as diagnostics while skipping
//! the offending bytes. This keeps the parser free to assume a well-formed
//! stream and lets a single run surface every lexical problem.
//!
//! Both `//` line comments and `/* ... */` block comments are supported.

use crate::diag::{Diagnostic, Diagnostics};
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Tokenizes `source`, returning the token stream and any diagnostics.
///
/// The returned stream always ends with an [`TokenKind::Eof`] token. Invalid
/// characters and unterminated literals are reported (codes `E00xx`) and
/// skipped.
///
/// # Examples
///
/// ```
/// use diaspec_core::lexer::lex;
/// use diaspec_core::token::{Keyword, TokenKind};
///
/// let (tokens, diags) = lex("device Clock { }");
/// assert!(diags.is_empty());
/// assert_eq!(tokens[0].kind, TokenKind::Kw(Keyword::Device));
/// assert_eq!(tokens[1].kind, TokenKind::Ident("Clock".into()));
/// assert_eq!(tokens.last().unwrap().kind, TokenKind::Eof);
/// ```
#[must_use]
pub fn lex(source: &str) -> (Vec<Token>, Diagnostics) {
    Lexer::new(source).run()
}

struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: Diagnostics,
}

impl<'src> Lexer<'src> {
    fn new(src: &'src str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            diags: Diagnostics::new(),
        }
    }

    fn run(mut self) -> (Vec<Token>, Diagnostics) {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' => self.comment_or_error(start),
                b'{' => self.punct(TokenKind::LBrace),
                b'}' => self.punct(TokenKind::RBrace),
                b'(' => self.punct(TokenKind::LParen),
                b')' => self.punct(TokenKind::RParen),
                b'[' => self.punct(TokenKind::LBracket),
                b']' => self.punct(TokenKind::RBracket),
                b'<' => self.punct(TokenKind::Lt),
                b'>' => self.punct(TokenKind::Gt),
                b';' => self.punct(TokenKind::Semi),
                b',' => self.punct(TokenKind::Comma),
                b'@' => self.punct(TokenKind::At),
                b'=' => self.punct(TokenKind::Eq),
                b'"' => self.string(start),
                b'0'..=b'9' => self.number(start),
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.word(start),
                _ => {
                    // Skip one full UTF-8 character, not one byte, so we do
                    // not split multi-byte characters in the error span.
                    let ch_len = self.src[self.pos..]
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
                    self.pos += ch_len;
                    let ch = &self.src[start..self.pos];
                    self.diags.push(Diagnostic::error(
                        "E0001",
                        format!("unexpected character `{ch}`"),
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
        let eof = Span::new(self.src.len(), self.src.len());
        self.tokens.push(Token::new(TokenKind::Eof, eof));
        (self.tokens, self.diags)
    }

    fn punct(&mut self, kind: TokenKind) {
        let span = Span::new(self.pos, self.pos + 1);
        self.pos += 1;
        self.tokens.push(Token::new(kind, span));
    }

    fn comment_or_error(&mut self, start: usize) {
        match self.bytes.get(self.pos + 1) {
            Some(b'/') => {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            }
            Some(b'*') => {
                self.pos += 2;
                loop {
                    if self.pos + 1 >= self.bytes.len() {
                        self.pos = self.bytes.len();
                        self.diags.push(Diagnostic::error(
                            "E0002",
                            "unterminated block comment",
                            Span::new(start, self.pos),
                        ));
                        break;
                    }
                    if self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/' {
                        self.pos += 2;
                        break;
                    }
                    self.pos += 1;
                }
            }
            _ => {
                self.pos += 1;
                self.diags.push(Diagnostic::error(
                    "E0003",
                    "stray `/` (expected `//` or `/*` comment)",
                    Span::new(start, self.pos),
                ));
            }
        }
    }

    fn string(&mut self, start: usize) {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None | Some(b'\n') => {
                    self.diags.push(Diagnostic::error(
                        "E0004",
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ));
                    break;
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    let esc_start = self.pos;
                    self.pos += 1;
                    // `\` is a single byte, so `pos` is on a char boundary.
                    match self.src[self.pos..].chars().next() {
                        Some(esc @ ('n' | 't' | '\\' | '"')) => {
                            value.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            self.pos += 1;
                        }
                        Some(other) => {
                            self.pos += other.len_utf8();
                            self.diags.push(Diagnostic::error(
                                "E0005",
                                format!("invalid escape sequence `{other}`"),
                                Span::new(esc_start, self.pos),
                            ));
                        }
                        None => {
                            self.diags.push(Diagnostic::error(
                                "E0005",
                                "invalid escape sequence at end of input",
                                Span::new(esc_start, self.pos),
                            ));
                        }
                    }
                }
                Some(_) => {
                    let ch = self.src[self.pos..].chars().next().expect("in-bounds char");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.tokens.push(Token::new(
            TokenKind::Str(value),
            Span::new(start, self.pos),
        ));
    }

    fn number(&mut self, start: usize) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start, self.pos);
        match text.parse::<u64>() {
            Ok(v) => self.tokens.push(Token::new(TokenKind::Int(v), span)),
            Err(_) => {
                self.diags.push(Diagnostic::error(
                    "E0006",
                    format!("integer literal `{text}` is too large"),
                    span,
                ));
                self.tokens.push(Token::new(TokenKind::Int(u64::MAX), span));
            }
        }
    }

    fn word(&mut self, start: usize) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start, self.pos);
        let kind = match Keyword::from_str(text) {
            Some(kw) => TokenKind::Kw(kw),
            None => TokenKind::Ident(text.to_owned()),
        };
        self.tokens.push(Token::new(kind, span));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (tokens, diags) = lex(src);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
        tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_device_declaration() {
        use TokenKind::*;
        assert_eq!(
            kinds("device Cooker { source consumption as Float; }"),
            vec![
                Kw(Keyword::Device),
                Ident("Cooker".into()),
                LBrace,
                Kw(Keyword::Source),
                Ident("consumption".into()),
                Kw(Keyword::As),
                Ident("Float".into()),
                Semi,
                RBrace,
                Eof,
            ]
        );
    }

    #[test]
    fn lexes_period_bracket_syntax() {
        use TokenKind::*;
        assert_eq!(
            kinds("<10 min>"),
            vec![Lt, Int(10), Ident("min".into()), Gt, Eof]
        );
    }

    #[test]
    fn lexes_array_and_params() {
        use TokenKind::*;
        assert_eq!(
            kinds("Availability[] (status as String)"),
            vec![
                Ident("Availability".into()),
                LBracket,
                RBracket,
                LParen,
                Ident("status".into()),
                Kw(Keyword::As),
                Ident("String".into()),
                RParen,
                Eof,
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let toks = kinds("// header\ndevice /* inline */ X {}\n/* multi\nline */");
        assert_eq!(toks.len(), 5); // device, X, {, }, EOF
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = kinds(r#""hello \"world\"\n""#);
        assert_eq!(toks[0], TokenKind::Str("hello \"world\"\n".into()));
    }

    #[test]
    fn annotations_lex_as_at_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("@error(policy = \"retry\", attempts = 3)"),
            vec![
                At,
                Ident("error".into()),
                LParen,
                Ident("policy".into()),
                Eq,
                Str("retry".into()),
                Comma,
                Ident("attempts".into()),
                Eq,
                Int(3),
                RParen,
                Eof,
            ]
        );
    }

    #[test]
    fn reports_unexpected_character_and_continues() {
        let (tokens, diags) = lex("device # X");
        assert_eq!(diags.error_count(), 1);
        assert_eq!(diags.iter().next().unwrap().code, "E0001");
        // Lexing continued past the bad byte.
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident("X".into())));
    }

    #[test]
    fn reports_unexpected_multibyte_character_without_splitting() {
        let (tokens, diags) = lex("dev\u{00e9}ice");
        assert_eq!(diags.error_count(), 1);
        assert!(tokens.iter().any(|t| matches!(t.kind, TokenKind::Ident(_))));
    }

    #[test]
    fn reports_unterminated_string() {
        let (_, diags) = lex("\"abc");
        assert_eq!(diags.iter().next().unwrap().code, "E0004");
    }

    #[test]
    fn reports_unterminated_block_comment() {
        let (_, diags) = lex("/* never ends");
        assert_eq!(diags.iter().next().unwrap().code, "E0002");
    }

    #[test]
    fn reports_stray_slash() {
        let (_, diags) = lex("a / b");
        assert_eq!(diags.iter().next().unwrap().code, "E0003");
    }

    #[test]
    fn reports_invalid_escape() {
        let (_, diags) = lex(r#""bad \q escape""#);
        assert_eq!(diags.iter().next().unwrap().code, "E0005");
    }

    #[test]
    fn reports_huge_integer() {
        let (_, diags) = lex("99999999999999999999999999");
        assert_eq!(diags.iter().next().unwrap().code, "E0006");
    }

    #[test]
    fn empty_input_yields_only_eof() {
        let (tokens, diags) = lex("");
        assert!(diags.is_empty());
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].kind, TokenKind::Eof);
    }

    #[test]
    fn spans_cover_exact_source_ranges() {
        let (tokens, _) = lex("device Clock");
        assert_eq!(tokens[0].span, Span::new(0, 6));
        assert_eq!(tokens[1].span, Span::new(7, 12));
    }

    #[test]
    fn keywords_are_case_sensitive() {
        let (tokens, _) = lex("Device DEVICE device");
        assert!(matches!(tokens[0].kind, TokenKind::Ident(_)));
        assert!(matches!(tokens[1].kind, TokenKind::Ident(_)));
        assert_eq!(tokens[2].kind, TokenKind::Kw(Keyword::Device));
    }
}

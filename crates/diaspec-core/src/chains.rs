//! Functional-chain analysis.
//!
//! Paper §II describes an application design as a set of *functional
//! chains* "from device sources to device actions" (Figure 3). This module
//! recovers those chains from a [`CheckedSpec`]: every path that starts at
//! a device source, flows through one or more contexts, reaches a
//! controller, and ends at a device action.
//!
//! Chains are used by documentation tooling, by tests that assert a design
//! is fully wired, and by the runtime to pre-compute routing tables.

use crate::model::{ActivationTrigger, CheckedSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One step of a functional chain.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChainStep {
    /// The originating device source.
    Source {
        /// Device name.
        device: String,
        /// Source name.
        source: String,
    },
    /// A context that processes the data.
    Context(String),
    /// The controller that computes effects.
    Controller(String),
    /// The final device action.
    Action {
        /// Device name.
        device: String,
        /// Action name.
        action: String,
    },
}

impl fmt::Display for ChainStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainStep::Source { device, source } => write!(f, "{device}.{source}"),
            ChainStep::Context(name) => write!(f, "[{name}]"),
            ChainStep::Controller(name) => write!(f, "({name})"),
            ChainStep::Action { device, action } => write!(f, "{device}.{action}()"),
        }
    }
}

/// A complete functional chain: source → contexts… → controller → action.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionalChain {
    /// Steps in flow order. Always starts with [`ChainStep::Source`] and
    /// ends with [`ChainStep::Action`].
    pub steps: Vec<ChainStep>,
}

impl FunctionalChain {
    /// The contexts traversed, in order.
    pub fn contexts(&self) -> impl Iterator<Item = &str> {
        self.steps.iter().filter_map(|s| match s {
            ChainStep::Context(name) => Some(name.as_str()),
            _ => None,
        })
    }

    /// Number of steps in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the chain has no steps (never true for chains produced by
    /// [`functional_chains`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Display for FunctionalChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

/// Computes every functional chain of a checked specification.
///
/// A chain follows *event-driven* edges only (`when provided` / `when
/// periodic` subscriptions and controller `do` clauses); query-driven
/// (`get`) inputs are auxiliary reads, not flow, matching the straight
/// vs. loop arrow distinction of the paper's Figure 3.
///
/// The checker guarantees the subscription graph is acyclic, so
/// enumeration terminates. Chains are returned in deterministic order.
///
/// # Examples
///
/// ```
/// use diaspec_core::{compile_str, chains::functional_chains};
///
/// let model = compile_str(r#"
///     device Clock { source tick as Integer; }
///     device Siren { action wail; }
///     context Overdue as Integer { when provided tick from Clock maybe publish; }
///     controller Alarm { when provided Overdue do wail on Siren; }
/// "#)?;
/// let chains = functional_chains(&model);
/// assert_eq!(chains.len(), 1);
/// assert_eq!(chains[0].to_string(), "Clock.tick -> [Overdue] -> (Alarm) -> Siren.wail()");
/// # Ok::<(), diaspec_core::diag::CompileError>(())
/// ```
#[must_use]
pub fn functional_chains(spec: &CheckedSpec) -> Vec<FunctionalChain> {
    let mut chains = Vec::new();
    for device in spec.devices() {
        for source in device
            .sources
            .iter()
            .filter(|s| s.declared_in == device.name)
        {
            // Only start chains at sources the device declares itself;
            // otherwise every subclass would duplicate its parent's chains.
            // Subscriptions against ancestors are still found because
            // `subscribers_of_source` walks the hierarchy.
            let mut prefix = vec![ChainStep::Source {
                device: device.name.clone(),
                source: source.name.clone(),
            }];
            extend_from_source(spec, &device.name, &source.name, &mut prefix, &mut chains);
        }
    }
    chains
}

fn extend_from_source(
    spec: &CheckedSpec,
    device: &str,
    source: &str,
    prefix: &mut Vec<ChainStep>,
    chains: &mut Vec<FunctionalChain>,
) {
    for ctx in spec.subscribers_of_source(device, source) {
        prefix.push(ChainStep::Context(ctx.name.clone()));
        extend_from_context(spec, &ctx.name, prefix, chains);
        prefix.pop();
    }
}

fn extend_from_context(
    spec: &CheckedSpec,
    context: &str,
    prefix: &mut Vec<ChainStep>,
    chains: &mut Vec<FunctionalChain>,
) {
    use crate::model::Subscriber;
    for sub in spec.subscribers_of_context(context) {
        match sub {
            Subscriber::Context(next) => {
                prefix.push(ChainStep::Context(next.clone()));
                extend_from_context(spec, &next, prefix, chains);
                prefix.pop();
            }
            Subscriber::Controller(name) => {
                let ctrl = spec.controller(&name).expect("subscriber exists");
                for binding in &ctrl.bindings {
                    if binding.context != context {
                        continue;
                    }
                    for (action, target) in &binding.actions {
                        let mut steps = prefix.clone();
                        steps.push(ChainStep::Controller(name.clone()));
                        steps.push(ChainStep::Action {
                            device: target.clone(),
                            action: action.clone(),
                        });
                        chains.push(FunctionalChain { steps });
                    }
                }
            }
        }
    }
}

/// Returns `true` when the trigger of any activation of `context` is the
/// given device source (directly or via a device ancestor).
#[must_use]
pub fn context_consumes_source(
    spec: &CheckedSpec,
    context: &str,
    device: &str,
    source: &str,
) -> bool {
    let Some(ctx) = spec.context(context) else {
        return false;
    };
    ctx.activations.iter().any(|a| match &a.trigger {
        ActivationTrigger::DeviceSource {
            device: d,
            source: s,
        }
        | ActivationTrigger::Periodic {
            device: d,
            source: s,
            ..
        } => s == source && spec.device_is_subtype(device, d),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    const COOKER: &str = r#"
        device Clock { source tickSecond as Integer; }
        device Cooker { source consumption as Float; action On; action Off; }
        device TvPrompter {
          source answer as String indexed by questionId as String;
          action askQuestion(question as String);
        }
        context Alert as Integer {
          when provided tickSecond from Clock
            get consumption from Cooker
            maybe publish;
        }
        controller Notify { when provided Alert do askQuestion on TvPrompter; }
        context RemoteTurnOff as Boolean {
          when provided answer from TvPrompter
            get consumption from Cooker
            maybe publish;
        }
        controller TurnOff { when provided RemoteTurnOff do Off on Cooker; }
    "#;

    #[test]
    fn cooker_design_has_two_chains() {
        let model = compile_str(COOKER).unwrap();
        let chains = functional_chains(&model);
        let rendered: Vec<String> = chains.iter().map(ToString::to_string).collect();
        assert_eq!(
            rendered,
            vec![
                "Clock.tickSecond -> [Alert] -> (Notify) -> TvPrompter.askQuestion()",
                "TvPrompter.answer -> [RemoteTurnOff] -> (TurnOff) -> Cooker.Off()",
            ],
            "the two functional chains of Figure 3"
        );
    }

    #[test]
    fn gets_are_not_chain_edges() {
        let model = compile_str(COOKER).unwrap();
        let chains = functional_chains(&model);
        // Cooker.consumption is only read via `get`; it must not start a chain.
        assert!(chains
            .iter()
            .all(|c| !c.to_string().starts_with("Cooker.consumption")));
    }

    #[test]
    fn multi_context_chain() {
        let model = compile_str(
            r#"
            device Sensor { source v as Integer; }
            device Sink { action absorb; }
            context First as Integer { when provided v from Sensor always publish; }
            context Second as Integer { when provided First always publish; }
            controller End { when provided Second do absorb on Sink; }
            "#,
        )
        .unwrap();
        let chains = functional_chains(&model);
        assert_eq!(chains.len(), 1);
        assert_eq!(
            chains[0].contexts().collect::<Vec<_>>(),
            vec!["First", "Second"]
        );
        assert_eq!(chains[0].len(), 5);
        assert!(!chains[0].is_empty());
    }

    #[test]
    fn fan_out_produces_multiple_chains() {
        let model = compile_str(
            r#"
            device Sensor { source v as Integer; }
            device A { action a1; }
            device B { action b1; }
            context C as Integer { when provided v from Sensor always publish; }
            controller CtlA { when provided C do a1 on A; }
            controller CtlB { when provided C do b1 on B; }
            "#,
        )
        .unwrap();
        let chains = functional_chains(&model);
        assert_eq!(chains.len(), 2);
    }

    #[test]
    fn multiple_do_clauses_produce_one_chain_each() {
        let model = compile_str(
            r#"
            device Sensor { source v as Integer; }
            device Door { action unlock; }
            device Light { action flash; }
            context Fire as Boolean { when provided v from Sensor maybe publish; }
            controller Evacuate {
              when provided Fire do unlock on Door do flash on Light;
            }
            "#,
        )
        .unwrap();
        let chains = functional_chains(&model);
        assert_eq!(chains.len(), 2);
    }

    #[test]
    fn subscription_via_ancestor_found_once_per_subclass_source() {
        let model = compile_str(
            r#"
            device BaseSensor { source reading as Float; }
            device RoomSensor extends BaseSensor { attribute room as String; }
            device Sink { action absorb; }
            context C as Float { when provided reading from BaseSensor always publish; }
            controller Ctl { when provided C do absorb on Sink; }
            "#,
        )
        .unwrap();
        let chains = functional_chains(&model);
        // The source is declared once (on BaseSensor); the chain starts there.
        assert_eq!(chains.len(), 1);
        assert!(chains[0].to_string().starts_with("BaseSensor.reading"));
    }

    #[test]
    fn context_consumes_source_walks_hierarchy() {
        let model = compile_str(
            r#"
            device BaseSensor { source reading as Float; }
            device RoomSensor extends BaseSensor { attribute room as String; }
            device Sink { action absorb; }
            context C as Float { when provided reading from BaseSensor always publish; }
            controller Ctl { when provided C do absorb on Sink; }
            "#,
        )
        .unwrap();
        assert!(context_consumes_source(
            &model,
            "C",
            "BaseSensor",
            "reading"
        ));
        assert!(
            context_consumes_source(&model, "C", "RoomSensor", "reading"),
            "a RoomSensor is a BaseSensor"
        );
        assert!(!context_consumes_source(&model, "C", "Sink", "reading"));
        assert!(!context_consumes_source(
            &model,
            "Ghost",
            "BaseSensor",
            "reading"
        ));
    }

    #[test]
    fn chains_serialize() {
        let model = compile_str(COOKER).unwrap();
        let chains = functional_chains(&model);
        let json = serde_json::to_string(&chains).unwrap();
        let back: Vec<FunctionalChain> = serde_json::from_str(&json).unwrap();
        assert_eq!(chains, back);
    }
}

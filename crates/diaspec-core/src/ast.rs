//! Abstract syntax tree for the DiaSpec design language.
//!
//! The AST is a faithful, span-carrying representation of the source text.
//! It is produced by the [`parser`](crate::parser) and consumed by the
//! [`checker`](crate::check), which resolves it into the semantic
//! [`model`](crate::model) used by code generation and the runtime.

use crate::span::Span;
use std::fmt;

/// An identifier with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The identifier text.
    pub name: String,
    /// Where it appears in the source.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier.
    #[must_use]
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }

    /// Creates an identifier with a dummy span (for synthesized nodes).
    #[must_use]
    pub fn synthetic(name: impl Into<String>) -> Self {
        Ident::new(name, Span::DUMMY)
    }

    /// The identifier text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        &self.name
    }
}

/// A syntactic reference to a type, e.g. `Integer`, `Availability[]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeRef {
    /// A named type: one of the built-ins (`Integer`, `Float`, `Boolean`,
    /// `String`) or a user-declared structure/enumeration.
    Named(Ident),
    /// An array of the element type, written `T[]`.
    Array(Box<TypeRef>, Span),
}

impl TypeRef {
    /// The overall source span of the type reference.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            TypeRef::Named(id) => id.span,
            TypeRef::Array(elem, bracket) => elem.span().to(*bracket),
        }
    }

    /// The innermost named type (unwrapping arrays).
    #[must_use]
    pub fn base_name(&self) -> &str {
        match self {
            TypeRef::Named(id) => &id.name,
            TypeRef::Array(elem, _) => elem.base_name(),
        }
    }
}

impl fmt::Display for TypeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeRef::Named(id) => write!(f, "{id}"),
            TypeRef::Array(elem, _) => write!(f, "{elem}[]"),
        }
    }
}

/// Units accepted inside period brackets, e.g. `<10 min>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimeUnit {
    /// Milliseconds (`ms`).
    Millis,
    /// Seconds (`sec` or `s`).
    Seconds,
    /// Minutes (`min`).
    Minutes,
    /// Hours (`hr` or `h`).
    Hours,
    /// Days (`day` or `d`).
    Days,
}

impl TimeUnit {
    /// Parses a unit from its source spelling.
    #[must_use]
    // Not `FromStr`: lookup is infallible-by-`Option`, with no error payload.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<TimeUnit> {
        Some(match s {
            "ms" => TimeUnit::Millis,
            "s" | "sec" => TimeUnit::Seconds,
            "min" => TimeUnit::Minutes,
            "h" | "hr" => TimeUnit::Hours,
            "d" | "day" => TimeUnit::Days,
            _ => return None,
        })
    }

    /// Canonical spelling used by the pretty-printer.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TimeUnit::Millis => "ms",
            TimeUnit::Seconds => "sec",
            TimeUnit::Minutes => "min",
            TimeUnit::Hours => "hr",
            TimeUnit::Days => "day",
        }
    }

    /// Milliseconds per unit.
    #[must_use]
    pub fn millis(self) -> u64 {
        match self {
            TimeUnit::Millis => 1,
            TimeUnit::Seconds => 1_000,
            TimeUnit::Minutes => 60_000,
            TimeUnit::Hours => 3_600_000,
            TimeUnit::Days => 86_400_000,
        }
    }
}

impl fmt::Display for TimeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A duration literal such as `<10 min>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Duration {
    /// Magnitude in `unit`s.
    pub value: u64,
    /// The unit of `value`.
    pub unit: TimeUnit,
    /// Source span of the bracketed literal.
    pub span: Span,
}

impl Duration {
    /// Creates a duration literal.
    #[must_use]
    pub fn new(value: u64, unit: TimeUnit, span: Span) -> Self {
        Duration { value, unit, span }
    }

    /// Total duration in milliseconds (saturating on overflow).
    #[must_use]
    pub fn as_millis(&self) -> u64 {
        self.value.saturating_mul(self.unit.millis())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} {}>", self.value, self.unit)
    }
}

/// The value of an annotation argument.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AnnotationValue {
    /// A string literal value.
    Str(String),
    /// An integer literal value.
    Int(u64),
    /// A bare identifier value (e.g. an enum-like symbol).
    Ident(String),
}

impl fmt::Display for AnnotationValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotationValue::Str(s) => write!(f, "{s:?}"),
            AnnotationValue::Int(v) => write!(f, "{v}"),
            AnnotationValue::Ident(s) => write!(f, "{s}"),
        }
    }
}

/// A non-functional annotation attached to a declaration, e.g.
/// `@error(policy = "retry", attempts = 3)` or `@qos(latency = 50)`.
///
/// Annotations carry the paper's §III extension for expressing potential
/// errors and quality-of-service constraints at the design level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Annotation name (`error`, `qos`, ...). Open-ended by design.
    pub name: Ident,
    /// Key/value arguments in source order.
    pub args: Vec<(Ident, AnnotationValue)>,
    /// Full source span including the `@`.
    pub span: Span,
}

impl Annotation {
    /// Looks up an argument by key.
    #[must_use]
    pub fn arg(&self, key: &str) -> Option<&AnnotationValue> {
        self.args
            .iter()
            .find(|(k, _)| k.name == key)
            .map(|(_, v)| v)
    }
}

/// `attribute name as Type;` inside a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDecl {
    /// Attribute name.
    pub name: Ident,
    /// Attribute type.
    pub ty: TypeRef,
    /// Declaration span.
    pub span: Span,
}

/// `source name as Type [indexed by idx as Type];` inside a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceDecl {
    /// Source name.
    pub name: Ident,
    /// Type of values this source produces.
    pub ty: TypeRef,
    /// Optional `indexed by` clause: (index name, index type).
    pub index: Option<(Ident, TypeRef)>,
    /// Declaration span.
    pub span: Span,
}

/// A parameter of an action: `name as Type`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: Ident,
    /// Parameter type.
    pub ty: TypeRef,
}

/// `action Name[(params)];` inside a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionDecl {
    /// Action name.
    pub name: Ident,
    /// Parameters, possibly empty.
    pub params: Vec<Param>,
    /// Declaration span.
    pub span: Span,
}

/// A `device` declaration (paper §III, Figures 5 and 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDecl {
    /// Device name.
    pub name: Ident,
    /// Optional parent device (`extends`).
    pub extends: Option<Ident>,
    /// Non-functional annotations.
    pub annotations: Vec<Annotation>,
    /// Declared attributes (not including inherited ones).
    pub attributes: Vec<AttributeDecl>,
    /// Declared sources.
    pub sources: Vec<SourceDecl>,
    /// Declared actions.
    pub actions: Vec<ActionDecl>,
    /// Full declaration span.
    pub span: Span,
}

/// What a context interaction consumes: a device source or another context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataRef {
    /// `source from Device` — a device source.
    DeviceSource {
        /// Source name on the device.
        source: Ident,
        /// Device name.
        device: Ident,
    },
    /// A bare context name.
    Context(Ident),
}

impl DataRef {
    /// The overall span of the reference.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            DataRef::DeviceSource { source, device } => source.span.to(device.span),
            DataRef::Context(id) => id.span,
        }
    }
}

impl fmt::Display for DataRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataRef::DeviceSource { source, device } => write!(f, "{source} from {device}"),
            DataRef::Context(id) => write!(f, "{id}"),
        }
    }
}

/// The optional `with map as X reduce as Y` clause of `grouped by`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapReduceSig {
    /// Type of intermediate values emitted by the Map phase.
    pub map_ty: TypeRef,
    /// Type of values produced by the Reduce phase.
    pub reduce_ty: TypeRef,
    /// Span of the `with ...` clause.
    pub span: Span,
}

/// A `grouped by attr [every <T>] [with map ... reduce ...]` clause
/// (paper §IV.2, Figure 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    /// The device attribute to group sensor readings by.
    pub attribute: Ident,
    /// Optional aggregation window (`every <24 hr>`).
    pub window: Option<Duration>,
    /// Optional MapReduce typing, enabling parallel processing.
    pub map_reduce: Option<MapReduceSig>,
    /// Span of the whole clause.
    pub span: Span,
}

/// Publication mode of a context interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Publish {
    /// `always publish` — every activation produces a value.
    Always,
    /// `maybe publish` — an activation may decline to produce a value.
    Maybe,
    /// `no publish` — the context never pushes; it is only `get`-queried.
    No,
}

impl fmt::Display for Publish {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Publish::Always => f.write_str("always publish"),
            Publish::Maybe => f.write_str("maybe publish"),
            Publish::No => f.write_str("no publish"),
        }
    }
}

/// One `when ...` interaction contract of a context (paper §IV, Figures 7
/// and 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Interaction {
    /// `when provided X [get Y]* [grouped by ...] <publish>;` — event-driven
    /// activation on every published value of `X`.
    Provided {
        /// What triggers the activation.
        trigger: DataRef,
        /// Query-driven (`get`) inputs read during activation.
        gets: Vec<DataRef>,
        /// Optional grouping of the trigger data.
        grouping: Option<Grouping>,
        /// Publication mode of the produced value.
        publish: Publish,
        /// Span of the whole interaction.
        span: Span,
    },
    /// `when periodic src from Dev <T> [grouped by ...] [get ...]*
    /// <publish>;` — periodic batched delivery.
    Periodic {
        /// The device source polled periodically.
        source: Ident,
        /// The device declaring the source.
        device: Ident,
        /// Delivery period.
        period: Duration,
        /// Query-driven inputs read during activation.
        gets: Vec<DataRef>,
        /// Optional grouping of the gathered batch.
        grouping: Option<Grouping>,
        /// Publication mode of the produced value.
        publish: Publish,
        /// Span of the whole interaction.
        span: Span,
    },
    /// `when required;` — the context computes on demand when `get`-queried.
    Required {
        /// Span of the clause.
        span: Span,
    },
}

impl Interaction {
    /// The source span of the interaction.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Interaction::Provided { span, .. }
            | Interaction::Periodic { span, .. }
            | Interaction::Required { span } => *span,
        }
    }

    /// The publication mode, if this interaction produces values.
    #[must_use]
    pub fn publish(&self) -> Option<Publish> {
        match self {
            Interaction::Provided { publish, .. } | Interaction::Periodic { publish, .. } => {
                Some(*publish)
            }
            Interaction::Required { .. } => None,
        }
    }
}

/// A `context` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextDecl {
    /// Context name.
    pub name: Ident,
    /// Declared output type (`context Alert as Integer`).
    pub output: TypeRef,
    /// Non-functional annotations.
    pub annotations: Vec<Annotation>,
    /// Interaction contracts in source order.
    pub interactions: Vec<Interaction>,
    /// Full declaration span.
    pub span: Span,
}

impl ContextDecl {
    /// Whether any interaction declares `when required` (pull-only access).
    #[must_use]
    pub fn is_required(&self) -> bool {
        self.interactions
            .iter()
            .any(|i| matches!(i, Interaction::Required { .. }))
    }

    /// Whether any interaction publishes (`always` or `maybe`).
    #[must_use]
    pub fn publishes(&self) -> bool {
        self.interactions
            .iter()
            .any(|i| matches!(i.publish(), Some(Publish::Always | Publish::Maybe)))
    }
}

/// `do action on Device` inside a controller interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoAction {
    /// The action name on the device.
    pub action: Ident,
    /// The target device.
    pub device: Ident,
    /// Clause span.
    pub span: Span,
}

/// One `when provided Ctx do a on D [do b on E ...];` clause of a controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerInteraction {
    /// The context whose publications trigger this controller.
    pub context: Ident,
    /// Actions the controller may perform when triggered.
    pub actions: Vec<DoAction>,
    /// Clause span.
    pub span: Span,
}

/// A `controller` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerDecl {
    /// Controller name.
    pub name: Ident,
    /// Non-functional annotations.
    pub annotations: Vec<Annotation>,
    /// Interaction clauses in source order.
    pub interactions: Vec<ControllerInteraction>,
    /// Full declaration span.
    pub span: Span,
}

/// A field of a `structure` declaration: `name as Type;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field name.
    pub name: Ident,
    /// Field type.
    pub ty: TypeRef,
    /// Declaration span.
    pub span: Span,
}

/// A `structure` declaration (record type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDecl {
    /// Structure name.
    pub name: Ident,
    /// Fields in source order.
    pub fields: Vec<FieldDecl>,
    /// Full declaration span.
    pub span: Span,
}

/// An `enumeration` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDecl {
    /// Enumeration name.
    pub name: Ident,
    /// Variants in source order.
    pub variants: Vec<Ident>,
    /// Full declaration span.
    pub span: Span,
}

/// A top-level item of a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A device declaration.
    Device(DeviceDecl),
    /// A context declaration.
    Context(ContextDecl),
    /// A controller declaration.
    Controller(ControllerDecl),
    /// A structure declaration.
    Structure(StructDecl),
    /// An enumeration declaration.
    Enumeration(EnumDecl),
}

impl Item {
    /// The declared name of the item.
    #[must_use]
    pub fn name(&self) -> &Ident {
        match self {
            Item::Device(d) => &d.name,
            Item::Context(c) => &c.name,
            Item::Controller(c) => &c.name,
            Item::Structure(s) => &s.name,
            Item::Enumeration(e) => &e.name,
        }
    }

    /// The full source span of the item.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Item::Device(d) => d.span,
            Item::Context(c) => c.span,
            Item::Controller(c) => c.span,
            Item::Structure(s) => s.span,
            Item::Enumeration(e) => e.span,
        }
    }

    /// A short noun describing the item kind ("device", "context", ...).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Item::Device(_) => "device",
            Item::Context(_) => "context",
            Item::Controller(_) => "controller",
            Item::Structure(_) => "structure",
            Item::Enumeration(_) => "enumeration",
        }
    }
}

/// A parsed specification: the ordered list of top-level items.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Spec {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Spec {
    /// Iterates over device declarations.
    pub fn devices(&self) -> impl Iterator<Item = &DeviceDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Device(d) => Some(d),
            _ => None,
        })
    }

    /// Iterates over context declarations.
    pub fn contexts(&self) -> impl Iterator<Item = &ContextDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Context(c) => Some(c),
            _ => None,
        })
    }

    /// Iterates over controller declarations.
    pub fn controllers(&self) -> impl Iterator<Item = &ControllerDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Controller(c) => Some(c),
            _ => None,
        })
    }

    /// Iterates over structure declarations.
    pub fn structures(&self) -> impl Iterator<Item = &StructDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Structure(s) => Some(s),
            _ => None,
        })
    }

    /// Iterates over enumeration declarations.
    pub fn enumerations(&self) -> impl Iterator<Item = &EnumDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Enumeration(e) => Some(e),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(s: &str) -> Ident {
        Ident::synthetic(s)
    }

    #[test]
    fn duration_conversions() {
        let d = Duration::new(10, TimeUnit::Minutes, Span::DUMMY);
        assert_eq!(d.as_millis(), 600_000);
        assert_eq!(d.to_string(), "<10 min>");
        let d = Duration::new(24, TimeUnit::Hours, Span::DUMMY);
        assert_eq!(d.as_millis(), 86_400_000);
        // Saturates rather than overflowing.
        let d = Duration::new(u64::MAX, TimeUnit::Days, Span::DUMMY);
        assert_eq!(d.as_millis(), u64::MAX);
    }

    #[test]
    fn time_unit_parsing() {
        assert_eq!(TimeUnit::from_str("min"), Some(TimeUnit::Minutes));
        assert_eq!(TimeUnit::from_str("hr"), Some(TimeUnit::Hours));
        assert_eq!(TimeUnit::from_str("h"), Some(TimeUnit::Hours));
        assert_eq!(TimeUnit::from_str("sec"), Some(TimeUnit::Seconds));
        assert_eq!(TimeUnit::from_str("s"), Some(TimeUnit::Seconds));
        assert_eq!(TimeUnit::from_str("ms"), Some(TimeUnit::Millis));
        assert_eq!(TimeUnit::from_str("day"), Some(TimeUnit::Days));
        assert_eq!(TimeUnit::from_str("fortnight"), None);
    }

    #[test]
    fn type_ref_display_and_base() {
        let t = TypeRef::Array(Box::new(TypeRef::Named(ident("Availability"))), Span::DUMMY);
        assert_eq!(t.to_string(), "Availability[]");
        assert_eq!(t.base_name(), "Availability");
    }

    #[test]
    fn context_publish_queries() {
        let ctx = ContextDecl {
            name: ident("C"),
            output: TypeRef::Named(ident("Integer")),
            annotations: vec![],
            interactions: vec![
                Interaction::Periodic {
                    source: ident("presence"),
                    device: ident("PresenceSensor"),
                    period: Duration::new(1, TimeUnit::Hours, Span::DUMMY),
                    gets: vec![],
                    grouping: None,
                    publish: Publish::No,
                    span: Span::DUMMY,
                },
                Interaction::Required { span: Span::DUMMY },
            ],
            span: Span::DUMMY,
        };
        assert!(ctx.is_required());
        assert!(!ctx.publishes());
    }

    #[test]
    fn annotation_argument_lookup() {
        let ann = Annotation {
            name: ident("error"),
            args: vec![
                (ident("policy"), AnnotationValue::Str("retry".into())),
                (ident("attempts"), AnnotationValue::Int(3)),
            ],
            span: Span::DUMMY,
        };
        assert_eq!(
            ann.arg("policy"),
            Some(&AnnotationValue::Str("retry".into()))
        );
        assert_eq!(ann.arg("attempts"), Some(&AnnotationValue::Int(3)));
        assert_eq!(ann.arg("missing"), None);
    }

    #[test]
    fn spec_item_filters() {
        let spec = Spec {
            items: vec![
                Item::Device(DeviceDecl {
                    name: ident("D"),
                    extends: None,
                    annotations: vec![],
                    attributes: vec![],
                    sources: vec![],
                    actions: vec![],
                    span: Span::DUMMY,
                }),
                Item::Enumeration(EnumDecl {
                    name: ident("E"),
                    variants: vec![ident("A")],
                    span: Span::DUMMY,
                }),
            ],
        };
        assert_eq!(spec.devices().count(), 1);
        assert_eq!(spec.enumerations().count(), 1);
        assert_eq!(spec.contexts().count(), 0);
        assert_eq!(spec.items[0].kind_name(), "device");
        assert_eq!(spec.items[1].name().as_str(), "E");
    }
}

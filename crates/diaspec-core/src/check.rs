//! Semantic analysis: from a parsed [`Spec`] to a resolved [`CheckedSpec`].
//!
//! The checker enforces the rules that make a DiaSpec design meaningful and
//! executable, in particular the Sense-Compute-Control layering of paper
//! §II: *"contexts can invoke other contexts or controllers, but controllers
//! cannot invoke context components"*. Every rule has a stable diagnostic
//! code so tests and tooling can assert on the kind of violation:
//!
//! | Code | Rule |
//! |------|------|
//! | E0201 | duplicate top-level name |
//! | E0202 | unknown parent device |
//! | E0203 | device inheritance cycle |
//! | E0204 | duplicate member within a device |
//! | E0205 | member overrides an inherited member |
//! | E0206 | unknown type name |
//! | E0210 | duplicate structure field |
//! | E0211 | duplicate enumeration variant |
//! | E0212 | empty enumeration |
//! | E0220 | unknown device |
//! | E0221 | unknown source on device |
//! | E0222 | unknown context |
//! | E0223 | SCC violation: context triggered by a controller |
//! | E0224 | `get` of a context that does not declare `when required` |
//! | E0225 | subscription to a context that never publishes |
//! | E0226 | `grouped by` on a context-triggered interaction |
//! | E0227 | grouping attribute not declared on the device |
//! | E0229 | cycle among context subscriptions |
//! | E0230 | zero period |
//! | E0240 | controller bound to unknown context |
//! | E0241 | controller bound to a non-publishing context |
//! | E0242 | unknown device in `do` clause |
//! | E0243 | unknown action on device |
//! | E0250 | invalid `@error` policy or argument |
//! | E0251 | invalid `@qos` argument |
//! | E0252 | `@error` fallback is not a declared parameterless action |
//! | E0253 | invalid `@quality` argument |
//! | E0301 | grouping attribute type is not groupable |
//! | W0301 | grouped context output is not an array type |
//! | W0302 | context neither publishes nor is required |
//! | W0303 | published context value is never consumed |
//! | W0305 | aggregation window is not a multiple of the period |
//! | W0306 | unknown annotation name |
//! | W0307 | unknown `@qos` argument |
//! | W0308 | unknown `@error` argument |
//! | W0309 | unknown `@quality` argument |

use crate::ast::{self, Spec};
use crate::diag::{Diagnostic, Diagnostics};
use crate::model::*;
use crate::span::Span;
use crate::types::Type;
use std::collections::{BTreeMap, BTreeSet};

/// Checks a parsed specification, resolving it into a [`CheckedSpec`].
///
/// All problems are reported in the returned [`Diagnostics`]. The model is
/// `Some` exactly when no *error*-severity diagnostic was produced
/// (warnings do not block).
///
/// # Examples
///
/// ```
/// use diaspec_core::{parser::parse, check::check};
///
/// let (spec, parse_diags) = parse("device Cooker { source consumption as Float; action Off; }");
/// assert!(!parse_diags.has_errors());
/// let (model, diags) = check(&spec);
/// assert!(!diags.has_errors());
/// assert!(model.unwrap().device("Cooker").is_some());
/// ```
#[must_use]
pub fn check(spec: &Spec) -> (Option<CheckedSpec>, Diagnostics) {
    let mut checker = Checker {
        spec,
        diags: Diagnostics::new(),
        names: BTreeMap::new(),
        model: CheckedSpec {
            devices: BTreeMap::new(),
            contexts: BTreeMap::new(),
            controllers: BTreeMap::new(),
            structures: BTreeMap::new(),
            enums: BTreeMap::new(),
        },
    };
    checker.run();
    let Checker { diags, model, .. } = checker;
    if diags.has_errors() {
        (None, diags)
    } else {
        (Some(model), diags)
    }
}

/// What kind of declaration a top-level name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NameKind {
    Device,
    Context,
    Controller,
    Structure,
    Enumeration,
}

impl NameKind {
    fn noun(self) -> &'static str {
        match self {
            NameKind::Device => "device",
            NameKind::Context => "context",
            NameKind::Controller => "controller",
            NameKind::Structure => "structure",
            NameKind::Enumeration => "enumeration",
        }
    }
}

struct Checker<'a> {
    spec: &'a Spec,
    diags: Diagnostics,
    /// Top-level name table: name -> (kind, declaration span).
    names: BTreeMap<String, (NameKind, Span)>,
    model: CheckedSpec,
}

impl<'a> Checker<'a> {
    fn run(&mut self) {
        self.collect_names();
        self.resolve_enums();
        self.resolve_structures();
        self.resolve_devices();
        self.resolve_contexts();
        self.resolve_controllers();
        if !self.diags.has_errors() {
            self.detect_context_cycles();
            self.lint_unused();
        }
    }

    // ---- phase 1: names ---------------------------------------------------

    fn collect_names(&mut self) {
        for item in &self.spec.items {
            let kind = match item {
                ast::Item::Device(_) => NameKind::Device,
                ast::Item::Context(_) => NameKind::Context,
                ast::Item::Controller(_) => NameKind::Controller,
                ast::Item::Structure(_) => NameKind::Structure,
                ast::Item::Enumeration(_) => NameKind::Enumeration,
            };
            let name = item.name();
            if let Some((prev_kind, prev_span)) = self.names.get(&name.name) {
                let diag = Diagnostic::error(
                    "E0201",
                    format!(
                        "the name `{name}` is already used by a {}",
                        prev_kind.noun()
                    ),
                    name.span,
                )
                .with_note("first declared here", Some(*prev_span));
                self.diags.push(diag);
            } else {
                self.names.insert(name.name.clone(), (kind, name.span));
            }
        }
    }

    fn name_kind(&self, name: &str) -> Option<NameKind> {
        self.names.get(name).map(|(k, _)| *k)
    }

    // ---- phase 2: types ---------------------------------------------------

    fn resolve_type(&mut self, ty: &ast::TypeRef) -> Type {
        match ty {
            ast::TypeRef::Named(id) => {
                if let Some(t) = Type::builtin(&id.name) {
                    return t;
                }
                match self.name_kind(&id.name) {
                    Some(NameKind::Enumeration) => Type::Enum(id.name.clone()),
                    Some(NameKind::Structure) => Type::Struct(id.name.clone()),
                    Some(other) => {
                        self.diags.push(Diagnostic::error(
                            "E0206",
                            format!(
                                "`{}` is a {}, not a type (expected a built-in, structure, or enumeration)",
                                id.name,
                                other.noun()
                            ),
                            id.span,
                        ));
                        Type::String
                    }
                    None => {
                        self.diags.push(Diagnostic::error(
                            "E0206",
                            format!("unknown type `{}`", id.name),
                            id.span,
                        ));
                        Type::String
                    }
                }
            }
            ast::TypeRef::Array(elem, _) => self.resolve_type(elem).array(),
        }
    }

    fn resolve_enums(&mut self) {
        for decl in self.spec.enumerations() {
            if self.names.get(&decl.name.name).map(|(_, s)| *s) != Some(decl.name.span) {
                continue; // duplicate; only the first declaration is modeled
            }
            if decl.variants.is_empty() {
                self.diags.push(Diagnostic::error(
                    "E0212",
                    format!("enumeration `{}` has no variants", decl.name),
                    decl.span,
                ));
            }
            let mut seen: BTreeMap<&str, Span> = BTreeMap::new();
            let mut variants = Vec::new();
            for v in &decl.variants {
                if let Some(prev) = seen.get(v.as_str()) {
                    let diag = Diagnostic::error(
                        "E0211",
                        format!("duplicate variant `{v}` in enumeration `{}`", decl.name),
                        v.span,
                    )
                    .with_note("first declared here", Some(*prev));
                    self.diags.push(diag);
                } else {
                    seen.insert(v.as_str(), v.span);
                    variants.push(v.name.clone());
                }
            }
            self.model.enums.insert(
                decl.name.name.clone(),
                Enumeration {
                    name: decl.name.name.clone(),
                    variants,
                },
            );
        }
    }

    fn resolve_structures(&mut self) {
        for decl in self.spec.structures() {
            if self.names.get(&decl.name.name).map(|(_, s)| *s) != Some(decl.name.span) {
                continue;
            }
            let mut seen: BTreeMap<&str, Span> = BTreeMap::new();
            let mut fields = Vec::new();
            for f in &decl.fields {
                if let Some(prev) = seen.get(f.name.as_str()) {
                    let diag = Diagnostic::error(
                        "E0210",
                        format!("duplicate field `{}` in structure `{}`", f.name, decl.name),
                        f.name.span,
                    )
                    .with_note("first declared here", Some(*prev));
                    self.diags.push(diag);
                    continue;
                }
                seen.insert(f.name.as_str(), f.name.span);
                let ty = self.resolve_type(&f.ty);
                fields.push((f.name.name.clone(), ty));
            }
            self.model.structures.insert(
                decl.name.name.clone(),
                Structure {
                    name: decl.name.name.clone(),
                    fields,
                },
            );
        }
    }

    // ---- phase 3: devices ---------------------------------------------------

    fn resolve_devices(&mut self) {
        // Resolve parents and detect cycles first, then flatten in an order
        // where every parent is flattened before its children.
        let decls: BTreeMap<&str, &ast::DeviceDecl> = self
            .spec
            .devices()
            .filter(|d| self.names.get(&d.name.name).map(|(_, s)| *s) == Some(d.name.span))
            .map(|d| (d.name.as_str(), d))
            .collect();

        // Validate parents.
        let mut parent_of: BTreeMap<&str, &str> = BTreeMap::new();
        for decl in decls.values() {
            if let Some(parent) = &decl.extends {
                match self.name_kind(&parent.name) {
                    Some(NameKind::Device) => {
                        parent_of.insert(decl.name.as_str(), parent.as_str());
                    }
                    Some(other) => {
                        self.diags.push(Diagnostic::error(
                            "E0202",
                            format!(
                                "device `{}` extends `{parent}`, which is a {}, not a device",
                                decl.name,
                                other.noun()
                            ),
                            parent.span,
                        ));
                    }
                    None => {
                        self.diags.push(Diagnostic::error(
                            "E0202",
                            format!("device `{}` extends unknown device `{parent}`", decl.name),
                            parent.span,
                        ));
                    }
                }
            }
        }

        // Detect inheritance cycles.
        let mut in_cycle: BTreeSet<&str> = BTreeSet::new();
        for &start in decls.keys() {
            let mut slow = start;
            let mut seen = BTreeSet::new();
            seen.insert(slow);
            while let Some(&next) = parent_of.get(slow) {
                if !seen.insert(next) {
                    if !in_cycle.contains(start) {
                        let decl = decls[start];
                        self.diags.push(Diagnostic::error(
                            "E0203",
                            format!(
                                "device `{}` participates in an inheritance cycle",
                                decl.name
                            ),
                            decl.name.span,
                        ));
                    }
                    in_cycle.insert(start);
                    break;
                }
                slow = next;
            }
        }

        // Flatten, parents first, skipping anything in a cycle.
        let mut done: BTreeSet<&str> = BTreeSet::new();
        while done.len() < decls.len() {
            let mut progressed = false;
            for (&name, decl) in &decls {
                if done.contains(name) {
                    continue;
                }
                let parent_ready = match parent_of.get(name) {
                    Some(p) => done.contains(p),
                    // Unknown/invalid parent: treat as root so members still
                    // resolve and later references don't cascade.
                    None => true,
                };
                if in_cycle.contains(name) {
                    done.insert(name);
                    progressed = true;
                    continue;
                }
                if parent_ready {
                    self.flatten_device(decl, parent_of.get(name).copied());
                    done.insert(name);
                    progressed = true;
                }
            }
            if !progressed {
                // Remaining devices all have unflattened parents due to
                // cycles already reported; stop.
                break;
            }
        }
    }

    fn flatten_device(&mut self, decl: &ast::DeviceDecl, parent: Option<&str>) {
        let mut attributes = Vec::new();
        let mut sources = Vec::new();
        let mut actions = Vec::new();
        if let Some(parent) = parent.and_then(|p| self.model.devices.get(p)) {
            attributes.extend(parent.attributes.iter().cloned());
            sources.extend(parent.sources.iter().cloned());
            actions.extend(parent.actions.iter().cloned());
        }

        // Track member names to reject duplicates/overrides. Attributes,
        // sources and actions live in separate namespaces on a device.
        let check_member = |diags: &mut Diagnostics,
                            existing: &mut BTreeMap<String, (String, Span)>,
                            kind: &str,
                            name: &ast::Ident|
         -> bool {
            if let Some((owner, prev_span)) = existing.get(name.as_str()) {
                let (code, what) = if owner == decl.name.as_str() {
                    ("E0204", format!("duplicate {kind} `{name}`"))
                } else {
                    (
                        "E0205",
                        format!("{kind} `{name}` overrides a member inherited from `{owner}`"),
                    )
                };
                let prev = *prev_span;
                let mut diag = Diagnostic::error(code, what, name.span);
                if !prev.is_empty() || prev != Span::DUMMY {
                    diag = diag.with_note("previously declared here", Some(prev));
                }
                diags.push(diag);
                false
            } else {
                existing.insert(name.name.clone(), (decl.name.name.clone(), name.span));
                true
            }
        };

        let mut attr_names: BTreeMap<String, (String, Span)> = attributes
            .iter()
            .map(|a: &Attribute| (a.name.clone(), (a.declared_in.clone(), Span::DUMMY)))
            .collect();
        for a in &decl.attributes {
            if check_member(&mut self.diags, &mut attr_names, "attribute", &a.name) {
                let ty = self.resolve_type(&a.ty);
                attributes.push(Attribute {
                    name: a.name.name.clone(),
                    ty,
                    declared_in: decl.name.name.clone(),
                });
            }
        }

        let mut source_names: BTreeMap<String, (String, Span)> = sources
            .iter()
            .map(|s: &Source| (s.name.clone(), (s.declared_in.clone(), Span::DUMMY)))
            .collect();
        for s in &decl.sources {
            if check_member(&mut self.diags, &mut source_names, "source", &s.name) {
                let ty = self.resolve_type(&s.ty);
                let index = s
                    .index
                    .as_ref()
                    .map(|(n, t)| (n.name.clone(), self.resolve_type(t)));
                sources.push(Source {
                    name: s.name.name.clone(),
                    ty,
                    index,
                    declared_in: decl.name.name.clone(),
                });
            }
        }

        let mut action_names: BTreeMap<String, (String, Span)> = actions
            .iter()
            .map(|a: &Action| (a.name.clone(), (a.declared_in.clone(), Span::DUMMY)))
            .collect();
        for a in &decl.actions {
            if check_member(&mut self.diags, &mut action_names, "action", &a.name) {
                let params = a
                    .params
                    .iter()
                    .map(|p| (p.name.name.clone(), self.resolve_type(&p.ty)))
                    .collect();
                actions.push(Action {
                    name: a.name.name.clone(),
                    params,
                    declared_in: decl.name.name.clone(),
                });
            }
        }

        let annotations = self.resolve_annotations(&decl.annotations);
        // The declared @error fallback must be an action the runtime can
        // invoke blind — declared (or inherited) on this device, with no
        // parameters.
        for ann in &decl.annotations {
            if ann.name.as_str() != "error" {
                continue;
            }
            let fallback = match ann.arg("fallback") {
                Some(ast::AnnotationValue::Str(name) | ast::AnnotationValue::Ident(name)) => name,
                _ => continue,
            };
            match actions.iter().find(|a: &&Action| a.name == *fallback) {
                Some(action) if action.params.is_empty() => {}
                Some(_) => {
                    self.diags.push(Diagnostic::error(
                        "E0252",
                        format!(
                            "@error fallback `{fallback}` takes parameters; a fallback action must be parameterless"
                        ),
                        ann.span,
                    ));
                }
                None => {
                    self.diags.push(Diagnostic::error(
                        "E0252",
                        format!(
                            "@error fallback `{fallback}` is not an action of device `{}`",
                            decl.name
                        ),
                        ann.span,
                    ));
                }
            }
        }
        self.model.devices.insert(
            decl.name.name.clone(),
            Device {
                name: decl.name.name.clone(),
                parent: parent.map(str::to_owned),
                attributes,
                sources,
                actions,
                annotations,
                span: decl.name.span,
            },
        );
    }

    // ---- phase 4: annotations ----------------------------------------------

    fn resolve_annotations(&mut self, annotations: &[ast::Annotation]) -> Vec<ResolvedAnnotation> {
        const ERROR_POLICIES: [&str; 4] = ["retry", "failover", "ignore", "escalate"];
        let mut out = Vec::new();
        for ann in annotations {
            match ann.name.as_str() {
                "error" => {
                    if let Some(policy) = ann.arg("policy") {
                        let ok = matches!(
                            policy,
                            ast::AnnotationValue::Str(p) | ast::AnnotationValue::Ident(p)
                                if ERROR_POLICIES.contains(&p.as_str())
                        );
                        if !ok {
                            self.diags.push(Diagnostic::error(
                                "E0250",
                                format!(
                                    "invalid @error policy `{policy}` (expected one of {})",
                                    ERROR_POLICIES.join(", ")
                                ),
                                ann.span,
                            ));
                        }
                    } else {
                        self.diags.push(Diagnostic::error(
                            "E0250",
                            "@error requires a `policy` argument".to_string(),
                            ann.span,
                        ));
                    }
                    for (key, value) in &ann.args {
                        match key.as_str() {
                            "policy" => {}
                            "attempts" => {
                                let ok = matches!(
                                    value,
                                    ast::AnnotationValue::Int(v) if *v >= 1
                                );
                                if !ok {
                                    self.diags.push(Diagnostic::error(
                                        "E0250",
                                        format!(
                                            "@error argument `attempts` must be a positive integer, got `{value}`"
                                        ),
                                        ann.span,
                                    ));
                                }
                            }
                            "fallback" => {
                                let ok = matches!(
                                    value,
                                    ast::AnnotationValue::Str(_) | ast::AnnotationValue::Ident(_)
                                );
                                if !ok {
                                    self.diags.push(Diagnostic::error(
                                        "E0250",
                                        format!(
                                            "@error argument `fallback` must name an action, got `{value}`"
                                        ),
                                        ann.span,
                                    ));
                                }
                            }
                            other => {
                                self.diags.push(Diagnostic::warning(
                                    "W0308",
                                    format!(
                                        "unknown @error argument `{other}` (known: policy, attempts, fallback)"
                                    ),
                                    ann.span,
                                ));
                            }
                        }
                    }
                }
                "qos" => {
                    for (key, value) in &ann.args {
                        match key.as_str() {
                            "latencyMs" | "periodMs" | "priority" | "capacityPerHour" => {
                                let ok = matches!(
                                    value,
                                    ast::AnnotationValue::Int(v) if *v > 0
                                );
                                if !ok {
                                    self.diags.push(Diagnostic::error(
                                        "E0251",
                                        format!(
                                            "@qos argument `{key}` must be a positive                                              integer, got `{value}`"
                                        ),
                                        ann.span,
                                    ));
                                }
                            }
                            other => {
                                self.diags.push(Diagnostic::warning(
                                    "W0307",
                                    format!(
                                        "unknown @qos argument `{other}` (known:                                          latencyMs, periodMs, priority,                                          capacityPerHour)"
                                    ),
                                    ann.span,
                                ));
                            }
                        }
                    }
                }
                "quality" => {
                    for (key, value) in &ann.args {
                        match key.as_str() {
                            "coverage" => {
                                let ok = matches!(
                                    value,
                                    ast::AnnotationValue::Int(v) if (1..=100).contains(v)
                                );
                                if !ok {
                                    self.diags.push(Diagnostic::error(
                                        "E0253",
                                        format!(
                                            "@quality argument `coverage` must be a percentage \
                                             between 1 and 100, got `{value}`"
                                        ),
                                        ann.span,
                                    ));
                                }
                            }
                            "deadlineMs" => {
                                let ok = matches!(
                                    value,
                                    ast::AnnotationValue::Int(v) if *v > 0
                                );
                                if !ok {
                                    self.diags.push(Diagnostic::error(
                                        "E0253",
                                        format!(
                                            "@quality argument `deadlineMs` must be a positive \
                                             integer, got `{value}`"
                                        ),
                                        ann.span,
                                    ));
                                }
                            }
                            other => {
                                self.diags.push(Diagnostic::warning(
                                    "W0309",
                                    format!(
                                        "unknown @quality argument `{other}` (known: coverage, \
                                         deadlineMs)"
                                    ),
                                    ann.span,
                                ));
                            }
                        }
                    }
                }
                other => {
                    self.diags.push(Diagnostic::warning(
                        "W0306",
                        format!("unknown annotation `@{other}` (known: @error, @qos, @quality)"),
                        ann.span,
                    ));
                }
            }
            let args = ann
                .args
                .iter()
                .map(|(k, v)| {
                    let arg = match v {
                        ast::AnnotationValue::Str(s) => AnnotationArg::Str(s.clone()),
                        ast::AnnotationValue::Int(i) => AnnotationArg::Int(*i),
                        ast::AnnotationValue::Ident(s) => AnnotationArg::Symbol(s.clone()),
                    };
                    (k.name.clone(), arg)
                })
                .collect();
            out.push(ResolvedAnnotation {
                name: ann.name.name.clone(),
                args,
            });
        }
        out
    }

    // ---- phase 5: contexts ---------------------------------------------------

    /// Resolves `source from Device`, reporting errors. Returns the source
    /// type on success.
    fn resolve_device_source(&mut self, device: &ast::Ident, source: &ast::Ident) -> Option<Type> {
        match self.name_kind(&device.name) {
            Some(NameKind::Device) => {}
            Some(other) => {
                self.diags.push(Diagnostic::error(
                    "E0220",
                    format!("`{device}` is a {}, not a device", other.noun()),
                    device.span,
                ));
                return None;
            }
            None => {
                self.diags.push(Diagnostic::error(
                    "E0220",
                    format!("unknown device `{device}`"),
                    device.span,
                ));
                return None;
            }
        }
        let Some(dev) = self.model.devices.get(&device.name) else {
            return None; // device errored out earlier (e.g. cycle)
        };
        match dev.source(&source.name) {
            Some(s) => Some(s.ty.clone()),
            None => {
                let available: Vec<&str> = dev.sources.iter().map(|s| s.name.as_str()).collect();
                let mut diag = Diagnostic::error(
                    "E0221",
                    format!("device `{device}` has no source `{source}`"),
                    source.span,
                );
                if !available.is_empty() {
                    diag = diag
                        .with_note(format!("available sources: {}", available.join(", ")), None);
                }
                self.diags.push(diag);
                None
            }
        }
    }

    /// Checks a context name used as a subscription trigger.
    fn check_context_trigger(&mut self, name: &ast::Ident) {
        match self.name_kind(&name.name) {
            Some(NameKind::Context) => {
                // Its publish mode is validated after all contexts resolve.
            }
            Some(NameKind::Controller) => {
                self.diags.push(Diagnostic::error(
                    "E0223",
                    format!(
                        "context cannot subscribe to controller `{name}`: in the \
                         Sense-Compute-Control paradigm controllers do not feed contexts"
                    ),
                    name.span,
                ));
            }
            Some(other) => {
                self.diags.push(Diagnostic::error(
                    "E0222",
                    format!("`{name}` is a {}, not a context", other.noun()),
                    name.span,
                ));
            }
            None => {
                self.diags.push(Diagnostic::error(
                    "E0222",
                    format!("unknown context `{name}`"),
                    name.span,
                ));
            }
        }
    }

    fn resolve_data_ref(&mut self, r: &ast::DataRef, as_get: bool) -> Option<InputRef> {
        match r {
            ast::DataRef::DeviceSource { source, device } => {
                self.resolve_device_source(device, source)?;
                Some(InputRef::DeviceSource {
                    device: device.name.clone(),
                    source: source.name.clone(),
                })
            }
            ast::DataRef::Context(name) => {
                if as_get {
                    match self.name_kind(&name.name) {
                        Some(NameKind::Context) => {}
                        Some(NameKind::Controller) => {
                            self.diags.push(Diagnostic::error(
                                "E0223",
                                format!("context cannot `get` controller `{name}`"),
                                name.span,
                            ));
                            return None;
                        }
                        Some(other) => {
                            self.diags.push(Diagnostic::error(
                                "E0222",
                                format!("`{name}` is a {}, not a context", other.noun()),
                                name.span,
                            ));
                            return None;
                        }
                        None => {
                            self.diags.push(Diagnostic::error(
                                "E0222",
                                format!("unknown context `{name}` in `get`"),
                                name.span,
                            ));
                            return None;
                        }
                    }
                } else {
                    self.check_context_trigger(name);
                }
                Some(InputRef::Context(name.name.clone()))
            }
        }
    }

    fn resolve_grouping(
        &mut self,
        grouping: &ast::Grouping,
        device: Option<&ast::Ident>,
        period_ms: Option<u64>,
    ) -> Option<GroupingModel> {
        let Some(device) = device else {
            self.diags.push(Diagnostic::error(
                "E0226",
                "`grouped by` requires a device-source trigger: grouping partitions \
                 sensor readings by a device attribute",
                grouping.span,
            ));
            return None;
        };
        let attribute_ty = match self
            .model
            .devices
            .get(&device.name)
            .and_then(|d| d.attribute(&grouping.attribute.name))
        {
            Some(attr) => attr.ty.clone(),
            None => {
                if self.model.devices.contains_key(&device.name) {
                    self.diags.push(Diagnostic::error(
                        "E0227",
                        format!(
                            "device `{device}` has no attribute `{}` to group by",
                            grouping.attribute
                        ),
                        grouping.attribute.span,
                    ));
                }
                return None;
            }
        };
        if !attribute_ty.is_groupable() {
            self.diags.push(Diagnostic::error(
                "E0301",
                format!(
                    "attribute `{}` has type `{attribute_ty}`, which cannot key a \
                     `grouped by` partition (no stable equality)",
                    grouping.attribute
                ),
                grouping.attribute.span,
            ));
        }
        let window_ms = grouping.window.map(|w| w.as_millis());
        let window_span = grouping.window.map(|w| w.span);
        if let (Some(window), Some(period)) = (window_ms, period_ms) {
            if period > 0 && window % period != 0 {
                self.diags.push(Diagnostic::warning(
                    "W0305",
                    format!(
                        "aggregation window ({window} ms) is not a multiple of the \
                         delivery period ({period} ms); the final window will be truncated"
                    ),
                    grouping.window.expect("window present").span,
                ));
            }
        }
        let map_reduce = grouping.map_reduce.as_ref().map(|mr| {
            let map_ty = self.resolve_type(&mr.map_ty);
            let reduce_ty = self.resolve_type(&mr.reduce_ty);
            (map_ty, reduce_ty)
        });
        Some(GroupingModel {
            attribute: grouping.attribute.name.clone(),
            attribute_ty,
            window_ms,
            window_span,
            map_reduce,
        })
    }

    fn resolve_contexts(&mut self) {
        for decl in self.spec.contexts() {
            if self.names.get(&decl.name.name).map(|(_, s)| *s) != Some(decl.name.span) {
                continue;
            }
            let output = self.resolve_type(&decl.output);
            let mut activations = Vec::new();
            for interaction in &decl.interactions {
                match interaction {
                    ast::Interaction::Provided {
                        trigger,
                        gets,
                        grouping,
                        publish,
                        span,
                    } => {
                        let trigger_model = match trigger {
                            ast::DataRef::DeviceSource { source, device } => {
                                self.resolve_device_source(device, source);
                                ActivationTrigger::DeviceSource {
                                    device: device.name.clone(),
                                    source: source.name.clone(),
                                }
                            }
                            ast::DataRef::Context(name) => {
                                self.check_context_trigger(name);
                                ActivationTrigger::Context(name.name.clone())
                            }
                        };
                        let gets = gets
                            .iter()
                            .filter_map(|g| self.resolve_data_ref(g, true))
                            .collect();
                        let trigger_device = match trigger {
                            ast::DataRef::DeviceSource { device, .. } => Some(device),
                            ast::DataRef::Context(_) => None,
                        };
                        let grouping_model = grouping
                            .as_ref()
                            .and_then(|g| self.resolve_grouping(g, trigger_device, None));
                        self.lint_grouped_output(&decl.name, &output, &grouping_model, *span);
                        activations.push(Activation {
                            trigger: trigger_model,
                            gets,
                            grouping: grouping_model,
                            publish: convert_publish(*publish),
                            span: *span,
                        });
                    }
                    ast::Interaction::Periodic {
                        source,
                        device,
                        period,
                        gets,
                        grouping,
                        publish,
                        span,
                    } => {
                        self.resolve_device_source(device, source);
                        let period_ms = period.as_millis();
                        if period_ms == 0 {
                            self.diags.push(Diagnostic::error(
                                "E0230",
                                "periodic delivery period must be positive",
                                period.span,
                            ));
                        }
                        let gets = gets
                            .iter()
                            .filter_map(|g| self.resolve_data_ref(g, true))
                            .collect();
                        let grouping_model = grouping
                            .as_ref()
                            .and_then(|g| self.resolve_grouping(g, Some(device), Some(period_ms)));
                        self.lint_grouped_output(&decl.name, &output, &grouping_model, *span);
                        activations.push(Activation {
                            trigger: ActivationTrigger::Periodic {
                                device: device.name.clone(),
                                source: source.name.clone(),
                                period_ms,
                            },
                            gets,
                            grouping: grouping_model,
                            publish: convert_publish(*publish),
                            span: *span,
                        });
                    }
                    ast::Interaction::Required { span } => {
                        activations.push(Activation {
                            trigger: ActivationTrigger::OnDemand,
                            gets: Vec::new(),
                            grouping: None,
                            publish: PublishMode::No,
                            span: *span,
                        });
                    }
                }
            }
            if !decl.publishes() && !decl.is_required() {
                self.diags.push(Diagnostic::warning(
                    "W0302",
                    format!(
                        "context `{}` neither publishes nor declares `when required`; \
                         its value can never be observed",
                        decl.name
                    ),
                    decl.name.span,
                ));
            }
            let annotations = self.resolve_annotations(&decl.annotations);
            self.model.contexts.insert(
                decl.name.name.clone(),
                Context {
                    name: decl.name.name.clone(),
                    output,
                    activations,
                    annotations,
                    span: decl.name.span,
                },
            );
        }

        // Second pass, with all contexts resolved: validate publish/required
        // constraints on context-to-context references.
        for decl in self.spec.contexts() {
            for interaction in &decl.interactions {
                let (trigger, gets) = match interaction {
                    ast::Interaction::Provided { trigger, gets, .. } => (Some(trigger), gets),
                    ast::Interaction::Periodic { gets, .. } => (None, gets),
                    ast::Interaction::Required { .. } => continue,
                };
                if let Some(ast::DataRef::Context(name)) = trigger {
                    if let Some(target) = self.model.contexts.get(&name.name) {
                        if !target.publishes() {
                            self.diags.push(Diagnostic::error(
                                "E0225",
                                format!(
                                    "context `{}` subscribes to `{name}`, but `{name}` \
                                     never publishes (all its interactions are `no publish`)",
                                    decl.name
                                ),
                                name.span,
                            ));
                        }
                    }
                }
                for get in gets {
                    if let ast::DataRef::Context(name) = get {
                        if let Some(target) = self.model.contexts.get(&name.name) {
                            if !target.is_required() {
                                self.diags.push(Diagnostic::error(
                                    "E0224",
                                    format!(
                                        "`get {name}` requires context `{name}` to declare \
                                         `when required` so it can be queried on demand",
                                    ),
                                    name.span,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    fn lint_grouped_output(
        &mut self,
        ctx_name: &ast::Ident,
        output: &Type,
        grouping: &Option<GroupingModel>,
        span: Span,
    ) {
        if grouping.is_some() && !matches!(output, Type::Array(_)) {
            self.diags.push(Diagnostic::warning(
                "W0301",
                format!(
                    "context `{ctx_name}` groups readings by an attribute but its output \
                     type `{output}` is not an array; one value per group is conventional"
                ),
                span,
            ));
        }
    }

    // ---- phase 6: controllers ------------------------------------------------

    fn resolve_controllers(&mut self) {
        for decl in self.spec.controllers() {
            if self.names.get(&decl.name.name).map(|(_, s)| *s) != Some(decl.name.span) {
                continue;
            }
            let mut bindings = Vec::new();
            for interaction in &decl.interactions {
                match self.name_kind(&interaction.context.name) {
                    Some(NameKind::Context) => {
                        if let Some(ctx) = self.model.contexts.get(&interaction.context.name) {
                            if !ctx.publishes() {
                                self.diags.push(Diagnostic::error(
                                    "E0241",
                                    format!(
                                        "controller `{}` subscribes to context `{}`, which \
                                         never publishes",
                                        decl.name, interaction.context
                                    ),
                                    interaction.context.span,
                                ));
                            }
                        }
                    }
                    Some(other) => {
                        self.diags.push(Diagnostic::error(
                            "E0240",
                            format!(
                                "controller `{}` must subscribe to a context, but `{}` is a {}",
                                decl.name,
                                interaction.context,
                                other.noun()
                            ),
                            interaction.context.span,
                        ));
                    }
                    None => {
                        self.diags.push(Diagnostic::error(
                            "E0240",
                            format!("unknown context `{}`", interaction.context),
                            interaction.context.span,
                        ));
                    }
                }
                let mut actions = Vec::new();
                let mut action_spans = Vec::new();
                for do_action in &interaction.actions {
                    match self.name_kind(&do_action.device.name) {
                        Some(NameKind::Device) => {
                            if let Some(dev) = self.model.devices.get(&do_action.device.name) {
                                if dev.action(&do_action.action.name).is_none() {
                                    let available: Vec<&str> =
                                        dev.actions.iter().map(|a| a.name.as_str()).collect();
                                    let mut diag = Diagnostic::error(
                                        "E0243",
                                        format!(
                                            "device `{}` has no action `{}`",
                                            do_action.device, do_action.action
                                        ),
                                        do_action.action.span,
                                    );
                                    if !available.is_empty() {
                                        diag = diag.with_note(
                                            format!("available actions: {}", available.join(", ")),
                                            None,
                                        );
                                    }
                                    self.diags.push(diag);
                                }
                            }
                        }
                        Some(other) => {
                            self.diags.push(Diagnostic::error(
                                "E0242",
                                format!(
                                    "`{}` is a {}, not a device",
                                    do_action.device,
                                    other.noun()
                                ),
                                do_action.device.span,
                            ));
                        }
                        None => {
                            self.diags.push(Diagnostic::error(
                                "E0242",
                                format!("unknown device `{}`", do_action.device),
                                do_action.device.span,
                            ));
                        }
                    }
                    actions.push((do_action.action.name.clone(), do_action.device.name.clone()));
                    action_spans.push(do_action.span);
                }
                bindings.push(ControllerBinding {
                    context: interaction.context.name.clone(),
                    actions,
                    context_span: interaction.context.span,
                    action_spans,
                });
            }
            let annotations = self.resolve_annotations(&decl.annotations);
            self.model.controllers.insert(
                decl.name.name.clone(),
                Controller {
                    name: decl.name.name.clone(),
                    bindings,
                    annotations,
                    span: decl.name.span,
                },
            );
        }
    }

    // ---- phase 7: whole-graph properties --------------------------------------

    fn detect_context_cycles(&mut self) {
        // DFS over context -> context edges (both subscriptions and gets).
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Visiting,
            Done,
        }
        let mut states: BTreeMap<&str, State> = BTreeMap::new();
        let edges: BTreeMap<&str, Vec<&str>> = self
            .model
            .contexts
            .values()
            .map(|ctx| {
                let mut out: Vec<&str> = Vec::new();
                for a in &ctx.activations {
                    if let ActivationTrigger::Context(c) = &a.trigger {
                        out.push(c.as_str());
                    }
                    for g in &a.gets {
                        if let InputRef::Context(c) = g {
                            out.push(c.as_str());
                        }
                    }
                }
                (ctx.name.as_str(), out)
            })
            .collect();

        fn dfs<'m>(
            node: &'m str,
            edges: &BTreeMap<&'m str, Vec<&'m str>>,
            states: &mut BTreeMap<&'m str, State>,
            stack: &mut Vec<&'m str>,
        ) -> Option<Vec<String>> {
            match states.get(node) {
                Some(State::Done) => return None,
                Some(State::Visiting) => {
                    let pos = stack.iter().position(|n| *n == node).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[pos..].iter().map(|s| (*s).to_owned()).collect();
                    cycle.push(node.to_owned());
                    return Some(cycle);
                }
                None => {}
            }
            states.insert(node, State::Visiting);
            stack.push(node);
            if let Some(nexts) = edges.get(node) {
                for next in nexts {
                    if edges.contains_key(next) {
                        if let Some(cycle) = dfs(next, edges, states, stack) {
                            return Some(cycle);
                        }
                    }
                }
            }
            stack.pop();
            states.insert(node, State::Done);
            None
        }

        let roots: Vec<&str> = edges.keys().copied().collect();
        for root in roots {
            let mut stack = Vec::new();
            if let Some(cycle) = dfs(root, &edges, &mut states, &mut stack) {
                let names = self.names.clone();
                let span = names
                    .get(cycle[0].as_str())
                    .map_or(Span::DUMMY, |(_, s)| *s);
                self.diags.push(Diagnostic::error(
                    "E0229",
                    format!("cycle among context subscriptions: {}", cycle.join(" -> ")),
                    span,
                ));
                return; // one cycle report is enough to act on
            }
        }
    }

    fn lint_unused(&mut self) {
        for ctx in self.model.contexts.values() {
            if ctx.publishes() && self.model_subscriber_count(&ctx.name) == 0 {
                let span = self.names.get(&ctx.name).map_or(Span::DUMMY, |(_, s)| *s);
                self.diags.push(Diagnostic::warning(
                    "W0303",
                    format!(
                        "context `{}` publishes values but no context or controller \
                         subscribes to it",
                        ctx.name
                    ),
                    span,
                ));
            }
        }
    }

    fn model_subscriber_count(&self, context: &str) -> usize {
        self.model.subscribers_of_context(context).len()
    }
}

fn convert_publish(p: ast::Publish) -> PublishMode {
    match p {
        ast::Publish::Always => PublishMode::Always,
        ast::Publish::Maybe => PublishMode::Maybe,
        ast::Publish::No => PublishMode::No,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> (Option<CheckedSpec>, Diagnostics) {
        let (spec, parse_diags) = parse(src);
        assert!(
            !parse_diags.has_errors(),
            "parse errors in test fixture: {parse_diags:?}"
        );
        check(&spec)
    }

    fn expect_error(src: &str, code: &str) {
        let (model, diags) = check_src(src);
        assert!(
            diags.find(code).is_some(),
            "expected {code}, got: {diags:?}"
        );
        assert!(model.is_none());
    }

    fn expect_warning(src: &str, code: &str) {
        let (model, diags) = check_src(src);
        assert!(
            diags.find(code).is_some(),
            "expected {code}, got: {diags:?}"
        );
        assert!(model.is_some(), "warnings must not block: {diags:?}");
    }

    fn expect_clean(src: &str) -> CheckedSpec {
        let (model, diags) = check_src(src);
        assert!(diags.is_empty(), "expected clean check, got: {diags:?}");
        model.unwrap()
    }

    #[test]
    fn full_cooker_spec_checks_cleanly() {
        let model = expect_clean(
            r#"
            device Clock { source tickSecond as Integer; }
            device Cooker { source consumption as Float; action On; action Off; }
            device TvPrompter {
              source answer as String indexed by questionId as String;
              action askQuestion(question as String);
            }
            context Alert as Integer {
              when provided tickSecond from Clock
                get consumption from Cooker
                maybe publish;
            }
            controller Notify {
              when provided Alert do askQuestion on TvPrompter;
            }
            context RemoteTurnOff as Boolean {
              when provided answer from TvPrompter
                get consumption from Cooker
                maybe publish;
            }
            controller TurnOff {
              when provided RemoteTurnOff do Off on Cooker;
            }
            "#,
        );
        assert_eq!(model.devices().count(), 3);
        assert_eq!(model.contexts().count(), 2);
        assert_eq!(model.controllers().count(), 2);
    }

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        expect_error(
            "device X { source s as Integer; } structure X { f as Integer; }",
            "E0201",
        );
    }

    #[test]
    fn unknown_parent_rejected() {
        expect_error("device D extends Ghost { }", "E0202");
    }

    #[test]
    fn parent_must_be_device() {
        expect_error(
            "structure S { f as Integer; } device D extends S { }",
            "E0202",
        );
    }

    #[test]
    fn inheritance_cycle_rejected() {
        expect_error(
            "device A extends B { } device B extends C { } device C extends A { }",
            "E0203",
        );
    }

    #[test]
    fn self_inheritance_rejected() {
        expect_error("device A extends A { }", "E0203");
    }

    #[test]
    fn duplicate_member_rejected() {
        expect_error(
            "device D { source s as Integer; source s as Float; }",
            "E0204",
        );
    }

    #[test]
    fn override_of_inherited_member_rejected() {
        expect_error(
            r#"
            device Base { action update(status as String); }
            device Child extends Base { action update(status as String); }
            "#,
            "E0205",
        );
    }

    #[test]
    fn unknown_type_rejected() {
        expect_error("device D { source s as Mystery; }", "E0206");
    }

    #[test]
    fn device_used_as_type_rejected() {
        expect_error(
            "device D { source s as Integer; } device E { source t as D; }",
            "E0206",
        );
    }

    #[test]
    fn duplicate_struct_field_rejected() {
        expect_error("structure S { f as Integer; f as Float; }", "E0210");
    }

    #[test]
    fn duplicate_enum_variant_rejected() {
        expect_error("enumeration E { A, A }", "E0211");
    }

    #[test]
    fn empty_enum_rejected() {
        expect_error("enumeration E { }", "E0212");
    }

    #[test]
    fn unknown_device_in_trigger_rejected() {
        expect_error(
            "context C as Integer { when provided s from Ghost always publish; }",
            "E0220",
        );
    }

    #[test]
    fn unknown_source_rejected_with_suggestions() {
        let (_, diags) = check_src(
            r#"
            device Cooker { source consumption as Float; }
            context C as Integer {
              when provided power from Cooker always publish;
            }
            "#,
        );
        let diag = diags.find("E0221").expect("E0221");
        assert!(
            diag.notes.iter().any(|(n, _)| n.contains("consumption")),
            "{diag:?}"
        );
    }

    #[test]
    fn unknown_context_trigger_rejected() {
        expect_error(
            "context C as Integer { when provided Ghost always publish; }",
            "E0222",
        );
    }

    #[test]
    fn scc_violation_context_subscribing_to_controller() {
        expect_error(
            r#"
            device D { source s as Integer; action a; }
            context C1 as Integer { when provided s from D always publish; }
            controller Ctl { when provided C1 do a on D; }
            context C2 as Integer { when provided Ctl always publish; }
            "#,
            "E0223",
        );
    }

    #[test]
    fn get_of_non_required_context_rejected() {
        expect_error(
            r#"
            device D { source s as Integer; }
            context A as Integer { when provided s from D always publish; }
            context B as Integer {
              when provided s from D get A always publish;
            }
            "#,
            "E0224",
        );
    }

    #[test]
    fn get_of_required_context_allowed() {
        expect_clean(
            r#"
            device D { source s as Integer; action act; }
            context A as Integer {
              when periodic s from D <1 min> no publish;
              when required;
            }
            context B as Integer {
              when provided s from D get A always publish;
            }
            controller Ctl { when provided B do act on D; }
            "#,
        );
    }

    #[test]
    fn subscription_to_non_publishing_context_rejected() {
        expect_error(
            r#"
            device D { source s as Integer; }
            context A as Integer {
              when periodic s from D <1 min> no publish;
              when required;
            }
            context B as Integer { when provided A always publish; }
            "#,
            "E0225",
        );
    }

    #[test]
    fn grouping_requires_device_trigger() {
        expect_error(
            r#"
            device D { source s as Integer; action a; }
            context A as Integer { when provided s from D always publish; }
            context B as Integer[] {
              when provided A grouped by lot always publish;
            }
            controller Ctl { when provided B do a on D; }
            "#,
            "E0226",
        );
    }

    #[test]
    fn grouping_attribute_must_exist() {
        expect_error(
            r#"
            device Sensor { source presence as Boolean; }
            context C as Integer[] {
              when periodic presence from Sensor <10 min>
                grouped by parkingLot always publish;
            }
            "#,
            "E0227",
        );
    }

    #[test]
    fn float_attribute_cannot_group() {
        expect_error(
            r#"
            device Sensor {
              attribute position as Float;
              source presence as Boolean;
            }
            context C as Integer[] {
              when periodic presence from Sensor <10 min>
                grouped by position always publish;
            }
            "#,
            "E0301",
        );
    }

    #[test]
    fn context_cycle_rejected() {
        expect_error(
            r#"
            device D { source s as Integer; }
            context A as Integer { when provided B always publish; }
            context B as Integer { when provided A always publish; }
            "#,
            "E0229",
        );
    }

    #[test]
    fn zero_period_rejected() {
        expect_error(
            r#"
            device D { source s as Integer; }
            context C as Integer { when periodic s from D <0 min> always publish; }
            "#,
            "E0230",
        );
    }

    #[test]
    fn controller_unknown_context_rejected() {
        expect_error(
            "device D { action a; } controller C { when provided Ghost do a on D; }",
            "E0240",
        );
    }

    #[test]
    fn controller_on_non_publishing_context_rejected() {
        expect_error(
            r#"
            device D { source s as Integer; action a; }
            context A as Integer {
              when periodic s from D <1 min> no publish;
              when required;
            }
            controller C { when provided A do a on D; }
            "#,
            "E0241",
        );
    }

    #[test]
    fn controller_unknown_device_rejected() {
        expect_error(
            r#"
            device D { source s as Integer; }
            context A as Integer { when provided s from D always publish; }
            controller C { when provided A do a on Ghost; }
            "#,
            "E0242",
        );
    }

    #[test]
    fn controller_unknown_action_rejected() {
        expect_error(
            r#"
            device D { source s as Integer; action real; }
            context A as Integer { when provided s from D always publish; }
            controller C { when provided A do fake on D; }
            "#,
            "E0243",
        );
    }

    #[test]
    fn invalid_error_policy_rejected() {
        expect_error(
            r#"
            @error(policy = "explode")
            device D { source s as Integer; }
            "#,
            "E0250",
        );
    }

    #[test]
    fn valid_error_policy_accepted() {
        let (model, diags) = check_src(
            r#"
            @error(policy = "retry", attempts = 3)
            device D { source s as Integer; action a; }
            context C as Integer { when provided s from D always publish; }
            controller Ct { when provided C do a on D; }
            "#,
        );
        assert!(!diags.has_errors(), "{diags:?}");
        let model = model.unwrap();
        let ann = &model.device("D").unwrap().annotations[0];
        assert_eq!(ann.name, "error");
        assert_eq!(ann.arg("attempts").and_then(AnnotationArg::as_int), Some(3));
        assert_eq!(
            ann.arg("policy").and_then(AnnotationArg::as_str),
            Some("retry")
        );
    }

    #[test]
    fn error_without_policy_rejected() {
        expect_error(
            r#"
            @error(attempts = 3)
            device D { source s as Integer; }
            "#,
            "E0250",
        );
    }

    #[test]
    fn error_with_bad_attempts_rejected() {
        expect_error(
            r#"
            @error(policy = "retry", attempts = 0)
            device D { source s as Integer; }
            "#,
            "E0250",
        );
        expect_error(
            r#"
            @error(policy = "retry", attempts = "three")
            device D { source s as Integer; }
            "#,
            "E0250",
        );
    }

    #[test]
    fn error_with_non_action_fallback_rejected() {
        expect_error(
            r#"
            @error(policy = "retry", fallback = 7)
            device D { source s as Integer; action safe; }
            "#,
            "E0250",
        );
    }

    #[test]
    fn unknown_error_argument_warned() {
        expect_warning(
            r#"
            @error(policy = "retry", atempts = 3)
            device D { source s as Integer; action a; }
            context C as Integer { when provided s from D always publish; }
            controller Ct { when provided C do a on D; }
            "#,
            "W0308",
        );
    }

    #[test]
    fn fallback_must_name_a_declared_action() {
        expect_error(
            r#"
            @error(policy = "retry", fallback = "vanish")
            device D { source s as Integer; action safe; }
            "#,
            "E0252",
        );
    }

    #[test]
    fn fallback_must_be_parameterless() {
        expect_error(
            r#"
            @error(policy = "retry", fallback = "adjust")
            device D { source s as Integer; action adjust(level as Integer); }
            "#,
            "E0252",
        );
    }

    #[test]
    fn fallback_may_be_inherited() {
        let (model, diags) = check_src(
            r#"
            device Base { action neutral; }
            @error(policy = "retry", attempts = 2, fallback = "neutral")
            device D extends Base { source s as Integer; action a; }
            context C as Integer { when provided s from D always publish; }
            controller Ct { when provided C do a on D; }
            "#,
        );
        assert!(!diags.has_errors(), "{diags:?}");
        let model = model.unwrap();
        let ann = &model.device("D").unwrap().annotations[0];
        assert_eq!(
            ann.arg("fallback").and_then(AnnotationArg::as_str),
            Some("neutral")
        );
    }

    #[test]
    fn warn_grouped_output_not_array() {
        expect_warning(
            r#"
            device Sensor {
              attribute lot as String;
              source presence as Boolean;
            }
            device Panel { action update(s as String); }
            context C as Integer {
              when periodic presence from Sensor <10 min>
                grouped by lot always publish;
            }
            controller Ct { when provided C do update on Panel; }
            "#,
            "W0301",
        );
    }

    #[test]
    fn warn_context_never_observable() {
        expect_warning(
            r#"
            device D { source s as Integer; }
            context C as Integer {
              when periodic s from D <1 min> no publish;
            }
            "#,
            "W0302",
        );
    }

    #[test]
    fn warn_published_but_unconsumed() {
        expect_warning(
            r#"
            device D { source s as Integer; }
            context C as Integer { when provided s from D always publish; }
            "#,
            "W0303",
        );
    }

    #[test]
    fn warn_window_not_multiple_of_period() {
        expect_warning(
            r#"
            device Sensor {
              attribute lot as String;
              source presence as Boolean;
            }
            device Panel { action update(s as String); }
            context C as Integer[] {
              when periodic presence from Sensor <7 min>
                grouped by lot every <1 hr>
                always publish;
            }
            controller Ct { when provided C do update on Panel; }
            "#,
            "W0305",
        );
    }

    #[test]
    fn warn_unknown_annotation() {
        expect_warning(
            r#"
            @shiny(level = 9)
            device D { source s as Integer; action a; }
            context C as Integer { when provided s from D always publish; }
            controller Ct { when provided C do a on D; }
            "#,
            "W0306",
        );
    }

    #[test]
    fn subscription_against_ancestor_source_resolves() {
        let model = expect_clean(
            r#"
            device BaseSensor { source reading as Float; }
            device Thermometer extends BaseSensor {
              attribute room as String;
            }
            device Heater { action setLevel(level as Integer); }
            context RoomTemp as Float {
              when provided reading from Thermometer always publish;
            }
            controller HeatCtl { when provided RoomTemp do setLevel on Heater; }
            "#,
        );
        let thermo = model.device("Thermometer").unwrap();
        assert_eq!(thermo.source("reading").unwrap().declared_in, "BaseSensor");
    }

    #[test]
    fn multiple_errors_reported_in_one_run() {
        let (_, diags) = check_src(
            r#"
            device D extends Ghost { source s as Mystery; }
            context C as Unknown { when provided x from Nowhere always publish; }
            "#,
        );
        assert!(diags.error_count() >= 4, "want many errors, got {diags:?}");
    }

    #[test]
    fn map_reduce_types_resolved() {
        let model = expect_clean(
            r#"
            device PresenceSensor {
              attribute parkingLot as Lot;
              source presence as Boolean;
            }
            device Panel { action update(s as String); }
            context Availability as Count[] {
              when periodic presence from PresenceSensor <10 min>
                grouped by parkingLot
                with map as Boolean reduce as Integer
                always publish;
            }
            controller P { when provided Availability do update on Panel; }
            structure Count { lot as Lot; count as Integer; }
            enumeration Lot { A, B }
            "#,
        );
        let ctx = model.context("Availability").unwrap();
        let grouping = ctx.activations[0].grouping.as_ref().unwrap();
        assert_eq!(grouping.attribute_ty, Type::Enum("Lot".into()));
        assert_eq!(grouping.map_reduce, Some((Type::Boolean, Type::Integer)));
        assert_eq!(grouping.window_ms, None);
    }

    #[test]
    fn invalid_qos_argument_rejected() {
        expect_error(
            r#"
            device D { source s as Integer; }
            @qos(latencyMs = "fast")
            context C as Integer { when provided s from D always publish; }
            "#,
            "E0251",
        );
        expect_error(
            r#"
            @qos(latencyMs = 0)
            device D { source s as Integer; }
            "#,
            "E0251",
        );
    }

    #[test]
    fn unknown_qos_argument_warns() {
        expect_warning(
            r#"
            @qos(throughput = 9)
            device D { source s as Integer; action a; }
            context C as Integer { when provided s from D always publish; }
            controller Ct { when provided C do a on D; }
            "#,
            "W0307",
        );
    }

    #[test]
    fn valid_qos_accepted() {
        let (model, diags) = check_src(
            r#"
            device D { source s as Integer; action a; }
            @qos(latencyMs = 50, priority = 2)
            context C as Integer { when provided s from D always publish; }
            controller Ct { when provided C do a on D; }
            "#,
        );
        assert!(diags.is_empty(), "{diags:?}");
        let ctx = model.unwrap();
        let ann = &ctx.context("C").unwrap().annotations[0];
        assert_eq!(
            ann.arg("latencyMs").and_then(AnnotationArg::as_int),
            Some(50)
        );
    }

    #[test]
    fn invalid_quality_argument_rejected() {
        // Coverage is a percentage: zero and >100 are both out of range.
        expect_error(
            r#"
            device D { source s as Integer; }
            @quality(coverage = 0)
            context C as Integer { when provided s from D always publish; }
            "#,
            "E0253",
        );
        expect_error(
            r#"
            device D { source s as Integer; }
            @quality(coverage = 120)
            context C as Integer { when provided s from D always publish; }
            "#,
            "E0253",
        );
        expect_error(
            r#"
            device D { source s as Integer; }
            @quality(deadlineMs = "soon")
            context C as Integer { when provided s from D always publish; }
            "#,
            "E0253",
        );
    }

    #[test]
    fn unknown_quality_argument_warns() {
        expect_warning(
            r#"
            device D { source s as Integer; action a; }
            @quality(freshness = 9)
            context C as Integer { when provided s from D always publish; }
            controller Ct { when provided C do a on D; }
            "#,
            "W0309",
        );
    }

    #[test]
    fn valid_quality_accepted() {
        let (model, diags) = check_src(
            r#"
            device D { source s as Integer; action a; }
            @quality(coverage = 80, deadlineMs = 500)
            context C as Integer { when provided s from D always publish; }
            controller Ct { when provided C do a on D; }
            "#,
        );
        assert!(diags.is_empty(), "{diags:?}");
        let ctx = model.unwrap();
        let ann = &ctx.context("C").unwrap().annotations[0];
        assert_eq!(
            ann.arg("coverage").and_then(AnnotationArg::as_int),
            Some(80)
        );
        assert_eq!(
            ann.arg("deadlineMs").and_then(AnnotationArg::as_int),
            Some(500)
        );
    }
}

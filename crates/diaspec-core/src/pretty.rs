//! Pretty-printer: renders an AST back to canonical DiaSpec source.
//!
//! The printer produces text that re-parses to an equal AST (modulo spans),
//! which the test suite uses as a round-trip invariant:
//! `parse(pretty(parse(s))) == parse(s)` for every valid `s`.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a full specification as canonical DiaSpec source text.
///
/// # Examples
///
/// ```
/// use diaspec_core::{parser::parse, pretty::pretty};
///
/// let src = "device Cooker { source consumption as Float; action Off; }";
/// let (spec, diags) = parse(src);
/// assert!(!diags.has_errors());
/// let printed = pretty(&spec);
/// assert!(printed.contains("source consumption as Float;"));
/// // Round trip: printing and re-parsing yields the same declarations.
/// let (reparsed, rediags) = parse(&printed);
/// assert!(!rediags.has_errors());
/// assert_eq!(spec.devices().count(), reparsed.devices().count());
/// ```
#[must_use]
pub fn pretty(spec: &Spec) -> String {
    let mut out = String::new();
    for (i, item) in spec.items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match item {
            Item::Device(d) => device(&mut out, d),
            Item::Context(c) => context(&mut out, c),
            Item::Controller(c) => controller(&mut out, c),
            Item::Structure(s) => structure(&mut out, s),
            Item::Enumeration(e) => enumeration(&mut out, e),
        }
    }
    out
}

fn annotations(out: &mut String, anns: &[Annotation]) {
    for ann in anns {
        let _ = write!(out, "@{}", ann.name);
        if !ann.args.is_empty() {
            out.push('(');
            for (i, (k, v)) in ann.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k} = {v}");
            }
            out.push(')');
        }
        out.push('\n');
    }
}

fn device(out: &mut String, d: &DeviceDecl) {
    annotations(out, &d.annotations);
    let _ = write!(out, "device {}", d.name);
    if let Some(parent) = &d.extends {
        let _ = write!(out, " extends {parent}");
    }
    out.push_str(" {\n");
    for a in &d.attributes {
        let _ = writeln!(out, "  attribute {} as {};", a.name, a.ty);
    }
    for s in &d.sources {
        let _ = write!(out, "  source {} as {}", s.name, s.ty);
        if let Some((idx, ty)) = &s.index {
            let _ = write!(out, " indexed by {idx} as {ty}");
        }
        out.push_str(";\n");
    }
    for a in &d.actions {
        let _ = write!(out, "  action {}", a.name);
        if !a.params.is_empty() {
            out.push('(');
            for (i, p) in a.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} as {}", p.name, p.ty);
            }
            out.push(')');
        }
        out.push_str(";\n");
    }
    out.push_str("}\n");
}

fn grouping(out: &mut String, g: &Grouping) {
    let _ = write!(out, "\n    grouped by {}", g.attribute);
    if let Some(w) = &g.window {
        let _ = write!(out, " every {w}");
    }
    if let Some(mr) = &g.map_reduce {
        let _ = write!(
            out,
            "\n    with map as {} reduce as {}",
            mr.map_ty, mr.reduce_ty
        );
    }
}

fn gets(out: &mut String, refs: &[DataRef]) {
    for g in refs {
        let _ = write!(out, "\n    get {g}");
    }
}

fn context(out: &mut String, c: &ContextDecl) {
    annotations(out, &c.annotations);
    let _ = writeln!(out, "context {} as {} {{", c.name, c.output);
    for interaction in &c.interactions {
        match interaction {
            Interaction::Provided {
                trigger,
                gets: g,
                grouping: grp,
                publish,
                ..
            } => {
                let _ = write!(out, "  when provided {trigger}");
                gets(out, g);
                if let Some(grp) = grp {
                    grouping(out, grp);
                }
                let _ = writeln!(out, "\n    {publish};");
            }
            Interaction::Periodic {
                source,
                device,
                period,
                gets: g,
                grouping: grp,
                publish,
                ..
            } => {
                let _ = write!(out, "  when periodic {source} from {device} {period}");
                gets(out, g);
                if let Some(grp) = grp {
                    grouping(out, grp);
                }
                let _ = writeln!(out, "\n    {publish};");
            }
            Interaction::Required { .. } => {
                out.push_str("  when required;\n");
            }
        }
    }
    out.push_str("}\n");
}

fn controller(out: &mut String, c: &ControllerDecl) {
    annotations(out, &c.annotations);
    let _ = writeln!(out, "controller {} {{", c.name);
    for interaction in &c.interactions {
        let _ = write!(out, "  when provided {}", interaction.context);
        for action in &interaction.actions {
            let _ = write!(out, "\n    do {} on {}", action.action, action.device);
        }
        out.push_str(";\n");
    }
    out.push_str("}\n");
}

fn structure(out: &mut String, s: &StructDecl) {
    let _ = writeln!(out, "structure {} {{", s.name);
    for f in &s.fields {
        let _ = writeln!(out, "  {} as {};", f.name, f.ty);
    }
    out.push_str("}\n");
}

fn enumeration(out: &mut String, e: &EnumDecl) {
    let _ = write!(out, "enumeration {} {{ ", e.name);
    for (i, v) in e.variants.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push_str(" }\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips spans by re-rendering: two ASTs are "equal" if they print the
    /// same canonical text.
    fn canon(src: &str) -> String {
        let (spec, diags) = parse(src);
        assert!(!diags.has_errors(), "{diags:?}");
        pretty(&spec)
    }

    #[test]
    fn round_trip_is_idempotent() {
        let src = r#"
            @qos(latencyMs = 50)
            device PresenceSensor {
              attribute parkingLot as ParkingLotEnum;
              source presence as Boolean;
            }
            device Prompter {
              source answer as String indexed by questionId as String;
              action askQuestion(question as String, timeout as Integer);
            }
            context ParkingAvailability as Availability[] {
              when periodic presence from PresenceSensor <10 min>
                grouped by parkingLot every <24 hr>
                with map as Boolean reduce as Integer
                always publish;
              when required;
            }
            context Derived as Integer {
              when provided ParkingAvailability
                get answer from Prompter
                maybe publish;
            }
            controller C {
              when provided Derived
                do askQuestion on Prompter;
            }
            structure Availability { parkingLot as ParkingLotEnum; count as Integer; }
            enumeration ParkingLotEnum { A22, B16 }
        "#;
        let once = canon(src);
        let twice = canon(&once);
        assert_eq!(once, twice, "pretty-printing must be a fixpoint");
    }

    #[test]
    fn printed_text_reparses_equivalently() {
        let src = "device D { source s as Integer; action a(x as Float); }";
        let printed = canon(src);
        let (spec1, _) = parse(src);
        let (spec2, diags) = parse(&printed);
        assert!(!diags.has_errors());
        assert_eq!(spec1.devices().count(), spec2.devices().count());
        let d1 = spec1.devices().next().unwrap();
        let d2 = spec2.devices().next().unwrap();
        assert_eq!(d1.sources.len(), d2.sources.len());
        assert_eq!(d1.actions[0].params.len(), d2.actions[0].params.len());
    }

    #[test]
    fn empty_spec_prints_empty() {
        assert_eq!(canon(""), "");
    }

    #[test]
    fn publish_modes_render() {
        let printed = canon(
            r#"
            context A as Integer { when provided x from D always publish; }
            context B as Integer { when provided x from D maybe publish; }
            context C as Integer { when provided x from D no publish; }
            "#,
        );
        assert!(printed.contains("always publish;"));
        assert!(printed.contains("maybe publish;"));
        assert!(printed.contains("no publish;"));
    }
}

//! Diagnostics produced by the lexer, parser, and semantic checker.
//!
//! All front-end phases report problems as [`Diagnostic`] values instead of
//! aborting at the first error, so a single compiler run can surface every
//! issue in a specification. Diagnostics carry a stable [`code`] (for
//! example `E0203`) so tests and tooling can match on the *kind* of problem
//! rather than on message text.
//!
//! [`code`]: Diagnostic::code

use crate::span::{SourceMap, Span};
use std::error::Error;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A style or design concern; compilation still succeeds.
    Warning,
    /// A hard error; no model or code is produced.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A single problem found in a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error vs. warning.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `E0104`.
    ///
    /// Code ranges by phase: `E00xx` lexer, `E01xx` parser, `E02xx`/`W02xx`
    /// name resolution and structure, `E03xx`/`W03xx` typing and
    /// SCC-conformance rules.
    pub code: &'static str,
    /// Human-readable description of the problem.
    pub message: String,
    /// Primary source location.
    pub span: Span,
    /// Additional context lines (e.g. "first declared here").
    pub notes: Vec<(String, Option<Span>)>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    #[must_use]
    pub fn error(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    #[must_use]
    pub fn warning(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attaches a note, optionally pointing at a second location.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>, span: Option<Span>) -> Self {
        self.notes.push((note.into(), span));
        self
    }

    /// Renders this diagnostic with a source snippet from `map`.
    #[must_use]
    pub fn render(&self, map: &SourceMap) -> String {
        let pos = map.line_col(self.span.start);
        let mut out = format!(
            "{}[{}]: {} at {pos}\n",
            self.severity, self.code, self.message
        );
        out.push_str(&map.snippet(self.span));
        for (note, nspan) in &self.notes {
            out.push('\n');
            match nspan {
                Some(s) => {
                    let npos = map.line_col(s.start);
                    out.push_str(&format!("note: {note} at {npos}\n"));
                    out.push_str(&map.snippet(*s));
                }
                None => out.push_str(&format!("note: {note}")),
            }
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// An ordered collection of diagnostics accumulated by a front-end phase.
///
/// # Examples
///
/// ```
/// use diaspec_core::diag::{Diagnostic, Diagnostics};
/// use diaspec_core::span::Span;
///
/// let mut diags = Diagnostics::new();
/// diags.push(Diagnostic::warning("W0301", "unused context", Span::DUMMY));
/// assert!(!diags.has_errors());
/// diags.push(Diagnostic::error("E0201", "unknown device", Span::DUMMY));
/// assert!(diags.has_errors());
/// assert_eq!(diags.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty collection.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.items.push(diag);
    }

    /// Moves all diagnostics out of `other` into `self`.
    pub fn append(&mut self, other: &mut Diagnostics) {
        self.items.append(&mut other.items);
    }

    /// Whether any diagnostic is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics (errors and warnings).
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the collection is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Iterates over the diagnostics in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.items.iter()
    }

    /// Returns the first diagnostic carrying `code`, if any.
    #[must_use]
    pub fn find(&self, code: &str) -> Option<&Diagnostic> {
        self.items.iter().find(|d| d.code == code)
    }

    /// Renders every diagnostic against `map`, separated by blank lines.
    #[must_use]
    pub fn render(&self, map: &SourceMap) -> String {
        self.items
            .iter()
            .map(|d| d.render(map))
            .collect::<Vec<_>>()
            .join("\n\n")
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Diagnostics {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<T: IntoIterator<Item = Diagnostic>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

/// Error returned by the one-shot compilation entry points when a
/// specification contains errors.
///
/// Wraps the full diagnostic set so callers can inspect or render it.
#[derive(Debug, Clone)]
pub struct CompileError {
    diagnostics: Diagnostics,
    rendered: String,
}

impl CompileError {
    /// Creates a compile error from diagnostics, pre-rendering them against
    /// the given source map for display.
    #[must_use]
    pub fn new(diagnostics: Diagnostics, map: &SourceMap) -> Self {
        let rendered = diagnostics.render(map);
        CompileError {
            diagnostics,
            rendered,
        }
    }

    /// Creates a compile error with an already-rendered report (used by
    /// multi-file compilation, which attributes spans to their files).
    #[must_use]
    pub fn from_rendered(diagnostics: Diagnostics, rendered: String) -> Self {
        CompileError {
            diagnostics,
            rendered,
        }
    }

    /// The diagnostics that caused the failure.
    #[must_use]
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "specification has {} error(s)\n{}",
            self.diagnostics.error_count(),
            self.rendered
        )
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_tracks_errors_and_warnings() {
        let mut diags = Diagnostics::new();
        assert!(diags.is_empty());
        diags.push(Diagnostic::warning("W0001", "w", Span::DUMMY));
        assert!(!diags.has_errors());
        assert_eq!(diags.error_count(), 0);
        diags.push(Diagnostic::error("E0001", "e", Span::DUMMY));
        assert!(diags.has_errors());
        assert_eq!(diags.error_count(), 1);
        assert_eq!(diags.len(), 2);
        assert!(diags.find("E0001").is_some());
        assert!(diags.find("E9999").is_none());
    }

    #[test]
    fn render_includes_code_message_and_snippet() {
        let map = SourceMap::new("context Foo as Bar {}\n");
        let d = Diagnostic::error("E0201", "unknown type `Bar`", Span::new(15, 18))
            .with_note("declare it with `structure` or `enumeration`", None);
        let rendered = d.render(&map);
        assert!(rendered.contains("E0201"), "{rendered}");
        assert!(rendered.contains("unknown type `Bar`"), "{rendered}");
        assert!(rendered.contains("^^^"), "{rendered}");
        assert!(rendered.contains("note:"), "{rendered}");
    }

    #[test]
    fn render_note_with_secondary_span() {
        let map = SourceMap::new("device A {}\ndevice A {}\n");
        let d = Diagnostic::error("E0202", "duplicate device `A`", Span::new(19, 20))
            .with_note("first declared here", Some(Span::new(7, 8)));
        let rendered = d.render(&map);
        assert!(rendered.matches('^').count() >= 2, "{rendered}");
        assert!(rendered.contains("1:8"), "{rendered}");
    }

    #[test]
    fn compile_error_displays_counts() {
        let map = SourceMap::new("x");
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::error("E0101", "boom", Span::new(0, 1)));
        let err = CompileError::new(diags, &map);
        let msg = err.to_string();
        assert!(msg.contains("1 error(s)"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert_eq!(err.diagnostics().len(), 1);
    }

    #[test]
    fn diagnostics_collect_and_extend() {
        let diags: Diagnostics = (0..3)
            .map(|_| Diagnostic::warning("W0001", "w", Span::DUMMY))
            .collect();
        assert_eq!(diags.len(), 3);
        let mut more = Diagnostics::new();
        more.extend(diags.iter().cloned());
        assert_eq!(more.len(), 3);
        assert_eq!((&more).into_iter().count(), 3);
    }
}

//! Source locations.
//!
//! Every token and AST node carries a [`Span`] pointing back into the
//! original specification text, so that diagnostics can show precise
//! locations and code generators can cite the declaration they expanded.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into a specification source text.
///
/// Spans are cheap to copy and order by their start offset. The special
/// [`Span::DUMMY`] value is used for synthesized nodes that have no source
/// location (for example, declarations built programmatically).
///
/// # Examples
///
/// ```
/// use diaspec_core::span::Span;
///
/// let span = Span::new(4, 10);
/// assert_eq!(span.len(), 6);
/// assert!(span.contains(5));
/// assert!(!span.contains(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A placeholder span for nodes that were not produced by parsing.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "span end {end} precedes start {start}");
        Span { start, end }
    }

    /// Returns the smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Number of bytes covered by this span.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this span covers zero bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether the byte offset `pos` falls inside this span.
    #[must_use]
    pub fn contains(&self, pos: usize) -> bool {
        pos >= self.start && pos < self.end
    }
}

impl Default for Span {
    /// The default span is [`Span::DUMMY`], so model values deserialized
    /// from older snapshots (without location data) still load.
    fn default() -> Self {
        Span::DUMMY
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A line/column position (both 1-based) resolved from a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets in a source text to line/column positions and renders
/// source snippets for diagnostics.
///
/// # Examples
///
/// ```
/// use diaspec_core::span::{SourceMap, Span};
///
/// let map = SourceMap::new("device Clock {\n  source tick as Integer;\n}\n");
/// let pos = map.line_col(17);
/// assert_eq!(pos.line, 2);
/// assert_eq!(pos.col, 3);
/// assert_eq!(map.line_text(2), Some("  source tick as Integer;"));
/// # let _ = map.snippet(Span::new(17, 23));
/// ```
#[derive(Debug, Clone)]
pub struct SourceMap {
    text: String,
    /// Byte offsets at which each line starts. Always begins with 0.
    line_starts: Vec<usize>,
}

impl SourceMap {
    /// Builds a source map over `text`.
    #[must_use]
    pub fn new(text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceMap { text, line_starts }
    }

    /// The full source text.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Resolves a byte offset to a 1-based line/column pair.
    ///
    /// Offsets past the end of the text resolve to the final position.
    #[must_use]
    pub fn line_col(&self, offset: usize) -> LineCol {
        let offset = offset.min(self.text.len());
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: (line_idx + 1) as u32,
            col: (offset - self.line_starts[line_idx] + 1) as u32,
        }
    }

    /// Returns the text of the 1-based line `line`, without its newline.
    #[must_use]
    pub fn line_text(&self, line: u32) -> Option<&str> {
        let idx = (line as usize).checked_sub(1)?;
        let start = *self.line_starts.get(idx)?;
        let end = self
            .line_starts
            .get(idx + 1)
            .map_or(self.text.len(), |e| *e);
        Some(self.text[start..end].trim_end_matches(['\n', '\r']))
    }

    /// Number of lines in the source.
    #[must_use]
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }

    /// Renders a two-line snippet for `span`: the offending source line and
    /// a caret underline, in the style of `rustc` diagnostics.
    #[must_use]
    pub fn snippet(&self, span: Span) -> String {
        let pos = self.line_col(span.start);
        let Some(line) = self.line_text(pos.line) else {
            return String::new();
        };
        let col = (pos.col as usize).saturating_sub(1);
        let width = span.len().clamp(1, line.len().saturating_sub(col).max(1));
        let mut out = String::new();
        out.push_str(&format!("{:>4} | {line}\n", pos.line));
        out.push_str(&format!("     | {}{}", " ".repeat(col), "^".repeat(width)));
        out
    }
}

/// A source map over several named files compiled together (the paper's
/// §III *taxonomy* usage: shared device declarations plus an application
/// design).
///
/// Files are concatenated in order; spans index into the concatenation,
/// and this map attributes them back to `(file, line, column)`.
///
/// # Examples
///
/// ```
/// use diaspec_core::span::MultiSourceMap;
///
/// let map = MultiSourceMap::new([
///     ("taxonomy.spec", "device Clock { source tick as Integer; }\n"),
///     ("app.spec", "context C as Integer { when provided tick from Clock always publish; }\n"),
/// ]);
/// let (file, pos) = map.locate(map.text().find("context").unwrap());
/// assert_eq!(file, "app.spec");
/// assert_eq!(pos.line, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MultiSourceMap {
    /// (file name, start offset in the concatenation, per-file map).
    files: Vec<(String, usize, SourceMap)>,
    text: String,
}

impl MultiSourceMap {
    /// Builds the concatenation of `files` (each terminated with a
    /// newline if missing) and its attribution map.
    #[must_use]
    pub fn new<N, T>(files: impl IntoIterator<Item = (N, T)>) -> Self
    where
        N: Into<String>,
        T: AsRef<str>,
    {
        let mut text = String::new();
        let mut entries = Vec::new();
        for (name, content) in files {
            let start = text.len();
            let content = content.as_ref();
            text.push_str(content);
            if !content.ends_with('\n') {
                text.push('\n');
            }
            entries.push((name.into(), start, SourceMap::new(content)));
        }
        MultiSourceMap {
            files: entries,
            text,
        }
    }

    /// The concatenated source text (what the parser consumes).
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Attributes a concatenation offset to its file and in-file position.
    ///
    /// Offsets past the end resolve into the last file.
    #[must_use]
    pub fn locate(&self, offset: usize) -> (&str, LineCol) {
        let idx = self
            .files
            .iter()
            .rposition(|(_, start, _)| *start <= offset)
            .unwrap_or(0);
        let (name, start, map) = &self.files[idx];
        (name.as_str(), map.line_col(offset - start))
    }

    /// Renders a snippet for `span` with its file attribution.
    #[must_use]
    pub fn snippet(&self, span: Span) -> String {
        let idx = self
            .files
            .iter()
            .rposition(|(_, start, _)| *start <= span.start)
            .unwrap_or(0);
        let (name, start, map) = &self.files[idx];
        let local_start = span.start - start;
        let local_end = span.end.saturating_sub(*start).max(local_start);
        format!(
            "--> {name}\n{}",
            map.snippet(Span::new(local_start, local_end))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_and_contains() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
        assert!(a.contains(2));
        assert!(a.contains(4));
        assert!(!a.contains(5));
        assert!(!a.contains(1));
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn span_rejects_inverted_range() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn dummy_span_is_empty() {
        assert!(Span::DUMMY.is_empty());
        assert_eq!(Span::DUMMY.len(), 0);
    }

    #[test]
    fn line_col_resolution() {
        let map = SourceMap::new("abc\ndef\n\nghi");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(3), LineCol { line: 1, col: 4 });
        assert_eq!(map.line_col(4), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(8), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(9), LineCol { line: 4, col: 1 });
        // Past-the-end clamps to the final position.
        assert_eq!(map.line_col(1000), LineCol { line: 4, col: 4 });
    }

    #[test]
    fn line_text_lookup() {
        let map = SourceMap::new("first\nsecond\r\nthird");
        assert_eq!(map.line_text(1), Some("first"));
        assert_eq!(map.line_text(2), Some("second"));
        assert_eq!(map.line_text(3), Some("third"));
        assert_eq!(map.line_text(4), None);
        assert_eq!(map.line_text(0), None);
        assert_eq!(map.line_count(), 3);
    }

    #[test]
    fn snippet_renders_caret_under_span() {
        let map = SourceMap::new("device Clock {}\n");
        let snippet = map.snippet(Span::new(7, 12));
        assert!(snippet.contains("device Clock {}"), "{snippet}");
        assert!(snippet.contains("^^^^^"), "{snippet}");
    }

    #[test]
    fn multi_source_map_attributes_offsets() {
        let map = MultiSourceMap::new([
            ("a.spec", "first file\nsecond line"),
            ("b.spec", "third file"),
        ]);
        // Start of the first file.
        let (file, pos) = map.locate(0);
        assert_eq!(file, "a.spec");
        assert_eq!(pos, LineCol { line: 1, col: 1 });
        // Second line of the first file.
        let (file, pos) = map.locate(map.text().find("second").unwrap());
        assert_eq!(file, "a.spec");
        assert_eq!(pos.line, 2);
        // The second file starts fresh at line 1.
        let (file, pos) = map.locate(map.text().find("third").unwrap());
        assert_eq!(file, "b.spec");
        assert_eq!(pos, LineCol { line: 1, col: 1 });
        // Past-the-end lands in the last file.
        let (file, _) = map.locate(10_000);
        assert_eq!(file, "b.spec");
    }

    #[test]
    fn multi_source_map_snippets_name_the_file() {
        let map = MultiSourceMap::new([("tax.spec", "device D {}"), ("app.spec", "oops here")]);
        let offset = map.text().find("oops").unwrap();
        let snippet = map.snippet(Span::new(offset, offset + 4));
        assert!(snippet.starts_with("--> app.spec\n"), "{snippet}");
        assert!(snippet.contains("^^^^"), "{snippet}");
    }

    #[test]
    fn multi_source_map_adds_missing_newlines() {
        let map = MultiSourceMap::new([("a", "x"), ("b", "y\n"), ("c", "z")]);
        assert_eq!(map.text(), "x\ny\nz\n");
    }

    #[test]
    fn snippet_for_empty_source() {
        let map = SourceMap::new("");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        let s = map.snippet(Span::new(0, 0));
        assert!(s.contains('^'));
    }
}

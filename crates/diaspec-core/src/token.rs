//! Token definitions for the DiaSpec design language.

use crate::span::Span;
use std::fmt;

/// A lexical token together with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is, including any literal payload.
    pub kind: TokenKind,
    /// Where the token appears in the source text.
    pub span: Span,
}

impl Token {
    /// Creates a token of `kind` covering `span`.
    #[must_use]
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// The set of keywords recognized by the DiaSpec grammar.
///
/// Keywords are reserved: they cannot be used as identifiers for devices,
/// contexts, sources, or any other named declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // Each variant names the keyword it represents.
pub enum Keyword {
    Device,
    Context,
    Controller,
    Structure,
    Enumeration,
    Attribute,
    Source,
    Action,
    Extends,
    As,
    Indexed,
    By,
    When,
    Provided,
    Periodic,
    Required,
    Get,
    From,
    Grouped,
    Every,
    With,
    Map,
    Reduce,
    Always,
    Maybe,
    No,
    Publish,
    Do,
    On,
}

impl Keyword {
    /// Looks up a keyword from its source spelling.
    #[must_use]
    // Not `FromStr`: lookup is infallible-by-`Option`, with no error payload.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "device" => Device,
            "context" => Context,
            "controller" => Controller,
            "structure" => Structure,
            "enumeration" => Enumeration,
            "attribute" => Attribute,
            "source" => Source,
            "action" => Action,
            "extends" => Extends,
            "as" => As,
            "indexed" => Indexed,
            "by" => By,
            "when" => When,
            "provided" => Provided,
            "periodic" => Periodic,
            "required" => Required,
            "get" => Get,
            "from" => From,
            "grouped" => Grouped,
            "every" => Every,
            "with" => With,
            "map" => Map,
            "reduce" => Reduce,
            "always" => Always,
            "maybe" => Maybe,
            "no" => No,
            "publish" => Publish,
            "do" => Do,
            "on" => On,
            _ => return None,
        })
    }

    /// The canonical source spelling of this keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Device => "device",
            Context => "context",
            Controller => "controller",
            Structure => "structure",
            Enumeration => "enumeration",
            Attribute => "attribute",
            Source => "source",
            Action => "action",
            Extends => "extends",
            As => "as",
            Indexed => "indexed",
            By => "by",
            When => "when",
            Provided => "provided",
            Periodic => "periodic",
            Required => "required",
            Get => "get",
            From => "from",
            Grouped => "grouped",
            Every => "every",
            With => "with",
            Map => "map",
            Reduce => "reduce",
            Always => "always",
            Maybe => "maybe",
            No => "no",
            Publish => "publish",
            Do => "do",
            On => "on",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of a lexical token, including literal payloads where relevant.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A reserved keyword such as `device` or `publish`.
    Kw(Keyword),
    /// An identifier such as `ParkingAvailability`.
    Ident(String),
    /// An unsigned integer literal such as `10`.
    Int(u64),
    /// A double-quoted string literal, with escapes resolved.
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `@` — introduces an annotation.
    At,
    /// `=` — used inside annotation argument lists.
    Eq,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse diagnostics.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Kw(kw) => format!("keyword `{kw}`"),
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::LBrace => "`{`".to_owned(),
            TokenKind::RBrace => "`}`".to_owned(),
            TokenKind::LParen => "`(`".to_owned(),
            TokenKind::RParen => "`)`".to_owned(),
            TokenKind::LBracket => "`[`".to_owned(),
            TokenKind::RBracket => "`]`".to_owned(),
            TokenKind::Lt => "`<`".to_owned(),
            TokenKind::Gt => "`>`".to_owned(),
            TokenKind::Semi => "`;`".to_owned(),
            TokenKind::Comma => "`,`".to_owned(),
            TokenKind::At => "`@`".to_owned(),
            TokenKind::Eq => "`=`".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Device,
            Keyword::Context,
            Keyword::Controller,
            Keyword::Structure,
            Keyword::Enumeration,
            Keyword::Attribute,
            Keyword::Source,
            Keyword::Action,
            Keyword::Extends,
            Keyword::As,
            Keyword::Indexed,
            Keyword::By,
            Keyword::When,
            Keyword::Provided,
            Keyword::Periodic,
            Keyword::Required,
            Keyword::Get,
            Keyword::From,
            Keyword::Grouped,
            Keyword::Every,
            Keyword::With,
            Keyword::Map,
            Keyword::Reduce,
            Keyword::Always,
            Keyword::Maybe,
            Keyword::No,
            Keyword::Publish,
            Keyword::Do,
            Keyword::On,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn non_keywords_are_not_keywords() {
        assert_eq!(
            Keyword::from_str("Device"),
            None,
            "keywords are case-sensitive"
        );
        assert_eq!(Keyword::from_str("devices"), None);
        assert_eq!(Keyword::from_str(""), None);
    }

    #[test]
    fn token_kind_descriptions_are_nonempty() {
        for kind in [
            TokenKind::Kw(Keyword::Device),
            TokenKind::Ident("x".into()),
            TokenKind::Int(3),
            TokenKind::Str("s".into()),
            TokenKind::LBrace,
            TokenKind::RBrace,
            TokenKind::Eof,
        ] {
            assert!(!kind.describe().is_empty());
            assert_eq!(kind.describe(), kind.to_string());
        }
    }
}

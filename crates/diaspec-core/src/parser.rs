//! Recursive-descent parser for the DiaSpec design language.
//!
//! The parser is resilient: on a syntax error it reports a diagnostic and
//! resynchronizes (at `;`, `}` or the next top-level keyword), so one run
//! reports every syntax problem in a specification. Parsing never panics on
//! any input.
//!
//! The concrete grammar follows the paper's Figures 5–8:
//!
//! ```text
//! spec        := item* EOF
//! item        := annotation* (device | context | controller
//!                             | structure | enumeration)
//! annotation  := '@' IDENT [ '(' key '=' value (',' key '=' value)* ')' ]
//! device      := 'device' IDENT ['extends' IDENT] '{' member* '}'
//! member      := 'attribute' IDENT 'as' type ';'
//!              | 'source' IDENT 'as' type ['indexed' 'by' IDENT 'as' type] ';'
//!              | 'action' IDENT ['(' param (',' param)* ')'] ';'
//! context     := 'context' IDENT 'as' type '{' interaction* '}'
//! interaction := 'when' 'provided' dataref clause* publish ';'
//!              | 'when' 'periodic' IDENT 'from' IDENT period clause* publish ';'
//!              | 'when' 'required' ';'
//! clause      := 'get' dataref
//!              | 'grouped' 'by' IDENT ['every' period]
//!                ['with' 'map' 'as' type 'reduce' 'as' type]
//! publish     := ('always' | 'maybe' | 'no') 'publish'
//! period      := '<' INT unit '>'
//! controller  := 'controller' IDENT '{' ('when' 'provided' IDENT
//!                ('do' IDENT 'on' IDENT)+ ';')* '}'
//! structure   := 'structure' IDENT '{' (IDENT 'as' type ';')* '}'
//! enumeration := 'enumeration' IDENT '{' IDENT (',' IDENT)* [','] '}'
//! type        := IDENT ['[' ']']
//! ```

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Parses DiaSpec source text into a [`Spec`] plus diagnostics.
///
/// Lexical and syntactic problems are both reported in the returned
/// [`Diagnostics`]; the returned [`Spec`] contains every item that parsed
/// successfully. Callers that need an all-or-nothing result should check
/// [`Diagnostics::has_errors`].
///
/// # Examples
///
/// ```
/// use diaspec_core::parser::parse;
///
/// let (spec, diags) = parse("device Cooker { source consumption as Float; action Off; }");
/// assert!(!diags.has_errors());
/// assert_eq!(spec.devices().count(), 1);
/// ```
#[must_use]
pub fn parse(source: &str) -> (Spec, Diagnostics) {
    let (tokens, mut diags) = lex(source);
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: Diagnostics::new(),
    };
    let spec = parser.spec();
    diags.append(&mut parser.diags);
    (spec, diags)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let tok = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Kw(k) if *k == kw)
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error_here(&mut self, expected: &str) {
        let tok = self.peek().clone();
        self.diags.push(Diagnostic::error(
            "E0101",
            format!("expected {expected}, found {}", tok.kind.describe()),
            tok.span,
        ));
    }

    fn expect_kw(&mut self, kw: Keyword) -> bool {
        if self.eat_kw(kw) {
            true
        } else {
            self.error_here(&format!("keyword `{kw}`"));
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> bool {
        if self.eat(kind) {
            true
        } else {
            self.error_here(what);
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Option<Ident> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Some(Ident::new(name, span))
            }
            _ => {
                self.error_here(what);
                None
            }
        }
    }

    /// Skips tokens until the next statement boundary inside a block:
    /// just past a `;`, or stopping before `}` / EOF.
    fn recover_in_block(&mut self) {
        loop {
            match self.peek_kind() {
                TokenKind::Semi => {
                    self.bump();
                    return;
                }
                TokenKind::RBrace | TokenKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Skips tokens until the next top-level declaration keyword or EOF.
    fn recover_top_level(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek_kind() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    self.bump();
                    if depth <= 1 {
                        return;
                    }
                    depth -= 1;
                }
                TokenKind::Kw(
                    Keyword::Device
                    | Keyword::Context
                    | Keyword::Controller
                    | Keyword::Structure
                    | Keyword::Enumeration,
                ) if depth == 0 => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn spec(&mut self) -> Spec {
        let mut items = Vec::new();
        while !self.at_eof() {
            let annotations = self.annotations();
            let start = self.peek().span;
            let item = match self.peek_kind() {
                TokenKind::Kw(Keyword::Device) => self.device(annotations).map(Item::Device),
                TokenKind::Kw(Keyword::Context) => self.context(annotations).map(Item::Context),
                TokenKind::Kw(Keyword::Controller) => {
                    self.controller(annotations).map(Item::Controller)
                }
                TokenKind::Kw(Keyword::Structure) => {
                    self.reject_annotations(&annotations, "structure");
                    self.structure().map(Item::Structure)
                }
                TokenKind::Kw(Keyword::Enumeration) => {
                    self.reject_annotations(&annotations, "enumeration");
                    self.enumeration().map(Item::Enumeration)
                }
                _ => {
                    self.error_here(
                        "a declaration (`device`, `context`, `controller`, `structure`, or `enumeration`)",
                    );
                    self.recover_top_level();
                    continue;
                }
            };
            match item {
                Some(item) => items.push(item),
                None => {
                    // The declaration parser already reported; make sure we
                    // make progress even if it bailed out early.
                    if self.peek().span == start && !self.at_eof() {
                        self.recover_top_level();
                    }
                }
            }
        }
        Spec { items }
    }

    fn reject_annotations(&mut self, annotations: &[Annotation], kind: &str) {
        for ann in annotations {
            self.diags.push(Diagnostic::error(
                "E0102",
                format!("annotations are not allowed on {kind} declarations"),
                ann.span,
            ));
        }
    }

    fn annotations(&mut self) -> Vec<Annotation> {
        let mut out = Vec::new();
        while self.peek_kind() == &TokenKind::At {
            let at_span = self.bump().span;
            let Some(name) = self.expect_ident("an annotation name") else {
                self.recover_in_block();
                continue;
            };
            let mut args = Vec::new();
            let mut end = name.span;
            if self.eat(&TokenKind::LParen) {
                loop {
                    if self.eat(&TokenKind::RParen) {
                        break;
                    }
                    let Some(key) = self.expect_ident("an annotation argument name") else {
                        self.recover_in_block();
                        break;
                    };
                    if !self.expect(&TokenKind::Eq, "`=`") {
                        self.recover_in_block();
                        break;
                    }
                    let value = match self.peek_kind().clone() {
                        TokenKind::Str(s) => {
                            self.bump();
                            AnnotationValue::Str(s)
                        }
                        TokenKind::Int(v) => {
                            self.bump();
                            AnnotationValue::Int(v)
                        }
                        TokenKind::Ident(name) => {
                            self.bump();
                            AnnotationValue::Ident(name)
                        }
                        _ => {
                            self.error_here("an annotation value (string, integer, or identifier)");
                            self.recover_in_block();
                            break;
                        }
                    };
                    args.push((key, value));
                    if self.eat(&TokenKind::RParen) {
                        break;
                    }
                    if !self.expect(&TokenKind::Comma, "`,` or `)`") {
                        break;
                    }
                }
                end = Span::new(end.start, self.tokens[self.pos.saturating_sub(1)].span.end);
            }
            out.push(Annotation {
                span: at_span.to(end),
                name,
                args,
            });
        }
        out
    }

    fn type_ref(&mut self) -> Option<TypeRef> {
        let name = self.expect_ident("a type name")?;
        let mut ty = TypeRef::Named(name);
        while self.peek_kind() == &TokenKind::LBracket {
            let l = self.bump().span;
            if !self.expect(&TokenKind::RBracket, "`]`") {
                return Some(ty);
            }
            let r = self.tokens[self.pos - 1].span;
            ty = TypeRef::Array(Box::new(ty), l.to(r));
        }
        Some(ty)
    }

    fn period(&mut self) -> Option<Duration> {
        let start = self.peek().span;
        if !self.expect(&TokenKind::Lt, "`<` starting a period, e.g. `<10 min>`") {
            return None;
        }
        let value = match *self.peek_kind() {
            TokenKind::Int(v) => {
                self.bump();
                v
            }
            _ => {
                self.error_here("an integer period value");
                return None;
            }
        };
        let unit_tok = self.peek().clone();
        let unit = match &unit_tok.kind {
            TokenKind::Ident(u) => match TimeUnit::from_str(u) {
                Some(unit) => {
                    self.bump();
                    unit
                }
                None => {
                    self.diags.push(Diagnostic::error(
                        "E0103",
                        format!("unknown time unit `{u}` (expected ms, sec, min, hr, or day)"),
                        unit_tok.span,
                    ));
                    self.bump();
                    TimeUnit::Seconds
                }
            },
            _ => {
                self.error_here("a time unit (ms, sec, min, hr, day)");
                return None;
            }
        };
        if !self.expect(&TokenKind::Gt, "`>` closing the period") {
            return None;
        }
        let end = self.tokens[self.pos - 1].span;
        Some(Duration::new(value, unit, start.to(end)))
    }

    // ---- device ----------------------------------------------------------

    fn device(&mut self, annotations: Vec<Annotation>) -> Option<DeviceDecl> {
        let start = self.peek().span;
        self.expect_kw(Keyword::Device);
        let name = self.expect_ident("a device name")?;
        let extends = if self.eat_kw(Keyword::Extends) {
            self.expect_ident("a parent device name")
        } else {
            None
        };
        if !self.expect(&TokenKind::LBrace, "`{`") {
            self.recover_top_level();
            return None;
        }
        let mut device = DeviceDecl {
            name,
            extends,
            annotations,
            attributes: Vec::new(),
            sources: Vec::new(),
            actions: Vec::new(),
            span: start,
        };
        loop {
            match self.peek_kind() {
                TokenKind::RBrace => {
                    let end = self.bump().span;
                    device.span = start.to(end);
                    return Some(device);
                }
                TokenKind::Eof => {
                    self.error_here("`}` closing the device");
                    device.span = start.to(self.peek().span);
                    return Some(device);
                }
                TokenKind::Kw(Keyword::Attribute) => {
                    if let Some(a) = self.attribute_decl() {
                        device.attributes.push(a);
                    }
                }
                TokenKind::Kw(Keyword::Source) => {
                    if let Some(s) = self.source_decl() {
                        device.sources.push(s);
                    }
                }
                TokenKind::Kw(Keyword::Action) => {
                    if let Some(a) = self.action_decl() {
                        device.actions.push(a);
                    }
                }
                _ => {
                    self.error_here("`attribute`, `source`, `action`, or `}`");
                    self.recover_in_block();
                }
            }
        }
    }

    fn attribute_decl(&mut self) -> Option<AttributeDecl> {
        let start = self.bump().span; // `attribute`
        let name = self.expect_ident("an attribute name").or_else(|| {
            self.recover_in_block();
            None
        })?;
        if !self.expect_kw(Keyword::As) {
            self.recover_in_block();
            return None;
        }
        let ty = self.type_ref().or_else(|| {
            self.recover_in_block();
            None
        })?;
        self.expect(&TokenKind::Semi, "`;`");
        let end = self.tokens[self.pos - 1].span;
        Some(AttributeDecl {
            name,
            ty,
            span: start.to(end),
        })
    }

    fn source_decl(&mut self) -> Option<SourceDecl> {
        let start = self.bump().span; // `source`
        let name = self.expect_ident("a source name").or_else(|| {
            self.recover_in_block();
            None
        })?;
        if !self.expect_kw(Keyword::As) {
            self.recover_in_block();
            return None;
        }
        let ty = self.type_ref().or_else(|| {
            self.recover_in_block();
            None
        })?;
        let index = if self.eat_kw(Keyword::Indexed) {
            if !self.expect_kw(Keyword::By) {
                self.recover_in_block();
                return None;
            }
            let idx_name = self.expect_ident("an index name").or_else(|| {
                self.recover_in_block();
                None
            })?;
            if !self.expect_kw(Keyword::As) {
                self.recover_in_block();
                return None;
            }
            let idx_ty = self.type_ref().or_else(|| {
                self.recover_in_block();
                None
            })?;
            Some((idx_name, idx_ty))
        } else {
            None
        };
        self.expect(&TokenKind::Semi, "`;`");
        let end = self.tokens[self.pos - 1].span;
        Some(SourceDecl {
            name,
            ty,
            index,
            span: start.to(end),
        })
    }

    fn action_decl(&mut self) -> Option<ActionDecl> {
        let start = self.bump().span; // `action`
        let name = self.expect_ident("an action name").or_else(|| {
            self.recover_in_block();
            None
        })?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                let Some(pname) = self.expect_ident("a parameter name") else {
                    self.recover_in_block();
                    return None;
                };
                if !self.expect_kw(Keyword::As) {
                    self.recover_in_block();
                    return None;
                }
                let Some(pty) = self.type_ref() else {
                    self.recover_in_block();
                    return None;
                };
                params.push(Param {
                    name: pname,
                    ty: pty,
                });
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                if !self.expect(&TokenKind::Comma, "`,` or `)`") {
                    self.recover_in_block();
                    return None;
                }
            }
        }
        self.expect(&TokenKind::Semi, "`;`");
        let end = self.tokens[self.pos - 1].span;
        Some(ActionDecl {
            name,
            params,
            span: start.to(end),
        })
    }

    // ---- context ---------------------------------------------------------

    fn context(&mut self, annotations: Vec<Annotation>) -> Option<ContextDecl> {
        let start = self.peek().span;
        self.expect_kw(Keyword::Context);
        let name = self.expect_ident("a context name")?;
        if !self.expect_kw(Keyword::As) {
            self.recover_top_level();
            return None;
        }
        let output = self.type_ref().or_else(|| {
            self.recover_top_level();
            None
        })?;
        if !self.expect(&TokenKind::LBrace, "`{`") {
            self.recover_top_level();
            return None;
        }
        let mut ctx = ContextDecl {
            name,
            output,
            annotations,
            interactions: Vec::new(),
            span: start,
        };
        loop {
            match self.peek_kind() {
                TokenKind::RBrace => {
                    let end = self.bump().span;
                    ctx.span = start.to(end);
                    return Some(ctx);
                }
                TokenKind::Eof => {
                    self.error_here("`}` closing the context");
                    ctx.span = start.to(self.peek().span);
                    return Some(ctx);
                }
                TokenKind::Kw(Keyword::When) => {
                    if let Some(i) = self.interaction() {
                        ctx.interactions.push(i);
                    }
                }
                _ => {
                    self.error_here("`when` or `}`");
                    self.recover_in_block();
                }
            }
        }
    }

    fn data_ref(&mut self) -> Option<DataRef> {
        let first = self.expect_ident("a source or context name")?;
        if self.eat_kw(Keyword::From) {
            let device = self.expect_ident("a device name")?;
            Some(DataRef::DeviceSource {
                source: first,
                device,
            })
        } else {
            Some(DataRef::Context(first))
        }
    }

    /// Parses the shared tail of an interaction: `get`/`grouped by` clauses
    /// followed by the publish mode. Returns `(gets, grouping, publish)`.
    fn interaction_tail(&mut self) -> Option<(Vec<DataRef>, Option<Grouping>, Publish)> {
        let mut gets = Vec::new();
        let mut grouping: Option<Grouping> = None;
        loop {
            if self.at_kw(Keyword::Get) {
                self.bump();
                let Some(r) = self.data_ref() else {
                    self.recover_in_block();
                    return None;
                };
                gets.push(r);
            } else if self.at_kw(Keyword::Grouped) {
                let gstart = self.bump().span;
                if !self.expect_kw(Keyword::By) {
                    self.recover_in_block();
                    return None;
                }
                let Some(attribute) = self.expect_ident("an attribute name to group by") else {
                    self.recover_in_block();
                    return None;
                };
                let window = if self.eat_kw(Keyword::Every) {
                    Some(self.period().or_else(|| {
                        self.recover_in_block();
                        None
                    })?)
                } else {
                    None
                };
                let map_reduce = if self.eat_kw(Keyword::With) {
                    if !self.expect_kw(Keyword::Map) {
                        self.recover_in_block();
                        return None;
                    }
                    if !self.expect_kw(Keyword::As) {
                        self.recover_in_block();
                        return None;
                    }
                    let mstart = self.peek().span;
                    let Some(map_ty) = self.type_ref() else {
                        self.recover_in_block();
                        return None;
                    };
                    if !self.expect_kw(Keyword::Reduce) {
                        self.recover_in_block();
                        return None;
                    }
                    if !self.expect_kw(Keyword::As) {
                        self.recover_in_block();
                        return None;
                    }
                    let Some(reduce_ty) = self.type_ref() else {
                        self.recover_in_block();
                        return None;
                    };
                    let span = mstart.to(reduce_ty.span());
                    Some(MapReduceSig {
                        map_ty,
                        reduce_ty,
                        span,
                    })
                } else {
                    None
                };
                let gend = self.tokens[self.pos - 1].span;
                let clause = Grouping {
                    attribute,
                    window,
                    map_reduce,
                    span: gstart.to(gend),
                };
                if grouping.is_some() {
                    self.diags.push(Diagnostic::error(
                        "E0104",
                        "an interaction may have at most one `grouped by` clause",
                        clause.span,
                    ));
                } else {
                    grouping = Some(clause);
                }
            } else {
                break;
            }
        }
        let publish = if self.eat_kw(Keyword::Always) {
            Publish::Always
        } else if self.eat_kw(Keyword::Maybe) {
            Publish::Maybe
        } else if self.eat_kw(Keyword::No) {
            Publish::No
        } else {
            self.error_here("`always publish`, `maybe publish`, or `no publish`");
            self.recover_in_block();
            return None;
        };
        if !self.expect_kw(Keyword::Publish) {
            self.recover_in_block();
            return None;
        }
        self.expect(&TokenKind::Semi, "`;`");
        Some((gets, grouping, publish))
    }

    fn interaction(&mut self) -> Option<Interaction> {
        let start = self.bump().span; // `when`
        if self.eat_kw(Keyword::Required) {
            self.expect(&TokenKind::Semi, "`;`");
            let end = self.tokens[self.pos - 1].span;
            return Some(Interaction::Required {
                span: start.to(end),
            });
        }
        if self.eat_kw(Keyword::Provided) {
            let trigger = self.data_ref().or_else(|| {
                self.recover_in_block();
                None
            })?;
            let (gets, grouping, publish) = self.interaction_tail()?;
            let end = self.tokens[self.pos - 1].span;
            return Some(Interaction::Provided {
                trigger,
                gets,
                grouping,
                publish,
                span: start.to(end),
            });
        }
        if self.eat_kw(Keyword::Periodic) {
            let source = self.expect_ident("a source name").or_else(|| {
                self.recover_in_block();
                None
            })?;
            if !self.expect_kw(Keyword::From) {
                self.recover_in_block();
                return None;
            }
            let device = self.expect_ident("a device name").or_else(|| {
                self.recover_in_block();
                None
            })?;
            let period = self.period().or_else(|| {
                self.recover_in_block();
                None
            })?;
            let (gets, grouping, publish) = self.interaction_tail()?;
            let end = self.tokens[self.pos - 1].span;
            return Some(Interaction::Periodic {
                source,
                device,
                period,
                gets,
                grouping,
                publish,
                span: start.to(end),
            });
        }
        self.error_here("`provided`, `periodic`, or `required` after `when`");
        self.recover_in_block();
        None
    }

    // ---- controller ------------------------------------------------------

    fn controller(&mut self, annotations: Vec<Annotation>) -> Option<ControllerDecl> {
        let start = self.peek().span;
        self.expect_kw(Keyword::Controller);
        let name = self.expect_ident("a controller name")?;
        if !self.expect(&TokenKind::LBrace, "`{`") {
            self.recover_top_level();
            return None;
        }
        let mut ctrl = ControllerDecl {
            name,
            annotations,
            interactions: Vec::new(),
            span: start,
        };
        loop {
            match self.peek_kind() {
                TokenKind::RBrace => {
                    let end = self.bump().span;
                    ctrl.span = start.to(end);
                    return Some(ctrl);
                }
                TokenKind::Eof => {
                    self.error_here("`}` closing the controller");
                    ctrl.span = start.to(self.peek().span);
                    return Some(ctrl);
                }
                TokenKind::Kw(Keyword::When) => {
                    if let Some(i) = self.controller_interaction() {
                        ctrl.interactions.push(i);
                    }
                }
                _ => {
                    self.error_here("`when` or `}`");
                    self.recover_in_block();
                }
            }
        }
    }

    fn controller_interaction(&mut self) -> Option<ControllerInteraction> {
        let start = self.bump().span; // `when`
        if !self.expect_kw(Keyword::Provided) {
            self.recover_in_block();
            return None;
        }
        let context = self.expect_ident("a context name").or_else(|| {
            self.recover_in_block();
            None
        })?;
        let mut actions = Vec::new();
        while self.at_kw(Keyword::Do) {
            let dstart = self.bump().span;
            let Some(action) = self.expect_ident("an action name") else {
                self.recover_in_block();
                return None;
            };
            if !self.expect_kw(Keyword::On) {
                self.recover_in_block();
                return None;
            }
            let Some(device) = self.expect_ident("a device name") else {
                self.recover_in_block();
                return None;
            };
            let dend = device.span;
            actions.push(DoAction {
                action,
                device,
                span: dstart.to(dend),
            });
        }
        if actions.is_empty() {
            self.error_here("at least one `do <action> on <device>` clause");
            self.recover_in_block();
            return None;
        }
        self.expect(&TokenKind::Semi, "`;`");
        let end = self.tokens[self.pos - 1].span;
        Some(ControllerInteraction {
            context,
            actions,
            span: start.to(end),
        })
    }

    // ---- structure / enumeration ------------------------------------------

    fn structure(&mut self) -> Option<StructDecl> {
        let start = self.bump().span; // `structure`
        let name = self.expect_ident("a structure name")?;
        if !self.expect(&TokenKind::LBrace, "`{`") {
            self.recover_top_level();
            return None;
        }
        let mut fields = Vec::new();
        loop {
            match self.peek_kind().clone() {
                TokenKind::RBrace => {
                    let end = self.bump().span;
                    return Some(StructDecl {
                        name,
                        fields,
                        span: start.to(end),
                    });
                }
                TokenKind::Eof => {
                    self.error_here("`}` closing the structure");
                    return Some(StructDecl {
                        name,
                        fields,
                        span: start.to(self.peek().span),
                    });
                }
                TokenKind::Ident(fname) => {
                    let fspan = self.bump().span;
                    if !self.expect_kw(Keyword::As) {
                        self.recover_in_block();
                        continue;
                    }
                    let Some(ty) = self.type_ref() else {
                        self.recover_in_block();
                        continue;
                    };
                    self.expect(&TokenKind::Semi, "`;`");
                    let end = self.tokens[self.pos - 1].span;
                    fields.push(FieldDecl {
                        name: Ident::new(fname, fspan),
                        ty,
                        span: fspan.to(end),
                    });
                }
                _ => {
                    self.error_here("a field name or `}`");
                    self.recover_in_block();
                }
            }
        }
    }

    fn enumeration(&mut self) -> Option<EnumDecl> {
        let start = self.bump().span; // `enumeration`
        let name = self.expect_ident("an enumeration name")?;
        if !self.expect(&TokenKind::LBrace, "`{`") {
            self.recover_top_level();
            return None;
        }
        let mut variants = Vec::new();
        loop {
            match self.peek_kind().clone() {
                TokenKind::RBrace => {
                    let end = self.bump().span;
                    return Some(EnumDecl {
                        name,
                        variants,
                        span: start.to(end),
                    });
                }
                TokenKind::Eof => {
                    self.error_here("`}` closing the enumeration");
                    return Some(EnumDecl {
                        name,
                        variants,
                        span: start.to(self.peek().span),
                    });
                }
                TokenKind::Ident(vname) => {
                    let vspan = self.bump().span;
                    variants.push(Ident::new(vname, vspan));
                    if !self.eat(&TokenKind::Comma)
                        && !matches!(self.peek_kind(), TokenKind::RBrace)
                    {
                        self.error_here("`,` or `}`");
                        self.recover_in_block();
                    }
                }
                _ => {
                    self.error_here("a variant name or `}`");
                    self.recover_in_block();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Spec {
        let (spec, diags) = parse(src);
        assert!(
            !diags.has_errors(),
            "unexpected errors:\n{}",
            diags.render(&crate::span::SourceMap::new(src))
        );
        spec
    }

    #[test]
    fn parses_figure5_cooker_devices() {
        let spec = parse_ok(
            r#"
            device Clock {
              source tickSecond as Integer;
              source tickMinute as Integer;
              source tickHour as Integer;
            }
            device Cooker {
              source consumption as Float;
              action On;
              action Off;
            }
            device Prompter {
              source answer as String indexed by questionId as String;
              action askQuestion;
            }
            "#,
        );
        assert_eq!(spec.devices().count(), 3);
        let clock = spec.devices().next().unwrap();
        assert_eq!(clock.sources.len(), 3);
        let prompter = spec.devices().nth(2).unwrap();
        let answer = &prompter.sources[0];
        assert!(answer.index.is_some());
        assert_eq!(answer.index.as_ref().unwrap().0.as_str(), "questionId");
    }

    #[test]
    fn parses_figure6_parking_devices_with_inheritance() {
        let spec = parse_ok(
            r#"
            device PresenceSensor {
              attribute parkingLot as ParkingLotEnum;
              source presence as Boolean;
            }
            device DisplayPanel {
              action update(status as String);
            }
            device ParkingEntrancePanel extends DisplayPanel {
              attribute location as ParkingLotEnum;
            }
            device CityEntrancePanel extends DisplayPanel {
              attribute location as CityEntranceEnum;
            }
            device Messenger {
              action sendMessage(message as String);
            }
            enumeration ParkingLotEnum { A22, B16, D6 }
            enumeration CityEntranceEnum { NORTH_EAST_14Y, SOUTH_EAST_1A }
            "#,
        );
        assert_eq!(spec.devices().count(), 5);
        assert_eq!(spec.enumerations().count(), 2);
        let pep = spec.devices().nth(2).unwrap();
        assert_eq!(pep.extends.as_ref().unwrap().as_str(), "DisplayPanel");
        let panel = spec.devices().nth(1).unwrap();
        assert_eq!(panel.actions[0].params.len(), 1);
    }

    #[test]
    fn parses_figure7_cooker_design() {
        let spec = parse_ok(
            r#"
            context Alert as Integer {
              when provided tickSecond from Clock
                get consumption from Cooker
                maybe publish;
            }
            controller Notify {
              when provided Alert
                do askQuestion on TvPrompter;
            }
            context RemoteTurnOff as Boolean {
              when provided answer from TvPrompter
                get consumption from Cooker
                maybe publish;
            }
            controller TurnOff {
              when provided RemoteTurnOff
                do Off on Cooker;
            }
            "#,
        );
        assert_eq!(spec.contexts().count(), 2);
        assert_eq!(spec.controllers().count(), 2);
        let alert = spec.contexts().next().unwrap();
        match &alert.interactions[0] {
            Interaction::Provided {
                trigger,
                gets,
                publish,
                ..
            } => {
                assert_eq!(trigger.to_string(), "tickSecond from Clock");
                assert_eq!(gets.len(), 1);
                assert_eq!(*publish, Publish::Maybe);
            }
            other => panic!("expected provided interaction, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure8_parking_design() {
        let spec = parse_ok(
            r#"
            context ParkingAvailability as Availability[] {
              when periodic presence from PresenceSensor <10 min>
                grouped by parkingLot
                with map as Boolean reduce as Integer
                always publish;
            }
            context ParkingUsagePattern as UsagePattern[] {
              when periodic presence from PresenceSensor <1 hr>
                grouped by parkingLot
                no publish;
              when required;
            }
            context AverageOccupancy as ParkingOccupancy[] {
              when periodic presence from PresenceSensor <10 min>
                grouped by parkingLot every <24 hr>
                always publish;
            }
            context ParkingSuggestion as ParkingLotEnum[] {
              when provided ParkingAvailability
                get ParkingUsagePattern
                always publish;
            }
            controller ParkingEntrancePanelController {
              when provided ParkingAvailability
                do update on ParkingEntrancePanel;
            }
            structure Availability {
              parkingLot as ParkingLotEnum;
              count as Integer;
            }
            enumeration UsagePatternEnum { HIGH, MODERATE, LOW }
            "#,
        );
        assert_eq!(spec.contexts().count(), 4);
        let avail = spec.contexts().next().unwrap();
        assert_eq!(avail.output.to_string(), "Availability[]");
        match &avail.interactions[0] {
            Interaction::Periodic {
                period, grouping, ..
            } => {
                assert_eq!(period.as_millis(), 600_000);
                let g = grouping.as_ref().unwrap();
                assert_eq!(g.attribute.as_str(), "parkingLot");
                let mr = g.map_reduce.as_ref().unwrap();
                assert_eq!(mr.map_ty.to_string(), "Boolean");
                assert_eq!(mr.reduce_ty.to_string(), "Integer");
            }
            other => panic!("expected periodic interaction, got {other:?}"),
        }
        let usage = spec.contexts().nth(1).unwrap();
        assert!(usage.is_required());
        assert!(!usage.publishes());
        let occupancy = spec.contexts().nth(2).unwrap();
        match &occupancy.interactions[0] {
            Interaction::Periodic { grouping, .. } => {
                let w = grouping.as_ref().unwrap().window.unwrap();
                assert_eq!(w.as_millis(), 86_400_000);
            }
            other => panic!("expected periodic interaction, got {other:?}"),
        }
    }

    #[test]
    fn parses_annotations_on_devices_and_contexts() {
        let spec = parse_ok(
            r#"
            @error(policy = "retry", attempts = 3)
            @qos(latencyMs = 50)
            device Altimeter {
              source altitude as Float;
            }
            @error(policy = "failover")
            context FlightState as Float {
              when provided altitude from Altimeter always publish;
            }
            "#,
        );
        let dev = spec.devices().next().unwrap();
        assert_eq!(dev.annotations.len(), 2);
        assert_eq!(dev.annotations[0].name.as_str(), "error");
        assert_eq!(
            dev.annotations[0].arg("attempts"),
            Some(&AnnotationValue::Int(3))
        );
        let ctx = spec.contexts().next().unwrap();
        assert_eq!(ctx.annotations.len(), 1);
    }

    #[test]
    fn controller_with_multiple_do_clauses() {
        let spec = parse_ok(
            r#"
            controller Evacuate {
              when provided FireAlarm
                do unlock on DoorLock
                do flash on Light;
            }
            "#,
        );
        let ctrl = spec.controllers().next().unwrap();
        assert_eq!(ctrl.interactions[0].actions.len(), 2);
    }

    #[test]
    fn enumeration_allows_trailing_comma() {
        let spec = parse_ok("enumeration E { A, B, C, }");
        assert_eq!(spec.enumerations().next().unwrap().variants.len(), 3);
    }

    #[test]
    fn nested_array_types_parse() {
        let spec = parse_ok("context C as Integer[][] { when provided X always publish; }");
        let ctx = spec.contexts().next().unwrap();
        assert_eq!(ctx.output.to_string(), "Integer[][]");
        assert_eq!(ctx.output.base_name(), "Integer");
    }

    #[test]
    fn error_missing_publish_reports_and_recovers() {
        let (spec, diags) = parse(
            r#"
            context Bad as Integer {
              when provided tick from Clock;
            }
            device Good { source x as Integer; }
            "#,
        );
        assert!(diags.has_errors());
        // The later device still parses.
        assert_eq!(spec.devices().count(), 1);
    }

    #[test]
    fn error_duplicate_grouped_by_reported() {
        let (_, diags) = parse(
            r#"
            context C as Integer[] {
              when periodic p from S <1 min>
                grouped by a
                grouped by b
                always publish;
            }
            "#,
        );
        assert!(diags.find("E0104").is_some(), "{diags:?}");
    }

    #[test]
    fn error_unknown_time_unit() {
        let (_, diags) =
            parse("context C as Integer { when periodic p from S <3 weeks> always publish; }");
        assert!(diags.find("E0103").is_some());
    }

    #[test]
    fn error_annotation_on_structure() {
        let (_, diags) = parse("@qos(x = 1) structure S { f as Integer; }");
        assert!(diags.find("E0102").is_some());
    }

    #[test]
    fn error_garbage_between_items_recovers() {
        let (spec, diags) = parse("????? device D { } ;;; context C as Integer { when required; }");
        assert!(diags.has_errors());
        assert_eq!(spec.devices().count(), 1);
        assert_eq!(spec.contexts().count(), 1);
    }

    #[test]
    fn error_unclosed_device_at_eof() {
        let (spec, diags) = parse("device D { source x as Integer;");
        assert!(diags.has_errors());
        assert_eq!(spec.devices().count(), 1);
        assert_eq!(spec.devices().next().unwrap().sources.len(), 1);
    }

    #[test]
    fn controller_requires_do_clause() {
        let (_, diags) = parse("controller C { when provided X; }");
        assert!(diags.has_errors());
    }

    #[test]
    fn empty_input_is_valid() {
        let (spec, diags) = parse("");
        assert!(diags.is_empty());
        assert!(spec.items.is_empty());
    }

    #[test]
    fn parser_never_loops_on_pathological_input() {
        // A selection of degenerate inputs; the parser must terminate on all.
        for src in [
            "{",
            "}",
            ";",
            "@",
            "@@@@",
            "device",
            "context",
            "controller",
            "when when when",
            "device {",
            "context C as {",
            "controller C { when }",
            "enumeration E {",
            "structure S { x",
            "<<<<>>>>",
            "device D extends {",
            "@e( device D {}",
        ] {
            let _ = parse(src);
        }
    }
}

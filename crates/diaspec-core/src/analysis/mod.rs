//! Whole-design static analysis over a [`CheckedSpec`].
//!
//! Where [`check`](crate::check) validates declarations one at a time,
//! this module reasons about the *composition*: what happens when every
//! declared interaction contract runs against a shared environment. The
//! paper's promise that an orchestration design is "verifiable before
//! deployment" lives here. Four passes share one dataflow graph:
//!
//! 1. [`graph`] — builds the Sense-Compute-Control dataflow graph with
//!    attribute-refined device sets;
//! 2. [`conflicts`] — actuation-conflict detection;
//! 3. [`loops`] — environment feedback-loop detection;
//! 4. [`reach`] / [`rates`] — reachability, rate propagation, and the
//!    static capacity report.
//!
//! A fifth pass, [`partition`], validates a proposed deployment split
//! against the design. It takes a [`PartitionPlan`] as extra input, so
//! it is invoked by the deployment tooling ([`partition::validate`])
//! rather than by [`analyze`].
//!
//! A sixth pass family, [`deployment`], crosses design boundaries: it
//! takes *several* checked designs (plus their optional deployment
//! manifests) and analyzes the co-deployment — cross-application
//! actuation conflicts over the merged device taxonomy, aggregate
//! capacity against `@qos(capacityPerHour)` budgets, and manifest cut
//! safety. It is invoked by multi-design lint
//! ([`deployment::analyze_deployment`]) rather than by [`analyze`].
//!
//! Every finding carries a stable diagnostic code, continuing the
//! checker's numbering into the 04xx block (whole-design analysis),
//! the 05xx block (partition validity), and the 06xx block
//! (cross-design deployment):
//!
//! | Code | Rule |
//! |------|------|
//! | E0401 | guaranteed duplicate actuation from a single publication |
//! | W0401 | actuation conflict via distinct trigger chains |
//! | W0402 | event-driven environment feedback loop |
//! | W0403 | feedback loop closed only through `get` reads |
//! | W0404 | aggregation window shorter than the delivery period |
//! | W0405 | unreachable context or controller |
//! | W0406 | dead device: family never sensed nor actuated |
//! | E0501 | component on zero or several nodes, or device family on none |
//! | E0502 | partition plan names an unknown node, component, or device |
//! | E0503 | dataflow route crosses between edge nodes without passing the coordinator |
//! | W0501 | component placed where none of its routes are node-local |
//! | E0601 | guaranteed cross-application duplicate actuation from one shared publication |
//! | W0601 | possible cross-application actuation conflict on overlapping device families |
//! | W0602 | aggregate co-deployed load exceeds a device family or cut-link capacity budget |
//! | E0602 | manifests pin a shared device family to conflicting attachment points |
//!
//! # Examples
//!
//! ```
//! use diaspec_core::{compile_str, analysis::analyze};
//!
//! let spec = compile_str(r#"
//!     device Heater { source temperature as Float; action heat; }
//!     context Cold as Float { when provided temperature from Heater always publish; }
//!     controller Thermostat { when provided Cold do heat on Heater; }
//! "#)?;
//! let report = analyze(&spec);
//! // Heating changes the temperature the trigger context senses:
//! assert!(report.diagnostics.find("W0402").is_some());
//! assert!(report.conflict_free());
//! # Ok::<(), diaspec_core::diag::CompileError>(())
//! ```

pub mod conflicts;
pub mod deployment;
pub mod graph;
pub mod loops;
pub mod partition;
pub mod rates;
pub mod reach;

pub use conflicts::{ActuationConflict, ActuationSite};
pub use deployment::{
    analyze_deployment, CrossConflict, CrossFinding, CutViolation, DeployPins, DeploymentOptions,
    DeploymentReport, DesignRef, DesignSpan, FamilyLoad, LinkLoad, MergedTaxonomy, PinnedHost,
    SharedPublication,
};
pub use graph::DesignGraph;
pub use loops::{FeedbackLoop, LoopKind};
pub use partition::{CutRoute, PartitionNode, PartitionPlan, PartitionReport};
pub use rates::{CapacityReport, EdgeCapacity};
pub use reach::Reachability;

use crate::diag::Diagnostics;
use crate::model::CheckedSpec;

/// Tuning knobs for [`analyze_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Fleet-size hypothesis for the capacity report: how many deployed
    /// devices to assume per referenced device family.
    pub fleet_size: u64,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions { fleet_size: 1000 }
    }
}

/// The combined result of all analysis passes.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// All findings, in pass order (conflicts, loops, reachability,
    /// rates), each with a stable code from the module table.
    pub diagnostics: Diagnostics,
    /// The shared dataflow graph the passes ran on.
    pub graph: DesignGraph,
    /// Actuation conflicts (E0401 / W0401).
    pub conflicts: Vec<ActuationConflict>,
    /// Environment feedback loops (W0402 / W0403).
    pub loops: Vec<FeedbackLoop>,
    /// Unreachable components and dead devices (W0405 / W0406).
    pub reachability: Reachability,
    /// Rate propagation under the fleet-size hypothesis.
    pub capacity: CapacityReport,
}

impl AnalysisReport {
    /// Whether no actuation conflict was found — the property the code
    /// generator advertises in generated framework headers.
    #[must_use]
    pub fn conflict_free(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Whether no environment feedback loop was found.
    #[must_use]
    pub fn loop_free(&self) -> bool {
        self.loops.is_empty()
    }

    /// Whether the analysis produced no finding at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs every analysis pass with default [`AnalysisOptions`].
#[must_use]
pub fn analyze(spec: &CheckedSpec) -> AnalysisReport {
    analyze_with(spec, &AnalysisOptions::default())
}

/// Runs every analysis pass with explicit options.
#[must_use]
pub fn analyze_with(spec: &CheckedSpec, options: &AnalysisOptions) -> AnalysisReport {
    let graph = DesignGraph::build(spec);
    let mut diagnostics = Diagnostics::new();
    let conflicts = conflicts::detect(spec, &mut diagnostics);
    let loops = loops::detect(spec, &graph, &mut diagnostics);
    let reachability = reach::detect(spec, &mut diagnostics);
    let capacity = rates::detect(spec, options.fleet_size, &mut diagnostics);
    AnalysisReport {
        diagnostics,
        graph,
        conflicts,
        loops,
        reachability,
        capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    #[test]
    fn clean_design_reports_nothing() {
        let spec = compile_str(
            r#"
            device Sensor { source motion as Boolean; }
            device Light { action lit; }
            context Presence as Boolean { when provided motion from Sensor always publish; }
            controller Lights { when provided Presence do lit on Light; }
            "#,
        )
        .unwrap();
        let report = analyze(&spec);
        assert!(report.is_clean());
        assert!(report.conflict_free());
        assert!(report.loop_free());
        assert!(report.reachability.dead_devices.is_empty());
    }

    #[test]
    fn passes_compose_in_one_report() {
        let spec = compile_str(
            r#"
            device Heater { source temperature as Float; action heat; }
            device Ghost { source boo as String; }
            context Cold as Float { when provided temperature from Heater always publish; }
            controller A { when provided Cold do heat on Heater; }
            controller B { when provided Cold do heat on Heater; }
            "#,
        )
        .unwrap();
        let report = analyze(&spec);
        // One conflict (A vs B, same trigger), two loops (one per do
        // clause), one dead device.
        assert_eq!(report.conflicts.len(), 1);
        assert!(report.conflicts[0].same_trigger);
        assert_eq!(report.loops.len(), 2);
        assert_eq!(report.reachability.dead_devices, vec!["Ghost"]);
        assert!(report.diagnostics.find("E0401").is_some());
        assert!(report.diagnostics.find("W0402").is_some());
        assert!(report.diagnostics.find("W0406").is_some());
    }

    #[test]
    fn fleet_size_option_reaches_capacity_report() {
        let spec = compile_str(
            r#"
            device Meter { source reading as Float; }
            device K { action a; }
            context Usage as Float { when periodic reading from Meter <1 min> always publish; }
            controller Out { when provided Usage do a on K; }
            "#,
        )
        .unwrap();
        let report = analyze_with(&spec, &AnalysisOptions { fleet_size: 7 });
        assert_eq!(report.capacity.fleet_size, 7);
        assert_eq!(report.capacity.edges[0].msgs_per_hour, Some(7.0 * 60.0));
    }
}

//! Pass 1: the whole-design Sense-Compute-Control dataflow graph.
//!
//! Every other analysis pass works on this graph: nodes are device
//! sources, contexts, controllers, and device actions; edges carry the
//! interaction kind declared in the design (event-driven subscription,
//! periodic delivery, query-driven `get`, or a controller `do` clause).
//! Device references are *attribute-refined sets*: a subscription or `do`
//! clause against a device names its whole `extends` family, so overlap
//! questions (conflicts, feedback) are answered on families, not names.

use crate::model::{ActivationTrigger, CheckedSpec, InputRef};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A node of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Node {
    /// A device sensing facet, attributed to its declaring device.
    Source {
        /// Device declaring the source.
        device: String,
        /// Source name.
        source: String,
    },
    /// A context component.
    Context(String),
    /// A controller component.
    Controller(String),
    /// A device actuating facet, attributed to the `do` target device.
    Action {
        /// Device targeted by the `do` clause.
        device: String,
        /// Action name.
        action: String,
    },
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Source { device, source } => write!(f, "{device}.{source}"),
            Node::Context(name) => write!(f, "[{name}]"),
            Node::Controller(name) => write!(f, "({name})"),
            Node::Action { device, action } => write!(f, "{device}.{action}()"),
        }
    }
}

/// The interaction kind an edge was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Event-driven flow: `when provided` subscriptions and
    /// context-to-controller triggers.
    Event,
    /// Periodic batched delivery with its period.
    Periodic {
        /// Delivery period in milliseconds.
        period_ms: u64,
    },
    /// Query-driven read: a `get` clause (the paper's loop arrows).
    Query,
    /// A controller `do` clause.
    Do,
}

impl EdgeKind {
    /// Whether this edge pushes data on its own (event or periodic), as
    /// opposed to being pulled (`get`) or being an actuation.
    #[must_use]
    pub fn is_flow(self) -> bool {
        matches!(self, EdgeKind::Event | EdgeKind::Periodic { .. })
    }
}

/// A directed edge of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Index of the origin node in [`DesignGraph::nodes`].
    pub from: usize,
    /// Index of the destination node in [`DesignGraph::nodes`].
    pub to: usize,
    /// Interaction kind.
    pub kind: EdgeKind,
}

/// The dataflow graph of a whole design.
///
/// Built once by [`DesignGraph::build`] and shared by the conflict,
/// feedback-loop, reachability, and rate-propagation passes.
#[derive(Debug, Clone)]
pub struct DesignGraph {
    /// Nodes in deterministic (sorted) order.
    pub nodes: Vec<Node>,
    /// Edges in deterministic order, deduplicated.
    pub edges: Vec<Edge>,
    index: BTreeMap<Node, usize>,
}

impl DesignGraph {
    /// Builds the dataflow graph of `spec`.
    ///
    /// Source references are normalized to the device that *declares* the
    /// source (walking `extends` upward), so a subscription against a
    /// subtype and one against its ancestor meet at the same node.
    #[must_use]
    pub fn build(spec: &CheckedSpec) -> Self {
        let mut graph = DesignGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            index: BTreeMap::new(),
        };
        let mut edges: BTreeSet<(usize, usize, String)> = BTreeSet::new();
        let mut push_edge = |graph: &mut DesignGraph, from: Node, to: Node, kind: EdgeKind| {
            let from = graph.intern(from);
            let to = graph.intern(to);
            if edges.insert((from, to, format!("{kind:?}"))) {
                graph.edges.push(Edge { from, to, kind });
            }
        };

        for ctx in spec.contexts() {
            let ctx_node = Node::Context(ctx.name.clone());
            graph.intern(ctx_node.clone());
            for activation in &ctx.activations {
                match &activation.trigger {
                    ActivationTrigger::DeviceSource { device, source } => {
                        push_edge(
                            &mut graph,
                            source_node(spec, device, source),
                            ctx_node.clone(),
                            EdgeKind::Event,
                        );
                    }
                    ActivationTrigger::Periodic {
                        device,
                        source,
                        period_ms,
                    } => {
                        push_edge(
                            &mut graph,
                            source_node(spec, device, source),
                            ctx_node.clone(),
                            EdgeKind::Periodic {
                                period_ms: *period_ms,
                            },
                        );
                    }
                    ActivationTrigger::Context(from) => {
                        push_edge(
                            &mut graph,
                            Node::Context(from.clone()),
                            ctx_node.clone(),
                            EdgeKind::Event,
                        );
                    }
                    ActivationTrigger::OnDemand => {}
                }
                for get in &activation.gets {
                    let from = match get {
                        InputRef::DeviceSource { device, source } => {
                            source_node(spec, device, source)
                        }
                        InputRef::Context(name) => Node::Context(name.clone()),
                    };
                    push_edge(&mut graph, from, ctx_node.clone(), EdgeKind::Query);
                }
            }
        }
        for ctrl in spec.controllers() {
            let ctrl_node = Node::Controller(ctrl.name.clone());
            graph.intern(ctrl_node.clone());
            for binding in &ctrl.bindings {
                push_edge(
                    &mut graph,
                    Node::Context(binding.context.clone()),
                    ctrl_node.clone(),
                    EdgeKind::Event,
                );
                for (action, device) in &binding.actions {
                    push_edge(
                        &mut graph,
                        ctrl_node.clone(),
                        Node::Action {
                            device: device.clone(),
                            action: action.clone(),
                        },
                        EdgeKind::Do,
                    );
                }
            }
        }
        graph
    }

    fn intern(&mut self, node: Node) -> usize {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        id
    }

    /// Looks up a node's index.
    #[must_use]
    pub fn node_id(&self, node: &Node) -> Option<usize> {
        self.index.get(node).copied()
    }

    /// The contexts a device source feeds, split by coupling: contexts
    /// *triggered* by it (event-driven or periodic) versus contexts that
    /// only `get` it.
    #[must_use]
    pub fn contexts_fed_by_source(&self, device: &str, source: &str) -> (Vec<&str>, Vec<&str>) {
        let mut triggered = Vec::new();
        let mut queried = Vec::new();
        let Some(id) = self.node_id(&Node::Source {
            device: device.to_owned(),
            source: source.to_owned(),
        }) else {
            return (triggered, queried);
        };
        for edge in &self.edges {
            if edge.from != id {
                continue;
            }
            if let Node::Context(name) = &self.nodes[edge.to] {
                if edge.kind.is_flow() {
                    triggered.push(name.as_str());
                } else {
                    queried.push(name.as_str());
                }
            }
        }
        (triggered, queried)
    }

    /// Whether context `from` reaches context `to` along
    /// context-to-context edges, returning the path (inclusive of both
    /// endpoints) when it does.
    ///
    /// With `include_query` false only event-driven subscription edges are
    /// followed; with it true, `get` edges count as well. A context
    /// trivially reaches itself (path of length one).
    #[must_use]
    pub fn context_path(&self, from: &str, to: &str, include_query: bool) -> Option<Vec<String>> {
        if from == to {
            return Some(vec![from.to_owned()]);
        }
        let start = self.node_id(&Node::Context(from.to_owned()))?;
        let goal = self.node_id(&Node::Context(to.to_owned()))?;
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = VecDeque::from([start]);
        let mut seen = BTreeSet::from([start]);
        while let Some(at) = queue.pop_front() {
            for edge in &self.edges {
                if edge.from != at
                    || !matches!(self.nodes[edge.to], Node::Context(_))
                    || !(edge.kind.is_flow() || (include_query && edge.kind == EdgeKind::Query))
                {
                    continue;
                }
                if seen.insert(edge.to) {
                    parent.insert(edge.to, at);
                    if edge.to == goal {
                        let mut path = vec![goal];
                        let mut cursor = goal;
                        while let Some(&prev) = parent.get(&cursor) {
                            path.push(prev);
                            cursor = prev;
                        }
                        path.reverse();
                        return Some(
                            path.into_iter()
                                .map(|id| match &self.nodes[id] {
                                    Node::Context(name) => name.clone(),
                                    other => other.to_string(),
                                })
                                .collect(),
                        );
                    }
                    queue.push_back(edge.to);
                }
            }
        }
        None
    }
}

/// The node of a source reference, attributed to the device that declares
/// the source (so subtype references meet their ancestor's node).
fn source_node(spec: &CheckedSpec, device: &str, source: &str) -> Node {
    let owner = spec
        .device(device)
        .and_then(|d| d.source(source))
        .map_or(device, |s| s.declared_in.as_str());
    Node::Source {
        device: owner.to_owned(),
        source: source.to_owned(),
    }
}

/// Whether the attribute-refined device sets of `first` and `second`
/// overlap: in a tree-shaped `extends` hierarchy, two families intersect
/// exactly when one root is a subtype of the other.
#[must_use]
pub fn families_overlap(spec: &CheckedSpec, first: &str, second: &str) -> bool {
    spec.device_is_subtype(first, second) || spec.device_is_subtype(second, first)
}

/// The devices in both families, in name order.
#[must_use]
pub fn family_intersection<'s>(spec: &'s CheckedSpec, first: &str, second: &str) -> Vec<&'s str> {
    spec.device_family(first)
        .into_iter()
        .filter(|d| spec.device_is_subtype(&d.name, second))
        .map(|d| d.name.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    const SPEC: &str = r#"
        device Base { source reading as Float; }
        device Leaf extends Base { attribute room as String; }
        device Sink { action absorb; }
        context C as Float {
          when periodic reading from Leaf <1 min>
            get reading from Base
            always publish;
        }
        context D as Float { when provided C always publish; }
        controller Out { when provided D do absorb on Sink; }
    "#;

    #[test]
    fn graph_normalizes_sources_to_declaring_device() {
        let spec = compile_str(SPEC).unwrap();
        let graph = DesignGraph::build(&spec);
        // Both the periodic subscription (via Leaf) and the get (via Base)
        // hit the single Base.reading node.
        let node = Node::Source {
            device: "Base".into(),
            source: "reading".into(),
        };
        assert!(graph.node_id(&node).is_some());
        assert!(graph
            .node_id(&Node::Source {
                device: "Leaf".into(),
                source: "reading".into(),
            })
            .is_none());
        let (triggered, queried) = graph.contexts_fed_by_source("Base", "reading");
        assert_eq!(triggered, vec!["C"]);
        assert_eq!(queried, vec!["C"]);
    }

    #[test]
    fn context_paths_respect_edge_coupling() {
        let spec = compile_str(SPEC).unwrap();
        let graph = DesignGraph::build(&spec);
        assert_eq!(
            graph.context_path("C", "D", false),
            Some(vec!["C".to_owned(), "D".to_owned()])
        );
        assert_eq!(graph.context_path("D", "C", true), None);
        assert_eq!(
            graph.context_path("D", "D", false),
            Some(vec!["D".to_owned()])
        );
    }

    #[test]
    fn query_edges_reach_only_when_included() {
        let spec = compile_str(
            r#"
            device S { source v as Integer; }
            device K { action a; }
            context A as Integer { when periodic v from S <1 min> no publish; when required; }
            context B as Integer { when provided v from S get A always publish; }
            controller Out { when provided B do a on K; }
            "#,
        )
        .unwrap();
        let graph = DesignGraph::build(&spec);
        assert_eq!(graph.context_path("A", "B", false), None);
        assert_eq!(
            graph.context_path("A", "B", true),
            Some(vec!["A".to_owned(), "B".to_owned()])
        );
    }

    #[test]
    fn family_overlap_queries() {
        let spec = compile_str(SPEC).unwrap();
        assert!(families_overlap(&spec, "Base", "Leaf"));
        assert!(families_overlap(&spec, "Leaf", "Leaf"));
        assert!(!families_overlap(&spec, "Sink", "Base"));
        assert_eq!(family_intersection(&spec, "Base", "Leaf"), vec!["Leaf"]);
        assert_eq!(
            family_intersection(&spec, "Base", "Base"),
            vec!["Base", "Leaf"]
        );
    }

    #[test]
    fn do_edges_present() {
        let spec = compile_str(SPEC).unwrap();
        let graph = DesignGraph::build(&spec);
        let action = graph
            .node_id(&Node::Action {
                device: "Sink".into(),
                action: "absorb".into(),
            })
            .unwrap();
        assert!(graph
            .edges
            .iter()
            .any(|e| e.to == action && e.kind == EdgeKind::Do));
    }
}

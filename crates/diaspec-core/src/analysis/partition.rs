//! Partition validity: can a design be deployed across these nodes?
//!
//! The deployment subsystem splits one design into per-node units — a
//! coordinator running the orchestration engine plus edge nodes hosting
//! device slices — bridged by a transport. Before any manifest is
//! emitted, this pass checks that a [`PartitionPlan`] is actually a
//! partition of the design and that every dataflow route crosses *at
//! most the declared cut*: a route is either node-local or connects an
//! edge node with the coordinator. Direct edge-to-edge routes have no
//! link in the star topology the deployment layer builds, so they are
//! rejected statically instead of failing at runtime.
//!
//! Codes (see the table in [`super`]): E0501 incomplete/ambiguous
//! assignment, E0502 unknown name in the plan, E0503 route crossing an
//! undeclared cut, W0501 placement with no local interaction.

use crate::diag::{Diagnostic, Diagnostics};
use crate::model::{ActivationTrigger, CheckedSpec, InputRef};
use crate::span::Span;
use std::collections::BTreeMap;

/// Where one deployment node's slice of the design runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionNode {
    /// Node name (e.g. `"coordinator"`, `"edge0"`).
    pub name: String,
    /// Contexts and controllers placed on this node. Each component
    /// lives on exactly one node.
    pub components: Vec<String>,
    /// Device families with instances on this node. A family is a
    /// fleet, so the same family may appear on several nodes (e.g.
    /// presence sensors sharded per parking lot across edge nodes).
    pub devices: Vec<String>,
}

/// A proposed split of a design across deployment nodes.
///
/// The topology is a star: every non-coordinator node has exactly one
/// link, to the coordinator. That link is the *declared cut* routes may
/// cross.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// The node running the orchestration engine.
    pub coordinator: String,
    /// All nodes, coordinator included.
    pub nodes: Vec<PartitionNode>,
}

/// One dataflow route that crosses the declared cut — it will travel
/// the transport at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutRoute {
    /// Producing side: `(node, component-or-device)`.
    pub from: (String, String),
    /// Consuming side: `(node, component-or-device)`.
    pub to: (String, String),
}

/// The result of validating one plan.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// Findings, in E0502 / E0501 / E0503 / W0501 order.
    pub diagnostics: Diagnostics,
    /// Routes that legitimately cross the coordinator cut (empty when
    /// the plan is invalid enough that routes cannot be resolved).
    pub cut_routes: Vec<CutRoute>,
}

impl PartitionReport {
    /// Whether the plan partitions the design and respects the cut.
    #[must_use]
    pub fn is_deployable(&self) -> bool {
        !self.diagnostics.has_errors()
    }
}

/// One directed dataflow route, with the span of the consuming clause.
struct Route<'a> {
    from: &'a str,
    to: &'a str,
    span: Span,
}

/// Validates `plan` against `spec`.
#[must_use]
pub fn validate(spec: &CheckedSpec, plan: &PartitionPlan) -> PartitionReport {
    let mut diagnostics = Diagnostics::new();
    let mut assignment: BTreeMap<&str, Vec<&str>> = BTreeMap::new();

    // E0502 — the plan must only name things the design declares, and
    // the coordinator must be one of the declared nodes.
    if !plan.nodes.iter().any(|n| n.name == plan.coordinator) {
        diagnostics.push(Diagnostic::error(
            "E0502",
            format!(
                "partition plan names coordinator `{}` but declares no such node",
                plan.coordinator
            ),
            Span::DUMMY,
        ));
    }
    let mut seen_nodes: Vec<&str> = Vec::new();
    for node in &plan.nodes {
        if seen_nodes.contains(&node.name.as_str()) {
            diagnostics.push(Diagnostic::error(
                "E0502",
                format!("partition plan declares node `{}` twice", node.name),
                Span::DUMMY,
            ));
        }
        seen_nodes.push(&node.name);
        for component in &node.components {
            if spec.context(component).is_none() && spec.controller(component).is_none() {
                diagnostics.push(Diagnostic::error(
                    "E0502",
                    format!(
                        "node `{}` places unknown component `{component}`",
                        node.name
                    ),
                    Span::DUMMY,
                ));
                continue;
            }
            assignment.entry(component).or_default().push(&node.name);
        }
        for device in &node.devices {
            if spec.device(device).is_none() {
                diagnostics.push(Diagnostic::error(
                    "E0502",
                    format!("node `{}` places unknown device `{device}`", node.name),
                    Span::DUMMY,
                ));
                continue;
            }
            assignment.entry(device).or_default().push(&node.name);
        }
    }

    // E0501 — every context and controller is placed on exactly one
    // node (they are singleton computations); every device family is
    // placed on at least one (a family is a fleet, so its instances may
    // be sharded across several edge nodes).
    let declared: Vec<(&str, Span)> = spec
        .contexts()
        .map(|c| (c.name.as_str(), c.span))
        .chain(spec.controllers().map(|c| (c.name.as_str(), c.span)))
        .chain(spec.devices().map(|d| (d.name.as_str(), d.span)))
        .collect();
    for (name, span) in &declared {
        let is_component = spec.context(name).is_some() || spec.controller(name).is_some();
        match assignment.get(name).map(Vec::as_slice) {
            None | Some([]) => diagnostics.push(Diagnostic::error(
                "E0501",
                format!("`{name}` is assigned to no deployment node"),
                *span,
            )),
            Some(nodes) if is_component && nodes.len() > 1 => diagnostics.push(Diagnostic::error(
                "E0501",
                format!(
                    "component `{name}` is assigned to {} nodes ({}) — a partition places each \
                     component on exactly one",
                    nodes.len(),
                    nodes.join(", ")
                ),
                *span,
            )),
            Some(_) => {}
        }
    }

    // E0503 — every route is node-local or crosses the coordinator cut.
    // A device family placed on several nodes contributes one crossing
    // per hosting node.
    let mut cut_routes = Vec::new();
    for route in routes(spec) {
        let (Some(from_nodes), Some(to_nodes)) =
            (assignment.get(route.from), assignment.get(route.to))
        else {
            continue; // already an E0501/E0502 above
        };
        for &from_node in from_nodes {
            for &to_node in to_nodes {
                if from_node == to_node {
                    continue;
                }
                if from_node == plan.coordinator || to_node == plan.coordinator {
                    cut_routes.push(CutRoute {
                        from: (from_node.to_string(), route.from.to_string()),
                        to: (to_node.to_string(), route.to.to_string()),
                    });
                    continue;
                }
                diagnostics.push(
                    Diagnostic::error(
                        "E0503",
                        format!(
                            "route `{}` -> `{}` crosses from node `{from_node}` to node \
                             `{to_node}` without passing the coordinator",
                            route.from, route.to
                        ),
                        route.span,
                    )
                    .with_note(
                        format!(
                            "the deployment topology is a star: every link connects an edge \
                             node to `{}`; place one endpoint there or on the same edge node",
                            plan.coordinator
                        ),
                        None,
                    ),
                );
            }
        }
    }

    // W0501 — a component whose every route leaves its node: the
    // placement buys no locality.
    if !diagnostics.has_errors() {
        let all_routes: Vec<Route<'_>> = routes(spec).collect();
        for (name, span) in &declared {
            if spec.context(name).is_none() && spec.controller(name).is_none() {
                continue;
            }
            let Some(&[node]) = assignment.get(name).map(Vec::as_slice) else {
                continue;
            };
            if node == plan.coordinator {
                continue;
            }
            let mut touches = 0usize;
            let mut local = 0usize;
            for route in &all_routes {
                if route.from == *name || route.to == *name {
                    touches += 1;
                    let other = if route.from == *name {
                        route.to
                    } else {
                        route.from
                    };
                    if assignment.get(other).is_some_and(|n| n.contains(&node)) {
                        local += 1;
                    }
                }
            }
            if touches > 0 && local == 0 {
                diagnostics.push(Diagnostic::warning(
                    "W0501",
                    format!(
                        "`{name}` is placed on `{node}` but all {touches} of its routes leave \
                         that node — every interaction pays the transport"
                    ),
                    *span,
                ));
            }
        }
    }

    PartitionReport {
        diagnostics,
        cut_routes,
    }
}

/// Enumerates every directed dataflow route in the design, with the
/// span of the consuming clause.
fn routes(spec: &CheckedSpec) -> impl Iterator<Item = Route<'_>> {
    let context_routes = spec.contexts().flat_map(|context| {
        context.activations.iter().flat_map(move |activation| {
            let trigger = match &activation.trigger {
                ActivationTrigger::DeviceSource { device, .. }
                | ActivationTrigger::Periodic { device, .. } => Some(Route {
                    from: device,
                    to: &context.name,
                    span: activation.span,
                }),
                ActivationTrigger::Context(name) => Some(Route {
                    from: name,
                    to: &context.name,
                    span: activation.span,
                }),
                ActivationTrigger::OnDemand => None,
            };
            let gets = activation.gets.iter().map(move |get| match get {
                InputRef::DeviceSource { device, .. } => Route {
                    from: device,
                    to: &context.name,
                    span: activation.span,
                },
                InputRef::Context(name) => Route {
                    from: name,
                    to: &context.name,
                    span: activation.span,
                },
            });
            trigger.into_iter().chain(gets)
        })
    });
    let controller_routes = spec.controllers().flat_map(|controller| {
        controller.bindings.iter().flat_map(move |binding| {
            let trigger = Route {
                from: &binding.context,
                to: &controller.name,
                span: binding.context_span,
            };
            let actions = binding
                .actions
                .iter()
                .enumerate()
                .map(move |(index, (_, device))| Route {
                    from: &controller.name,
                    to: device,
                    span: binding.action_span(index),
                });
            std::iter::once(trigger).chain(actions)
        })
    });
    context_routes.chain(controller_routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    const SPEC: &str = r#"
        device Sensor { source motion as Boolean; }
        device Panel { action show; }
        context Presence as Boolean { when provided motion from Sensor always publish; }
        controller Lights { when provided Presence do show on Panel; }
    "#;

    fn node(name: &str, components: &[&str], devices: &[&str]) -> PartitionNode {
        PartitionNode {
            name: name.to_string(),
            components: components.iter().map(|s| (*s).to_string()).collect(),
            devices: devices.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    #[test]
    fn star_partition_is_deployable_and_reports_cut_routes() {
        let spec = compile_str(SPEC).unwrap();
        let plan = PartitionPlan {
            coordinator: "coordinator".into(),
            nodes: vec![
                node("coordinator", &["Presence", "Lights"], &[]),
                node("edge0", &[], &["Sensor", "Panel"]),
            ],
        };
        let report = validate(&spec, &plan);
        assert!(report.is_deployable(), "{:?}", report.diagnostics);
        // Sensor -> Presence and Lights -> Panel both cross the cut.
        assert_eq!(report.cut_routes.len(), 2);
        assert!(report
            .cut_routes
            .iter()
            .all(|r| r.from.0 == "coordinator" || r.to.0 == "coordinator"));
    }

    #[test]
    fn unassigned_device_and_doubly_assigned_component_are_e0501() {
        let spec = compile_str(SPEC).unwrap();
        let plan = PartitionPlan {
            coordinator: "coordinator".into(),
            nodes: vec![
                node("coordinator", &["Presence", "Lights"], &["Sensor"]),
                node("edge0", &["Presence"], &["Sensor"]),
            ],
        };
        let report = validate(&spec, &plan);
        assert!(!report.is_deployable());
        let messages: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "E0501")
            .map(|d| d.message.clone())
            .collect();
        // Panel is unassigned; Presence (a component) is on two nodes.
        // Sensor on two nodes is fine: device families are fleets.
        assert!(
            messages.iter().any(|m| m.contains("`Panel`")),
            "{messages:?}"
        );
        assert!(
            messages
                .iter()
                .any(|m| m.contains("`Presence`") && m.contains("2 nodes")),
            "{messages:?}"
        );
        assert!(
            !messages.iter().any(|m| m.contains("`Sensor`")),
            "{messages:?}"
        );
    }

    #[test]
    fn sharded_device_family_crosses_the_cut_from_every_hosting_node() {
        let spec = compile_str(SPEC).unwrap();
        let plan = PartitionPlan {
            coordinator: "coordinator".into(),
            nodes: vec![
                node("coordinator", &["Presence", "Lights"], &["Panel"]),
                node("edge0", &[], &["Sensor"]),
                node("edge1", &[], &["Sensor"]),
            ],
        };
        let report = validate(&spec, &plan);
        assert!(report.is_deployable(), "{:?}", report.diagnostics);
        // Sensor -> Presence crosses once per hosting edge node.
        let sensor_cuts = report
            .cut_routes
            .iter()
            .filter(|r| r.from.1 == "Sensor")
            .count();
        assert_eq!(sensor_cuts, 2);
    }

    #[test]
    fn unknown_names_are_e0502() {
        let spec = compile_str(SPEC).unwrap();
        let plan = PartitionPlan {
            coordinator: "missing".into(),
            nodes: vec![node(
                "coordinator",
                &["Presence", "Lights", "Ghost"],
                &["Sensor", "Panel", "Phantom"],
            )],
        };
        let report = validate(&spec, &plan);
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes.iter().filter(|c| **c == "E0502").count(), 3);
    }

    #[test]
    fn edge_to_edge_route_is_e0503() {
        let spec = compile_str(SPEC).unwrap();
        let plan = PartitionPlan {
            coordinator: "coordinator".into(),
            nodes: vec![
                node("coordinator", &[], &[]),
                node("edge0", &["Presence", "Lights"], &["Sensor"]),
                node("edge1", &[], &["Panel"]),
            ],
        };
        let report = validate(&spec, &plan);
        assert!(!report.is_deployable());
        let diag = report.diagnostics.find("E0503").expect("E0503");
        assert!(
            diag.message.contains("`Lights` -> `Panel`"),
            "{}",
            diag.message
        );
        assert_ne!(diag.span, Span::DUMMY, "route diagnostics carry spans");
    }

    #[test]
    fn remote_only_placement_is_w0501() {
        let spec = compile_str(SPEC).unwrap();
        let plan = PartitionPlan {
            coordinator: "coordinator".into(),
            nodes: vec![
                node("coordinator", &["Presence"], &["Sensor", "Panel"]),
                node("edge0", &["Lights"], &[]),
            ],
        };
        let report = validate(&spec, &plan);
        assert!(report.is_deployable());
        let diag = report.diagnostics.find("W0501").expect("W0501");
        assert!(diag.message.contains("`Lights`"), "{}", diag.message);
    }
}

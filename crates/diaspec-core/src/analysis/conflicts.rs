//! Pass 2: actuation-conflict detection (E0401 / W0401).
//!
//! Two `do` clauses conflict when they perform the *same action* on
//! *overlapping device sets* — in a tree-shaped `extends` taxonomy, two
//! device families overlap exactly when one root is a subtype of the
//! other. The severity depends on the coupling of the two clauses:
//!
//! - **E0401** — both clauses are triggered by the *same context*, so a
//!   single publication is guaranteed to actuate the shared devices
//!   twice. This is a design error: the effects race with no ordering.
//! - **W0401** — the clauses sit on *distinct trigger chains*. Whether
//!   the double actuation happens depends on runtime timing, so the
//!   analyzer reports it as a warning with both provenance chains.

use crate::chains::{functional_chains, ChainStep, FunctionalChain};
use crate::diag::{Diagnostic, Diagnostics};
use crate::model::CheckedSpec;
use crate::span::Span;
use serde::{Deserialize, Serialize};

use super::graph::{families_overlap, family_intersection};

/// One `do` clause, located precisely enough to report a conflict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActuationSite {
    /// The controller performing the actuation.
    pub controller: String,
    /// The context whose publication triggers the binding.
    pub trigger_context: String,
    /// Action name.
    pub action: String,
    /// Declared target device (names its whole `extends` family).
    pub device: String,
    /// Span of the `do ... on ...` clause.
    pub span: Span,
    /// A full sensing-to-actuation provenance chain ending at this site,
    /// rendered as `Device.source -> [Ctx] -> (Ctrl) -> Device.action()`.
    pub chain: Option<String>,
}

/// A pair of `do` clauses performing the same action on overlapping
/// device sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActuationConflict {
    /// First site, in (controller, binding, clause) declaration order.
    pub first: ActuationSite,
    /// Second site.
    pub second: ActuationSite,
    /// Devices actuated by *both* clauses (the family intersection).
    pub shared_devices: Vec<String>,
    /// Whether both clauses fire from the same context publication
    /// (guaranteed double actuation, E0401) rather than from distinct
    /// trigger chains (W0401).
    pub same_trigger: bool,
}

impl ActuationConflict {
    /// The diagnostic code this conflict reports under.
    #[must_use]
    pub fn code(&self) -> &'static str {
        if self.same_trigger {
            "E0401"
        } else {
            "W0401"
        }
    }
}

/// Every `do` clause of the design as an [`ActuationSite`], with its
/// provenance chain resolved. Shared with the cross-design deployment
/// pass ([`super::deployment`]), which compares sites *between* designs.
pub(crate) fn collect_sites(spec: &CheckedSpec) -> Vec<ActuationSite> {
    let chains = functional_chains(spec);
    let mut sites = Vec::new();
    for ctrl in spec.controllers() {
        for binding in &ctrl.bindings {
            for (index, (action, device)) in binding.actions.iter().enumerate() {
                sites.push(ActuationSite {
                    controller: ctrl.name.clone(),
                    trigger_context: binding.context.clone(),
                    action: action.clone(),
                    device: device.clone(),
                    span: binding.action_span(index),
                    chain: provenance(&chains, &ctrl.name, &binding.context, action, device),
                });
            }
        }
    }
    sites
}

/// Detects actuation conflicts and reports them into `diags`.
pub(crate) fn detect(spec: &CheckedSpec, diags: &mut Diagnostics) -> Vec<ActuationConflict> {
    let sites = collect_sites(spec);

    let mut conflicts = Vec::new();
    for (i, first) in sites.iter().enumerate() {
        for second in &sites[i + 1..] {
            if first.action != second.action
                || !families_overlap(spec, &first.device, &second.device)
            {
                continue;
            }
            let conflict = ActuationConflict {
                first: first.clone(),
                second: second.clone(),
                shared_devices: family_intersection(spec, &first.device, &second.device)
                    .into_iter()
                    .map(str::to_owned)
                    .collect(),
                same_trigger: first.trigger_context == second.trigger_context,
            };
            diags.push(render(&conflict));
            conflicts.push(conflict);
        }
    }
    conflicts
}

/// The first functional chain ending in `... -> [trigger] -> (controller)
/// -> device.action()`, rendered for provenance.
fn provenance(
    chains: &[FunctionalChain],
    controller: &str,
    trigger: &str,
    action: &str,
    device: &str,
) -> Option<String> {
    chains
        .iter()
        .find(|chain| {
            let steps = &chain.steps;
            let n = steps.len();
            n >= 3
                && steps[n - 1]
                    == ChainStep::Action {
                        device: device.to_owned(),
                        action: action.to_owned(),
                    }
                && steps[n - 2] == ChainStep::Controller(controller.to_owned())
                && steps[n - 3] == ChainStep::Context(trigger.to_owned())
        })
        .map(ToString::to_string)
}

fn render(conflict: &ActuationConflict) -> Diagnostic {
    let (first, second) = (&conflict.first, &conflict.second);
    let shared = conflict.shared_devices.join("`, `");
    let heading = if first.controller == second.controller {
        format!(
            "controller `{}` performs `{}` twice on overlapping devices (`{shared}`)",
            first.controller, first.action
        )
    } else {
        format!(
            "controllers `{}` and `{}` both perform `{}` on overlapping devices (`{shared}`)",
            first.controller, second.controller, first.action
        )
    };
    let mut diag = if conflict.same_trigger {
        Diagnostic::error(
            "E0401",
            format!(
                "{heading}: both `do` clauses fire on every publication of `{}`, guaranteeing a duplicate actuation",
                first.trigger_context
            ),
            first.span,
        )
    } else {
        Diagnostic::warning(
            "W0401",
            format!(
                "{heading} via distinct trigger chains (`{}` and `{}`)",
                first.trigger_context, second.trigger_context
            ),
            first.span,
        )
    };
    diag = diag.with_note(
        format!(
            "conflicting `do` clause in controller `{}` here",
            second.controller
        ),
        Some(second.span),
    );
    if let Some(chain) = &first.chain {
        diag = diag.with_note(format!("first actuation chain: {chain}"), None);
    }
    if let Some(chain) = &second.chain {
        diag = diag.with_note(format!("second actuation chain: {chain}"), None);
    }
    diag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    fn analyze(src: &str) -> (Vec<ActuationConflict>, Diagnostics) {
        let spec = compile_str(src).unwrap();
        let mut diags = Diagnostics::new();
        let conflicts = detect(&spec, &mut diags);
        (conflicts, diags)
    }

    #[test]
    fn same_trigger_is_an_error() {
        let (conflicts, diags) = analyze(
            r#"
            device Probe { source v as Integer; }
            device Valve { action close; }
            context Hot as Integer { when provided v from Probe always publish; }
            controller A { when provided Hot do close on Valve; }
            controller B { when provided Hot do close on Valve; }
            "#,
        );
        assert_eq!(conflicts.len(), 1);
        assert!(conflicts[0].same_trigger);
        assert_eq!(conflicts[0].code(), "E0401");
        assert_eq!(conflicts[0].shared_devices, vec!["Valve"]);
        let diag = diags.find("E0401").unwrap();
        assert!(diag.message.contains("`A`") && diag.message.contains("`B`"));
        // Both provenance chains ride along as notes.
        assert!(diag
            .notes
            .iter()
            .any(|(n, _)| n.contains("first actuation chain")));
        assert!(diag
            .notes
            .iter()
            .any(|(n, _)| n.contains("second actuation chain")));
    }

    #[test]
    fn distinct_chains_warn_with_subtype_overlap() {
        let (conflicts, diags) = analyze(
            r#"
            device Probe { source v as Integer; source w as Integer; }
            device Lamp { action lit; }
            device HallLamp extends Lamp { attribute hall as String; }
            context X as Integer { when provided v from Probe always publish; }
            context Y as Integer { when provided w from Probe always publish; }
            controller A { when provided X do lit on Lamp; }
            controller B { when provided Y do lit on HallLamp; }
            "#,
        );
        assert_eq!(conflicts.len(), 1);
        assert!(!conflicts[0].same_trigger);
        assert_eq!(conflicts[0].code(), "W0401");
        assert_eq!(conflicts[0].shared_devices, vec!["HallLamp"]);
        assert!(diags.find("E0401").is_none());
    }

    #[test]
    fn disjoint_siblings_do_not_conflict() {
        let (conflicts, diags) = analyze(
            r#"
            device Probe { source v as Integer; }
            device Lamp { action lit; }
            device HallLamp extends Lamp { attribute hall as String; }
            device YardLamp extends Lamp { attribute yard as String; }
            context X as Integer { when provided v from Probe always publish; }
            controller A { when provided X do lit on HallLamp; }
            controller B { when provided X do lit on YardLamp; }
            "#,
        );
        assert!(conflicts.is_empty());
        assert!(diags.is_empty());
    }

    #[test]
    fn different_actions_do_not_conflict() {
        let (conflicts, _) = analyze(
            r#"
            device Probe { source v as Integer; }
            device Lamp { action lit; action dark; }
            context X as Integer { when provided v from Probe always publish; }
            controller A { when provided X do lit on Lamp; }
            controller B { when provided X do dark on Lamp; }
            "#,
        );
        assert!(conflicts.is_empty());
    }

    #[test]
    fn duplicate_clause_within_one_binding() {
        let (conflicts, diags) = analyze(
            r#"
            device Probe { source v as Integer; }
            device Horn { action honk; }
            context X as Integer { when provided v from Probe always publish; }
            controller A { when provided X do honk on Horn do honk on Horn; }
            "#,
        );
        assert_eq!(conflicts.len(), 1);
        assert!(conflicts[0].same_trigger);
        let diag = diags.find("E0401").unwrap();
        assert!(diag.message.contains("performs `honk` twice"));
    }
}

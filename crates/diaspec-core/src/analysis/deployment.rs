//! Pass 6: cross-design deployment analysis (E0601 / W0601 / W0602 /
//! E0602).
//!
//! Every pass so far reasons about one design at a time, but the paper's
//! small-to-large-scale continuum means many orchestration applications
//! co-deployed over *one* device fleet. This module analyzes a whole
//! deployment: N checked designs, optionally pinned to edge nodes by
//! their deployment manifests, sharing the physical devices their
//! taxonomies overlap on.
//!
//! - **E0601** — guaranteed cross-application actuation conflict: two
//!   designs command the same actuator family and both `do` clauses are
//!   event-coupled (always-publish chains) to one shared device
//!   publication, so a single sensor reading actuates the device twice.
//! - **W0601** — possible cross-application conflict: the actuator
//!   families overlap but the trigger chains are independent (or not
//!   guaranteed to fire together), so the double actuation depends on
//!   runtime timing.
//! - **W0602** — aggregate capacity overload: the summed per-design edge
//!   loads against a device family (under a shared fleet-size
//!   hypothesis) exceed its declared `@qos(capacityPerHour)` budget, or
//!   the flows pinned to one cut link exceed the link budget.
//! - **E0602** — unsafe deployment cut: two manifests pin a shared
//!   device family (or one of its shard variants) to *different* edge
//!   nodes — one physical device cannot be attached to two processes.
//!
//! Device universes are unified structurally: the `extends` edges of all
//! designs are merged into one taxonomy ([`MergedTaxonomy`]), so a
//! `Vent` in one design and an `EmergencyVent extends Vent` in another
//! resolve to overlapping families exactly as they would inside a single
//! design (see [`super::graph::families_overlap`]).

use crate::model::{ActivationTrigger, CheckedSpec, PublishMode};
use crate::span::Span;
use std::collections::{BTreeMap, BTreeSet};

use super::conflicts::{collect_sites, ActuationSite};
use super::rates;
use crate::diag::Severity;

/// One design participating in a deployment, by display name (usually
/// the spec file stem).
#[derive(Debug, Clone, Copy)]
pub struct DesignRef<'a> {
    /// Display name used in cross-design messages.
    pub name: &'a str,
    /// The checked design.
    pub spec: &'a CheckedSpec,
}

/// Tuning knobs for [`analyze_deployment`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentOptions {
    /// Shared fleet-size hypothesis applied to every design.
    pub fleet_size: u64,
    /// Optional cut-link budget in messages per hour; when set and
    /// manifests pin families to edge links, per-link aggregates above
    /// it report W0602.
    pub link_budget_per_hour: Option<f64>,
}

impl Default for DeploymentOptions {
    fn default() -> Self {
        DeploymentOptions {
            fleet_size: 1000,
            link_budget_per_hour: None,
        }
    }
}

/// Where one deployment manifest pins a device family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinnedHost {
    /// Node name inside the manifest (e.g. `edge0`).
    pub node: String,
    /// Listen address of the node, `None` for the coordinator.
    pub addr: Option<String>,
    /// Shard variants of the family hosted there (empty when the whole
    /// family is pinned without sharding).
    pub variants: Vec<String>,
}

/// The device pins of one design's deployment manifest, reduced to what
/// the cut-safety and link-budget passes need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployPins {
    /// Index into the `designs` slice this manifest belongs to.
    pub design: usize,
    /// Where the manifest came from, for messages (usually a path).
    pub origin: String,
    /// Family name to the hosts it is pinned on.
    pub families: BTreeMap<String, Vec<PinnedHost>>,
}

/// The union of every design's `extends` edges: one tree (or forest) in
/// which cross-design subtype questions are answered structurally.
#[derive(Debug, Clone, Default)]
pub struct MergedTaxonomy {
    parents: BTreeMap<String, BTreeSet<String>>,
    known: BTreeSet<String>,
}

impl MergedTaxonomy {
    /// Merges the device taxonomies of all designs.
    #[must_use]
    pub fn build(designs: &[DesignRef<'_>]) -> Self {
        let mut tax = MergedTaxonomy::default();
        for design in designs {
            for device in design.spec.devices() {
                tax.known.insert(device.name.clone());
                if let Some(parent) = &device.parent {
                    tax.parents
                        .entry(device.name.clone())
                        .or_default()
                        .insert(parent.clone());
                }
            }
        }
        tax
    }

    /// Whether `descendant` is (transitively) a subtype of `ancestor` in
    /// the merged taxonomy. Every device is a subtype of itself.
    #[must_use]
    pub fn is_subtype(&self, descendant: &str, ancestor: &str) -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut queue: Vec<&str> = vec![descendant];
        while let Some(at) = queue.pop() {
            if at == ancestor {
                return true;
            }
            if !seen.insert(at) {
                continue;
            }
            if let Some(parents) = self.parents.get(at) {
                queue.extend(parents.iter().map(String::as_str));
            }
        }
        false
    }

    /// Whether the two families overlap: in a tree-shaped taxonomy they
    /// intersect exactly when one root subtypes the other.
    #[must_use]
    pub fn overlap(&self, first: &str, second: &str) -> bool {
        self.is_subtype(first, second) || self.is_subtype(second, first)
    }

    /// Known devices belonging to both families, in name order.
    #[must_use]
    pub fn shared_devices(&self, first: &str, second: &str) -> Vec<String> {
        self.known
            .iter()
            .filter(|d| self.is_subtype(d, first) && self.is_subtype(d, second))
            .cloned()
            .collect()
    }
}

/// A device publication a trigger chain is rooted at.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct TriggerRoot {
    /// Declaring device of the source.
    device: String,
    /// Source name.
    source: String,
    /// Whether every publication of the root is guaranteed to reach the
    /// consumer: an event-driven chain of `always publish` hops. A
    /// periodic (batched) subscription or a `maybe publish` hop anywhere
    /// breaks the guarantee.
    guaranteed: bool,
}

/// Device publications that (transitively) trigger each context's own
/// publications, keyed by context name. Computed in topological order so
/// upstream contexts are resolved before their consumers.
fn context_roots(spec: &CheckedSpec) -> BTreeMap<String, Vec<TriggerRoot>> {
    let mut roots: BTreeMap<String, Vec<TriggerRoot>> = BTreeMap::new();
    for ctx in spec.context_topo_order() {
        let mut merged: BTreeMap<(String, String), bool> = BTreeMap::new();
        for activation in &ctx.activations {
            // An activation that never publishes contributes no roots:
            // nothing downstream is event-triggered through it.
            if activation.publish == PublishMode::No {
                continue;
            }
            let publish_guaranteed = activation.publish == PublishMode::Always;
            let incoming: Vec<TriggerRoot> = match &activation.trigger {
                ActivationTrigger::DeviceSource { device, source } => {
                    vec![TriggerRoot {
                        device: declaring_device(spec, device, source),
                        source: source.clone(),
                        guaranteed: true,
                    }]
                }
                ActivationTrigger::Periodic { device, source, .. } => {
                    // Batched delivery decouples publication instants
                    // from readings: a shared root, but not a shared
                    // *instant*.
                    vec![TriggerRoot {
                        device: declaring_device(spec, device, source),
                        source: source.clone(),
                        guaranteed: false,
                    }]
                }
                ActivationTrigger::Context(from) => roots.get(from).cloned().unwrap_or_default(),
                ActivationTrigger::OnDemand => Vec::new(),
            };
            for root in incoming {
                let guaranteed = root.guaranteed && publish_guaranteed;
                let entry = merged.entry((root.device, root.source)).or_insert(false);
                *entry = *entry || guaranteed;
            }
        }
        roots.insert(
            ctx.name.clone(),
            merged
                .into_iter()
                .map(|((device, source), guaranteed)| TriggerRoot {
                    device,
                    source,
                    guaranteed,
                })
                .collect(),
        );
    }
    roots
}

/// Normalizes a source reference to the device that declares it, so
/// subscriptions against a subtype and its ancestor meet.
fn declaring_device(spec: &CheckedSpec, device: &str, source: &str) -> String {
    spec.device(device)
        .and_then(|d| d.source(source))
        .map_or(device, |s| s.declared_in.as_str())
        .to_owned()
}

/// The shared device publication witnessing a cross-design conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPublication {
    /// The root device family both chains subscribe to (the more
    /// refined of the two overlapping subscription families).
    pub device: String,
    /// Source name.
    pub source: String,
}

/// Two `do` clauses in *different* designs performing the same action on
/// overlapping device families.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossConflict {
    /// Index of the first design in the analyzed slice.
    pub first_design: usize,
    /// The first design's actuation site.
    pub first: ActuationSite,
    /// Index of the second design.
    pub second_design: usize,
    /// The second design's actuation site.
    pub second: ActuationSite,
    /// Devices actuated by both clauses, across the merged taxonomy.
    pub shared_devices: Vec<String>,
    /// When both trigger chains are rooted at one shared device
    /// publication, that publication.
    pub shared_publication: Option<SharedPublication>,
    /// Whether one publication of the shared root *guarantees* the
    /// double actuation (every hop event-coupled and `always publish`).
    pub guaranteed: bool,
}

impl CrossConflict {
    /// The diagnostic code this conflict reports under.
    #[must_use]
    pub fn code(&self) -> &'static str {
        if self.guaranteed {
            "E0601"
        } else {
            "W0601"
        }
    }
}

/// Aggregate load against one device family's declared capacity budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyLoad {
    /// Budget-declaring device family.
    pub family: String,
    /// The declared `@qos(capacityPerHour)` per deployed device.
    pub per_device_budget: u64,
    /// Family budget: `capacityPerHour x fleet_size`.
    pub budget_msgs_per_hour: f64,
    /// Known contribution of each design, by design name.
    pub per_design: Vec<(String, f64)>,
    /// Sum of the known contributions.
    pub total_msgs_per_hour: f64,
    /// Device-facing edges whose rate is unknown at design time.
    pub unknown_edges: usize,
}

impl FamilyLoad {
    /// Whether the aggregate exceeds the family budget.
    #[must_use]
    pub fn over_budget(&self) -> bool {
        self.total_msgs_per_hour > self.budget_msgs_per_hour
    }
}

/// Aggregate flow pinned to one cut link by the deployment manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoad {
    /// Listen address of the link.
    pub addr: String,
    /// Known contributions: (design name, family, msgs/h).
    pub per_design: Vec<(String, String, f64)>,
    /// Sum of the known contributions.
    pub total_msgs_per_hour: f64,
}

/// A shared device family pinned to incompatible places by two designs'
/// manifests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutViolation {
    /// Index of the first design.
    pub first_design: usize,
    /// Family name as pinned by the first manifest.
    pub first_family: String,
    /// Node name in the first manifest.
    pub first_node: String,
    /// Listen address in the first manifest (`None` = coordinator).
    pub first_addr: Option<String>,
    /// Index of the second design.
    pub second_design: usize,
    /// Family name as pinned by the second manifest.
    pub second_family: String,
    /// Node name in the second manifest.
    pub second_node: String,
    /// Listen address in the second manifest (`None` = coordinator).
    pub second_addr: Option<String>,
    /// The shard variant both manifests pin, when the disagreement is
    /// variant-level.
    pub variant: Option<String>,
}

/// A span attributed to one of the analyzed designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignSpan {
    /// Index into the analyzed `designs` slice.
    pub design: usize,
    /// Span inside that design's source.
    pub span: Span,
}

/// One cross-design finding, ready for multi-file rendering: the primary
/// span and every related span carry the index of the design (and hence
/// source file) they point into.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossFinding {
    /// Stable diagnostic code (`E0601`, `W0601`, `W0602`, `E0602`).
    pub code: &'static str,
    /// Error vs. warning, before any severity policy is applied.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Primary location.
    pub primary: DesignSpan,
    /// Secondary locations with their note text (e.g. the conflicting
    /// `do` clause in the partner design).
    pub related: Vec<(String, DesignSpan)>,
    /// Span-less notes (e.g. rendered provenance chains).
    pub notes: Vec<String>,
}

/// The combined result of the cross-design passes.
#[derive(Debug, Clone, Default)]
pub struct DeploymentReport {
    /// All findings in pass order (conflicts, cut safety, capacity).
    pub findings: Vec<CrossFinding>,
    /// Cross-design actuation conflicts (E0601 / W0601).
    pub conflicts: Vec<CrossConflict>,
    /// Manifest cut violations (E0602).
    pub cut_violations: Vec<CutViolation>,
    /// Aggregate family loads for every budgeted family (whether over
    /// budget or not — W0602 is reported only for the overloaded ones).
    pub family_loads: Vec<FamilyLoad>,
    /// Aggregate per-link loads (only when manifests pin families to
    /// links and a link budget is configured).
    pub link_loads: Vec<LinkLoad>,
}

impl DeploymentReport {
    /// Whether no cross-design actuation conflict was found — the
    /// property multi-application codegen banners advertise.
    #[must_use]
    pub fn conflict_free(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Whether any finding is error-severity.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Whether the passes produced no finding at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs every cross-design pass over `designs` (order defines the
/// design indices used in findings and pins).
#[must_use]
pub fn analyze_deployment(
    designs: &[DesignRef<'_>],
    pins: &[DeployPins],
    options: &DeploymentOptions,
) -> DeploymentReport {
    let taxonomy = MergedTaxonomy::build(designs);
    let mut report = DeploymentReport::default();
    detect_conflicts(designs, &taxonomy, &mut report);
    detect_cut_violations(designs, pins, &taxonomy, &mut report);
    detect_family_overloads(designs, &taxonomy, options, &mut report);
    detect_link_overloads(designs, pins, &taxonomy, options, &mut report);
    report
}

fn detect_conflicts(
    designs: &[DesignRef<'_>],
    taxonomy: &MergedTaxonomy,
    report: &mut DeploymentReport,
) {
    let sites: Vec<Vec<ActuationSite>> = designs.iter().map(|d| collect_sites(d.spec)).collect();
    let roots: Vec<BTreeMap<String, Vec<TriggerRoot>>> =
        designs.iter().map(|d| context_roots(d.spec)).collect();

    for i in 0..designs.len() {
        for j in i + 1..designs.len() {
            for first in &sites[i] {
                for second in &sites[j] {
                    if first.action != second.action
                        || !taxonomy.overlap(&first.device, &second.device)
                    {
                        continue;
                    }
                    let empty = Vec::new();
                    let first_roots = roots[i].get(&first.trigger_context).unwrap_or(&empty);
                    let second_roots = roots[j].get(&second.trigger_context).unwrap_or(&empty);
                    let mut shared_publication = None;
                    let mut guaranteed = false;
                    for ra in first_roots {
                        for rb in second_roots {
                            if ra.source != rb.source || !taxonomy.overlap(&ra.device, &rb.device) {
                                continue;
                            }
                            // Witness with the more refined family.
                            let device = if taxonomy.is_subtype(&ra.device, &rb.device) {
                                ra.device.clone()
                            } else {
                                rb.device.clone()
                            };
                            let pair_guaranteed = ra.guaranteed && rb.guaranteed;
                            if shared_publication.is_none() || (pair_guaranteed && !guaranteed) {
                                shared_publication = Some(SharedPublication {
                                    device,
                                    source: ra.source.clone(),
                                });
                            }
                            guaranteed = guaranteed || pair_guaranteed;
                        }
                    }
                    let conflict = CrossConflict {
                        first_design: i,
                        first: first.clone(),
                        second_design: j,
                        second: second.clone(),
                        shared_devices: taxonomy.shared_devices(&first.device, &second.device),
                        shared_publication,
                        guaranteed,
                    };
                    report.findings.push(render_conflict(designs, &conflict));
                    report.conflicts.push(conflict);
                }
            }
        }
    }
}

fn render_conflict(designs: &[DesignRef<'_>], conflict: &CrossConflict) -> CrossFinding {
    let (a, b) = (
        designs[conflict.first_design].name,
        designs[conflict.second_design].name,
    );
    let (first, second) = (&conflict.first, &conflict.second);
    let shared = conflict.shared_devices.join("`, `");
    let heading = format!(
        "designs `{a}` and `{b}` both perform `{}` on overlapping devices (`{shared}`)",
        first.action
    );
    let (severity, message) = if conflict.guaranteed {
        let publication = conflict
            .shared_publication
            .as_ref()
            .expect("guaranteed conflicts carry their witness publication");
        (
            Severity::Error,
            format!(
                "{heading}: every publication of shared `{}.{}` devices triggers controller `{}` ({a}) and controller `{}` ({b}), guaranteeing a cross-application duplicate actuation",
                publication.device, publication.source, first.controller, second.controller
            ),
        )
    } else if let Some(publication) = &conflict.shared_publication {
        (
            Severity::Warning,
            format!(
                "{heading}: both react to publications of shared `{}.{}` devices, but not on every publication (a periodic batch or `maybe publish` hop sits on the path), so the duplicate actuation depends on runtime timing",
                publication.device, publication.source
            ),
        )
    } else {
        (
            Severity::Warning,
            format!(
                "{heading} via independent trigger chains (`{}` in {a}, `{}` in {b}): whether the duplicate actuation happens depends on runtime timing",
                first.trigger_context, second.trigger_context
            ),
        )
    };
    let mut notes = Vec::new();
    if let Some(chain) = &first.chain {
        notes.push(format!("first actuation chain ({a}): {chain}"));
    }
    if let Some(chain) = &second.chain {
        notes.push(format!("second actuation chain ({b}): {chain}"));
    }
    CrossFinding {
        code: conflict.code(),
        severity,
        message,
        primary: DesignSpan {
            design: conflict.first_design,
            span: first.span,
        },
        related: vec![(
            format!(
                "conflicting `do` clause of controller `{}` in design `{b}` here",
                second.controller
            ),
            DesignSpan {
                design: conflict.second_design,
                span: second.span,
            },
        )],
        notes,
    }
}

fn detect_cut_violations(
    designs: &[DesignRef<'_>],
    pins: &[DeployPins],
    taxonomy: &MergedTaxonomy,
    report: &mut DeploymentReport,
) {
    for (pi, first) in pins.iter().enumerate() {
        for second in &pins[pi + 1..] {
            if first.design == second.design {
                continue;
            }
            for (fa, hosts_a) in &first.families {
                for (fb, hosts_b) in &second.families {
                    if !taxonomy.overlap(fa, fb) {
                        continue;
                    }
                    for violation in
                        compare_pins(first.design, fa, hosts_a, second.design, fb, hosts_b)
                    {
                        report
                            .findings
                            .push(render_cut(designs, pins, pi, &violation));
                        report.cut_violations.push(violation);
                    }
                }
            }
        }
    }
}

/// Compares where two manifests put one (overlapping) family pair and
/// yields every variant- or family-level disagreement.
fn compare_pins(
    first_design: usize,
    first_family: &str,
    hosts_a: &[PinnedHost],
    second_design: usize,
    second_family: &str,
    hosts_b: &[PinnedHost],
) -> Vec<CutViolation> {
    let variant_map = |hosts: &[PinnedHost]| -> BTreeMap<String, (String, Option<String>)> {
        hosts
            .iter()
            .flat_map(|h| {
                h.variants
                    .iter()
                    .map(move |v| (v.clone(), (h.node.clone(), h.addr.clone())))
            })
            .collect()
    };
    let mut violations = Vec::new();
    let map_a = variant_map(hosts_a);
    let map_b = variant_map(hosts_b);
    let make = |variant: Option<String>,
                (node_a, addr_a): &(String, Option<String>),
                (node_b, addr_b): &(String, Option<String>)| CutViolation {
        first_design,
        first_family: first_family.to_owned(),
        first_node: node_a.clone(),
        first_addr: addr_a.clone(),
        second_design,
        second_family: second_family.to_owned(),
        second_node: node_b.clone(),
        second_addr: addr_b.clone(),
        variant,
    };

    // Variant-level: the same physical shard pinned in both manifests
    // must resolve to the same attachment point.
    for (variant, placed_a) in &map_a {
        if let Some(placed_b) = map_b.get(variant) {
            if placed_a.1 != placed_b.1 {
                violations.push(make(Some(variant.clone()), placed_a, placed_b));
            }
        }
    }
    if !violations.is_empty() || (!map_a.is_empty() && !map_b.is_empty()) {
        return violations;
    }

    // Family-level (no shard variants on at least one side): the edge
    // attachment points of the whole family must agree.
    fn edge_hosts(hosts: &[PinnedHost]) -> Vec<&PinnedHost> {
        hosts.iter().filter(|h| h.addr.is_some()).collect()
    }
    let (edges_a, edges_b) = (edge_hosts(hosts_a), edge_hosts(hosts_b));
    let addrs = |edges: &[&PinnedHost]| -> BTreeSet<String> {
        edges.iter().filter_map(|h| h.addr.clone()).collect()
    };
    match (edges_a.first(), edges_b.first()) {
        (Some(ea), Some(eb)) => {
            if addrs(&edges_a).is_disjoint(&addrs(&edges_b)) {
                violations.push(make(
                    None,
                    &(ea.node.clone(), ea.addr.clone()),
                    &(eb.node.clone(), eb.addr.clone()),
                ));
            }
        }
        // Edge-pinned by one design, coordinator-attached in the other:
        // the device cannot be local to both processes.
        (Some(ea), None) => {
            if let Some(hb) = hosts_b.first() {
                violations.push(make(
                    None,
                    &(ea.node.clone(), ea.addr.clone()),
                    &(hb.node.clone(), None),
                ));
            }
        }
        (None, Some(eb)) => {
            if let Some(ha) = hosts_a.first() {
                violations.push(make(
                    None,
                    &(ha.node.clone(), None),
                    &(eb.node.clone(), eb.addr.clone()),
                ));
            }
        }
        (None, None) => {}
    }
    violations
}

fn render_cut(
    designs: &[DesignRef<'_>],
    pins: &[DeployPins],
    first_pin: usize,
    violation: &CutViolation,
) -> CrossFinding {
    let (a, b) = (
        designs[violation.first_design].name,
        designs[violation.second_design].name,
    );
    let place = |node: &str, addr: &Option<String>| match addr {
        Some(addr) => format!("edge node `{node}` ({addr})"),
        None => format!("coordinator node `{node}`"),
    };
    let what = match &violation.variant {
        Some(v) => format!(
            "shard variant `{v}` of shared device family `{}`",
            violation.first_family
        ),
        None => format!("shared device family `{}`", violation.first_family),
    };
    let message = format!(
        "designs `{a}` and `{b}` pin {what} to different attachment points: {} vs {} — one physical device cannot be hosted by two deployment processes",
        place(&violation.first_node, &violation.first_addr),
        place(&violation.second_node, &violation.second_addr),
    );
    let decl_span = |design: usize, family: &str| -> Span {
        designs[design]
            .spec
            .device(family)
            .map_or(Span::DUMMY, |d| d.span)
    };
    CrossFinding {
        code: "E0602",
        severity: Severity::Error,
        message,
        primary: DesignSpan {
            design: violation.first_design,
            span: decl_span(violation.first_design, &violation.first_family),
        },
        related: vec![(
            format!("pinned by design `{b}` for this declaration"),
            DesignSpan {
                design: violation.second_design,
                span: decl_span(violation.second_design, &violation.second_family),
            },
        )],
        notes: vec![format!(
            "manifests: {} vs {}",
            pins[first_pin].origin,
            pins.iter()
                .find(|p| p.design == violation.second_design)
                .map_or("?", |p| p.origin.as_str()),
        )],
    }
}

/// The device name of a capacity-report endpoint (`Device.source` or
/// `Device.action()`), `None` for `[Context]` / `(Controller)` ends.
fn endpoint_device(endpoint: &str) -> Option<&str> {
    if endpoint.starts_with('[') || endpoint.starts_with('(') {
        return None;
    }
    endpoint.split('.').next()
}

/// Known device-facing load of `design` against `family`, plus how many
/// matching edges have no design-time rate.
fn family_contribution(
    edges: &[rates::EdgeCapacity],
    taxonomy: &MergedTaxonomy,
    family: &str,
) -> (f64, usize) {
    let mut known = 0.0;
    let mut unknown = 0;
    for edge in edges {
        let touches = [&edge.from, &edge.to]
            .into_iter()
            .filter_map(|e| endpoint_device(e))
            .any(|device| taxonomy.overlap(device, family));
        if !touches {
            continue;
        }
        match edge.msgs_per_hour {
            Some(rate) => known += rate,
            None => unknown += 1,
        }
    }
    (known, unknown)
}

fn detect_family_overloads(
    designs: &[DesignRef<'_>],
    taxonomy: &MergedTaxonomy,
    options: &DeploymentOptions,
    report: &mut DeploymentReport,
) {
    // Budgets: any design may declare `@qos(capacityPerHour = N)` on a
    // device; the smallest declaration wins (most conservative).
    let mut budgets: BTreeMap<String, (u64, usize)> = BTreeMap::new();
    for (index, design) in designs.iter().enumerate() {
        for device in design.spec.devices() {
            let Some(cap) = device
                .annotations
                .iter()
                .find(|a| a.name == "qos")
                .and_then(|a| a.arg("capacityPerHour"))
                .and_then(|v| v.as_int())
            else {
                continue;
            };
            let entry = budgets.entry(device.name.clone()).or_insert((cap, index));
            if cap < entry.0 {
                *entry = (cap, index);
            }
        }
    }
    if budgets.is_empty() {
        return;
    }

    let capacities: Vec<rates::CapacityReport> = designs
        .iter()
        .map(|d| {
            // W0404 is a per-design finding already reported by the
            // single-design pass; here only the edge rates matter.
            let mut scratch = crate::diag::Diagnostics::new();
            rates::detect(d.spec, options.fleet_size, &mut scratch)
        })
        .collect();

    for (family, (per_device_budget, declaring_design)) in budgets {
        let budget = per_device_budget as f64 * options.fleet_size as f64;
        let mut per_design = Vec::new();
        let mut total = 0.0;
        let mut unknown = 0;
        for (design, capacity) in designs.iter().zip(&capacities) {
            let (known, unrated) = family_contribution(&capacity.edges, taxonomy, &family);
            unknown += unrated;
            if known > 0.0 || unrated > 0 {
                per_design.push((design.name.to_owned(), known));
                total += known;
            }
        }
        let load = FamilyLoad {
            family: family.clone(),
            per_device_budget,
            budget_msgs_per_hour: budget,
            per_design,
            total_msgs_per_hour: total,
            unknown_edges: unknown,
        };
        if load.over_budget() {
            report.findings.push(render_family_overload(
                designs,
                declaring_design,
                options.fleet_size,
                &load,
            ));
        }
        report.family_loads.push(load);
    }
}

fn render_family_overload(
    designs: &[DesignRef<'_>],
    declaring_design: usize,
    fleet_size: u64,
    load: &FamilyLoad,
) -> CrossFinding {
    let contributions = load
        .per_design
        .iter()
        .map(|(name, rate)| format!("`{name}` {rate:.1} msg/h"))
        .collect::<Vec<_>>()
        .join(", ");
    let mut notes = vec![format!("per-design contributions: {contributions}")];
    if load.unknown_edges > 0 {
        notes.push(format!(
            "{} matching edge(s) have no design-time rate and are not counted",
            load.unknown_edges
        ));
    }
    let primary_span = designs[declaring_design]
        .spec
        .device(&load.family)
        .map_or(Span::DUMMY, |d| d.span);
    let related = designs
        .iter()
        .enumerate()
        .filter(|(index, design)| {
            *index != declaring_design
                && design.spec.device(&load.family).is_some()
                && load.per_design.iter().any(|(n, _)| n == design.name)
        })
        .map(|(index, design)| {
            (
                format!("also orchestrated by design `{}` here", design.name),
                DesignSpan {
                    design: index,
                    span: design
                        .spec
                        .device(&load.family)
                        .map_or(Span::DUMMY, |d| d.span),
                },
            )
        })
        .collect();
    CrossFinding {
        code: "W0602",
        severity: Severity::Warning,
        message: format!(
            "co-deployed designs overload device family `{}`: {:.1} msg/h against a budget of {:.1} msg/h (@qos(capacityPerHour = {}) x {fleet_size} devices)",
            load.family,
            load.total_msgs_per_hour,
            load.budget_msgs_per_hour,
            load.per_device_budget,
        ),
        primary: DesignSpan {
            design: declaring_design,
            span: primary_span,
        },
        related,
        notes,
    }
}

fn detect_link_overloads(
    designs: &[DesignRef<'_>],
    pins: &[DeployPins],
    taxonomy: &MergedTaxonomy,
    options: &DeploymentOptions,
    report: &mut DeploymentReport,
) {
    let Some(budget) = options.link_budget_per_hour else {
        return;
    };
    if pins.is_empty() {
        return;
    }
    let capacities: BTreeMap<usize, rates::CapacityReport> = pins
        .iter()
        .filter(|p| p.design < designs.len())
        .map(|p| {
            let mut scratch = crate::diag::Diagnostics::new();
            (
                p.design,
                rates::detect(designs[p.design].spec, options.fleet_size, &mut scratch),
            )
        })
        .collect();

    // addr -> contributions.
    let mut links: BTreeMap<String, Vec<(String, String, f64)>> = BTreeMap::new();
    for pin in pins {
        let Some(capacity) = capacities.get(&pin.design) else {
            continue;
        };
        for (family, hosts) in &pin.families {
            let (family_load, _) = family_contribution(&capacity.edges, taxonomy, family);
            if family_load <= 0.0 {
                continue;
            }
            let total_variants: usize = hosts.iter().map(|h| h.variants.len()).sum();
            let edge_hosts = hosts.iter().filter(|h| h.addr.is_some()).count();
            for host in hosts {
                let Some(addr) = &host.addr else { continue };
                // Pro-rate the family's flow across its edge hosts by
                // shard-variant count when sharded, evenly otherwise.
                let share = if total_variants > 0 {
                    host.variants.len() as f64 / total_variants as f64
                } else {
                    1.0 / edge_hosts.max(1) as f64
                };
                if share <= 0.0 {
                    continue;
                }
                links.entry(addr.clone()).or_default().push((
                    designs[pin.design].name.to_owned(),
                    family.clone(),
                    family_load * share,
                ));
            }
        }
    }

    for (addr, per_design) in links {
        let total: f64 = per_design.iter().map(|(_, _, rate)| rate).sum();
        let load = LinkLoad {
            addr: addr.clone(),
            per_design,
            total_msgs_per_hour: total,
        };
        if total > budget {
            let contributions = load
                .per_design
                .iter()
                .map(|(design, family, rate)| format!("`{design}`/{family} {rate:.1} msg/h"))
                .collect::<Vec<_>>()
                .join(", ");
            // Anchor on the first contributing design's family decl.
            let primary = load
                .per_design
                .first()
                .and_then(|(design_name, family, _)| {
                    designs.iter().enumerate().find_map(|(index, d)| {
                        (d.name == design_name)
                            .then(|| d.spec.device(family).map(|dev| (index, dev.span)))
                            .flatten()
                    })
                })
                .map_or(
                    DesignSpan {
                        design: 0,
                        span: Span::DUMMY,
                    },
                    |(design, span)| DesignSpan { design, span },
                );
            report.findings.push(CrossFinding {
                code: "W0602",
                severity: Severity::Warning,
                message: format!(
                    "deployment cut link `{addr}` is overloaded: {total:.1} msg/h against a budget of {budget:.1} msg/h"
                ),
                primary,
                related: Vec::new(),
                notes: vec![format!("per-design contributions: {contributions}")],
            });
        }
        report.link_loads.push(load);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    fn deploy(sources: &[(&str, &str)], pins: &[DeployPins]) -> DeploymentReport {
        deploy_with(sources, pins, &DeploymentOptions::default())
    }

    fn deploy_with(
        sources: &[(&str, &str)],
        pins: &[DeployPins],
        options: &DeploymentOptions,
    ) -> DeploymentReport {
        let specs: Vec<(&str, CheckedSpec)> = sources
            .iter()
            .map(|(name, src)| (*name, compile_str(src).unwrap()))
            .collect();
        let designs: Vec<DesignRef<'_>> = specs
            .iter()
            .map(|(name, spec)| DesignRef { name, spec })
            .collect();
        analyze_deployment(&designs, pins, options)
    }

    const SHARED_GUARANTEED_A: &str = r#"
        device Sensor { source motion as Boolean; }
        device Lamp { action lit; }
        context Presence as Boolean { when provided motion from Sensor always publish; }
        controller Comfort { when provided Presence do lit on Lamp; }
    "#;

    const SHARED_GUARANTEED_B: &str = r#"
        device Sensor { source motion as Boolean; }
        device Lamp { action lit; }
        context Intrusion as Boolean { when provided motion from Sensor always publish; }
        controller Patrol { when provided Intrusion do lit on Lamp; }
    "#;

    #[test]
    fn shared_publication_with_always_chains_is_guaranteed() {
        let report = deploy(
            &[("a", SHARED_GUARANTEED_A), ("b", SHARED_GUARANTEED_B)],
            &[],
        );
        assert_eq!(report.conflicts.len(), 1);
        let conflict = &report.conflicts[0];
        assert!(conflict.guaranteed);
        assert_eq!(conflict.code(), "E0601");
        assert_eq!(
            conflict.shared_publication,
            Some(SharedPublication {
                device: "Sensor".into(),
                source: "motion".into(),
            })
        );
        assert_eq!(conflict.shared_devices, vec!["Lamp".to_owned()]);
        let finding = &report.findings[0];
        assert_eq!(finding.code, "E0601");
        assert_eq!(finding.severity, Severity::Error);
        assert!(
            finding.message.contains("`Sensor.motion`"),
            "{}",
            finding.message
        );
        // Both provenance chains ride along as notes, and the partner
        // `do` clause is a related location into the second design.
        assert!(finding
            .notes
            .iter()
            .any(|n| n.contains("first actuation chain (a)")));
        assert!(finding
            .notes
            .iter()
            .any(|n| n.contains("second actuation chain (b)")));
        assert_eq!(finding.related.len(), 1);
        assert_eq!(finding.related[0].1.design, 1);
        assert!(report.has_errors());
    }

    #[test]
    fn maybe_publish_downgrades_to_possible_conflict() {
        let b = SHARED_GUARANTEED_B.replace("always publish", "maybe publish");
        let report = deploy(&[("a", SHARED_GUARANTEED_A), ("b", &b)], &[]);
        assert_eq!(report.conflicts.len(), 1);
        let conflict = &report.conflicts[0];
        assert!(!conflict.guaranteed);
        assert_eq!(conflict.code(), "W0601");
        assert!(conflict.shared_publication.is_some());
        assert!(report.findings[0].message.contains("maybe publish"));
    }

    #[test]
    fn periodic_batching_downgrades_to_possible_conflict() {
        let b = SHARED_GUARANTEED_B.replace(
            "when provided motion from Sensor",
            "when periodic motion from Sensor <1 min>",
        );
        let report = deploy(&[("a", SHARED_GUARANTEED_A), ("b", &b)], &[]);
        assert_eq!(report.conflicts.len(), 1);
        assert_eq!(report.conflicts[0].code(), "W0601");
    }

    #[test]
    fn independent_roots_warn_without_witness() {
        let b = r#"
            device Door { source open as Boolean; }
            device Lamp { action lit; }
            context Watch as Boolean { when provided open from Door always publish; }
            controller Night { when provided Watch do lit on Lamp; }
        "#;
        let report = deploy(&[("a", SHARED_GUARANTEED_A), ("b", b)], &[]);
        assert_eq!(report.conflicts.len(), 1);
        let conflict = &report.conflicts[0];
        assert_eq!(conflict.code(), "W0601");
        assert_eq!(conflict.shared_publication, None);
        assert!(report.findings[0]
            .message
            .contains("independent trigger chains"));
    }

    #[test]
    fn subtype_declared_in_other_design_overlaps() {
        let b = r#"
            device Sensor { source motion as Boolean; }
            device Lamp { action lit; }
            device HallLamp extends Lamp { attribute hall as String; }
            context Intrusion as Boolean { when provided motion from Sensor always publish; }
            controller Patrol { when provided Intrusion do lit on HallLamp; }
        "#;
        let report = deploy(&[("a", SHARED_GUARANTEED_A), ("b", b)], &[]);
        // `a` actuates the whole Lamp family; `b` its HallLamp subfamily
        // (unknown to `a`): the merged taxonomy still sees the overlap.
        assert_eq!(report.conflicts.len(), 1);
        assert_eq!(
            report.conflicts[0].shared_devices,
            vec!["HallLamp".to_owned()]
        );
    }

    #[test]
    fn disjoint_sibling_families_are_clean() {
        let a = r#"
            device Sensor { source motion as Boolean; }
            device Lamp { action lit; }
            device HallLamp extends Lamp { attribute hall as String; }
            context Presence as Boolean { when provided motion from Sensor always publish; }
            controller Comfort { when provided Presence do lit on HallLamp; }
        "#;
        let b = r#"
            device Sensor { source motion as Boolean; }
            device Lamp { action lit; }
            device YardLamp extends Lamp { attribute yard as String; }
            context Intrusion as Boolean { when provided motion from Sensor always publish; }
            controller Patrol { when provided Intrusion do lit on YardLamp; }
        "#;
        let report = deploy(&[("a", a), ("b", b)], &[]);
        assert!(report.conflict_free());
        assert!(report.is_clean());
    }

    #[test]
    fn single_design_reports_no_cross_conflicts() {
        let report = deploy(&[("a", SHARED_GUARANTEED_A)], &[]);
        assert!(report.conflict_free());
        assert!(report.is_clean());
    }

    const METERED: &str = r#"
        @qos(capacityPerHour = 100)
        device Meter { source reading as Float; }
        device K { action a; }
        context Usage as Float { when periodic reading from Meter <1 min> always publish; }
        controller Out { when provided Usage do a on K; }
    "#;

    #[test]
    fn aggregate_load_over_family_budget_warns() {
        let options = DeploymentOptions {
            fleet_size: 1,
            ..DeploymentOptions::default()
        };
        // Each design polls the shared meters at 60 msg/h; together they
        // exceed the 100 msg/h per-device budget.
        let report = deploy_with(&[("a", METERED), ("b", METERED)], &[], &options);
        let finding = report
            .findings
            .iter()
            .find(|f| f.code == "W0602")
            .expect("aggregate overload reported");
        assert_eq!(finding.severity, Severity::Warning);
        assert!(finding.message.contains("`Meter`"), "{}", finding.message);
        assert_eq!(report.family_loads.len(), 1);
        let load = &report.family_loads[0];
        assert_eq!(load.total_msgs_per_hour, 120.0);
        assert_eq!(load.budget_msgs_per_hour, 100.0);
        assert!(load.over_budget());
        assert_eq!(load.per_design.len(), 2);
    }

    #[test]
    fn aggregate_load_within_budget_is_clean() {
        let options = DeploymentOptions {
            fleet_size: 1,
            ..DeploymentOptions::default()
        };
        let roomy = METERED.replace("capacityPerHour = 100", "capacityPerHour = 150");
        let report = deploy_with(&[("a", &roomy), ("b", &roomy)], &[], &options);
        assert!(report.findings.iter().all(|f| f.code != "W0602"));
        assert_eq!(report.family_loads.len(), 1);
        assert!(!report.family_loads[0].over_budget());
    }

    fn pin(design: usize, family: &str, hosts: &[(&str, Option<&str>, &[&str])]) -> DeployPins {
        DeployPins {
            design,
            origin: format!("manifest{design}.json"),
            families: BTreeMap::from([(
                family.to_owned(),
                hosts
                    .iter()
                    .map(|(node, addr, variants)| PinnedHost {
                        node: (*node).to_owned(),
                        addr: addr.map(str::to_owned),
                        variants: variants.iter().map(|v| (*v).to_owned()).collect(),
                    })
                    .collect(),
            )]),
        }
    }

    #[test]
    fn variant_pinned_to_two_addrs_is_a_cut_violation() {
        let pins = vec![
            pin(0, "Sensor", &[("edge0", Some("127.0.0.1:7070"), &["s1"])]),
            pin(1, "Sensor", &[("edge1", Some("127.0.0.1:9090"), &["s1"])]),
        ];
        let report = deploy(
            &[("a", SHARED_GUARANTEED_A), ("b", SHARED_GUARANTEED_B)],
            &pins,
        );
        let violation = report
            .cut_violations
            .first()
            .expect("cut violation reported");
        assert_eq!(violation.variant.as_deref(), Some("s1"));
        let finding = report
            .findings
            .iter()
            .find(|f| f.code == "E0602")
            .expect("E0602 reported");
        assert_eq!(finding.severity, Severity::Error);
        assert!(finding.message.contains("127.0.0.1:7070"));
        assert!(finding.message.contains("127.0.0.1:9090"));
        assert!(finding.notes.iter().any(|n| n.contains("manifest0.json")));
    }

    #[test]
    fn agreeing_pins_are_safe() {
        let pins = vec![
            pin(0, "Sensor", &[("edge0", Some("127.0.0.1:7070"), &["s1"])]),
            pin(1, "Sensor", &[("edgeX", Some("127.0.0.1:7070"), &["s1"])]),
        ];
        let report = deploy(
            &[("a", SHARED_GUARANTEED_A), ("b", SHARED_GUARANTEED_B)],
            &pins,
        );
        assert!(report.cut_violations.is_empty());
    }

    #[test]
    fn edge_pin_vs_coordinator_is_a_cut_violation() {
        let pins = vec![
            pin(0, "Sensor", &[("edge0", Some("127.0.0.1:7070"), &[])]),
            pin(1, "Sensor", &[("city", None, &[])]),
        ];
        let report = deploy(
            &[("a", SHARED_GUARANTEED_A), ("b", SHARED_GUARANTEED_B)],
            &pins,
        );
        assert_eq!(report.cut_violations.len(), 1);
        assert!(report.cut_violations[0].second_addr.is_none());
    }

    #[test]
    fn disjoint_shard_variants_are_distinct_devices() {
        let pins = vec![
            pin(0, "Sensor", &[("edge0", Some("127.0.0.1:7070"), &["s1"])]),
            pin(1, "Sensor", &[("edge1", Some("127.0.0.1:9090"), &["s2"])]),
        ];
        let report = deploy(
            &[("a", SHARED_GUARANTEED_A), ("b", SHARED_GUARANTEED_B)],
            &pins,
        );
        assert!(report.cut_violations.is_empty());
    }

    #[test]
    fn link_budget_aggregates_across_designs() {
        let options = DeploymentOptions {
            fleet_size: 1,
            link_budget_per_hour: Some(100.0),
        };
        let pins = vec![
            pin(0, "Meter", &[("edge0", Some("127.0.0.1:7070"), &[])]),
            pin(1, "Meter", &[("edge9", Some("127.0.0.1:7070"), &[])]),
        ];
        // 60 msg/h from each design onto the same link: 120 > 100.
        let report = deploy_with(&[("a", METERED), ("b", METERED)], &pins, &options);
        assert_eq!(report.link_loads.len(), 1);
        assert_eq!(report.link_loads[0].total_msgs_per_hour, 120.0);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "W0602" && f.message.contains("cut link")));
    }

    #[test]
    fn merged_taxonomy_answers_cross_design_subtyping() {
        let a = compile_str("device Vent { action setLevel; }").unwrap();
        let b = compile_str(
            "device Vent { action setLevel; } device EmergencyVent extends Vent { attribute zone as String; }",
        )
        .unwrap();
        let designs = [
            DesignRef {
                name: "a",
                spec: &a,
            },
            DesignRef {
                name: "b",
                spec: &b,
            },
        ];
        let tax = MergedTaxonomy::build(&designs);
        assert!(tax.is_subtype("EmergencyVent", "Vent"));
        assert!(!tax.is_subtype("Vent", "EmergencyVent"));
        assert!(tax.overlap("Vent", "EmergencyVent"));
        assert_eq!(
            tax.shared_devices("Vent", "EmergencyVent"),
            vec!["EmergencyVent".to_owned()]
        );
    }
}

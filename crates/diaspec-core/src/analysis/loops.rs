//! Pass 3: environment feedback-loop detection (W0402 / W0403).
//!
//! A controller closes a loop *through the environment* when it actuates
//! a device family whose sources feed — transitively, through context
//! subscriptions — back into the very context that triggers it. The
//! design language cannot see this edge (it goes through the physical
//! world), which is exactly why the analyzer must:
//!
//! - **W0402** — the loop re-enters through an *event-driven* (or
//!   periodic) subscription: each actuation can schedule the next
//!   trigger, so the design can oscillate on its own.
//! - **W0403** — the loop closes only through `get` reads: the actuation
//!   influences future computations but cannot re-trigger them by
//!   itself. Weaker, still worth knowing about.

use crate::diag::{Diagnostic, Diagnostics};
use crate::model::{ActivationTrigger, CheckedSpec, InputRef};
use crate::span::Span;
use serde::{Deserialize, Serialize};

use super::graph::{families_overlap, DesignGraph};

/// How a feedback loop re-enters the trigger chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopKind {
    /// Re-entry through event-driven or periodic subscriptions (W0402).
    Event,
    /// Re-entry only through query-driven `get` reads (W0403).
    Query,
}

/// A loop closed through the environment: actuate → sense → … → trigger.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedbackLoop {
    /// The controller whose actuation closes the loop.
    pub controller: String,
    /// The context triggering that controller.
    pub trigger_context: String,
    /// The actuated action.
    pub action: String,
    /// The actuated device family root (the `do ... on X` target).
    pub device: String,
    /// The device whose source re-enters the design (overlaps `device`'s
    /// family).
    pub feedback_device: String,
    /// The source closing the loop.
    pub source: String,
    /// The context fed by that source.
    pub reentry_context: String,
    /// Context path from the re-entry context to the trigger context
    /// (inclusive).
    pub path: Vec<String>,
    /// Event-driven (strong) or query-only (weak) re-entry.
    pub kind: LoopKind,
    /// Span of the offending `do` clause.
    pub span: Span,
}

/// Detects environment feedback loops and reports them into `diags`.
///
/// At most one loop is reported per `do` clause, preferring event-driven
/// re-entry (the stronger finding) over query-only re-entry.
pub(crate) fn detect(
    spec: &CheckedSpec,
    graph: &DesignGraph,
    diags: &mut Diagnostics,
) -> Vec<FeedbackLoop> {
    // Every sensing entry point, in deterministic context order.
    let mut entries: Vec<Entry<'_>> = Vec::new();
    for ctx in spec.contexts() {
        for activation in &ctx.activations {
            match &activation.trigger {
                ActivationTrigger::DeviceSource { device, source }
                | ActivationTrigger::Periodic { device, source, .. } => {
                    entries.push((&ctx.name, device, source, true));
                }
                ActivationTrigger::Context(_) | ActivationTrigger::OnDemand => {}
            }
            for get in &activation.gets {
                if let InputRef::DeviceSource { device, source } = get {
                    entries.push((&ctx.name, device, source, false));
                }
            }
        }
    }

    let mut loops = Vec::new();
    for ctrl in spec.controllers() {
        for binding in &ctrl.bindings {
            for (index, (action, device)) in binding.actions.iter().enumerate() {
                let found = find_loop(spec, graph, &entries, &binding.context, device);
                if let Some((entry, path, kind)) = found {
                    let lp = FeedbackLoop {
                        controller: ctrl.name.clone(),
                        trigger_context: binding.context.clone(),
                        action: action.clone(),
                        device: device.clone(),
                        feedback_device: entry.1.to_owned(),
                        source: entry.2.to_owned(),
                        reentry_context: entry.0.to_owned(),
                        path,
                        kind,
                        span: binding.action_span(index),
                    };
                    diags.push(render(spec, &lp));
                    loops.push(lp);
                }
            }
        }
    }
    loops
}

/// A sensing entry point: `(context, device, source, strong?)` — strong
/// when the source *triggers* the context rather than being `get`-read.
type Entry<'a> = (&'a str, &'a str, &'a str, bool);

/// Finds the best feedback loop for one `do` clause: an entry point
/// sensing the actuated family that reaches the trigger context. Strong
/// (event-driven all the way) beats weak (any path, query re-entry).
fn find_loop<'e>(
    spec: &CheckedSpec,
    graph: &DesignGraph,
    entries: &'e [Entry<'e>],
    trigger: &str,
    actuated: &str,
) -> Option<(&'e Entry<'e>, Vec<String>, LoopKind)> {
    let mut weak = None;
    for entry in entries {
        let (ctx, sensed_device, _source, strong_entry) = *entry;
        if !families_overlap(spec, sensed_device, actuated) {
            continue;
        }
        if strong_entry {
            if let Some(path) = graph.context_path(ctx, trigger, false) {
                return Some((entry, path, LoopKind::Event));
            }
        }
        if weak.is_none() {
            if let Some(path) = graph.context_path(ctx, trigger, true) {
                weak = Some((entry, path, LoopKind::Query));
            }
        }
    }
    weak
}

fn render(spec: &CheckedSpec, lp: &FeedbackLoop) -> Diagnostic {
    let mut path = String::new();
    for (i, ctx) in lp.path.iter().enumerate() {
        if i > 0 {
            path.push_str(" -> ");
        }
        path.push('[');
        path.push_str(ctx);
        path.push(']');
    }
    let full_chain = format!(
        "{}.{} -> {path} -> ({}) -> {}.{}()",
        lp.feedback_device, lp.source, lp.controller, lp.device, lp.action
    );
    let trigger_span = spec
        .context(&lp.trigger_context)
        .map(|c| c.span)
        .unwrap_or(Span::DUMMY);
    match lp.kind {
        LoopKind::Event => Diagnostic::warning(
            "W0402",
            format!(
                "actuating `{}.{}` closes an event-driven feedback loop: `{}.{}` re-triggers `{}`, which reaches trigger context `{}`",
                lp.device, lp.action, lp.feedback_device, lp.source, lp.reentry_context, lp.trigger_context
            ),
            lp.span,
        ),
        LoopKind::Query => Diagnostic::warning(
            "W0403",
            format!(
                "actuating `{}.{}` feeds back into the trigger chain of `{}` through `get` reads of `{}.{}`",
                lp.device, lp.action, lp.controller, lp.feedback_device, lp.source
            ),
            lp.span,
        ),
    }
    .with_note(format!("feedback cycle: {full_chain} -> (environment) -> {}.{}", lp.feedback_device, lp.source), None)
    .with_note(
        format!("trigger context `{}` declared here", lp.trigger_context),
        Some(trigger_span),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    fn analyze(src: &str) -> (Vec<FeedbackLoop>, Diagnostics) {
        let spec = compile_str(src).unwrap();
        let graph = DesignGraph::build(&spec);
        let mut diags = Diagnostics::new();
        let loops = detect(&spec, &graph, &mut diags);
        (loops, diags)
    }

    #[test]
    fn event_driven_loop_detected() {
        let (loops, diags) = analyze(
            r#"
            device Heater { source temperature as Float; action heat; }
            context Cold as Float { when provided temperature from Heater always publish; }
            controller Thermostat { when provided Cold do heat on Heater; }
            "#,
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].kind, LoopKind::Event);
        assert_eq!(loops[0].reentry_context, "Cold");
        assert_eq!(loops[0].path, vec!["Cold"]);
        assert!(diags.find("W0402").is_some());
        assert!(diags.find("W0403").is_none());
    }

    #[test]
    fn loop_through_subtype_family() {
        // Actuates the subtype; the loop re-enters through a subscription
        // against the ancestor (whose family contains the subtype).
        let (loops, diags) = analyze(
            r#"
            device Appliance { source watts as Float; }
            device Oven extends Appliance { action off; }
            context Spike as Float {
              when provided watts from Appliance always publish;
            }
            context Decide as Float { when provided Spike always publish; }
            controller Cut { when provided Decide do off on Oven; }
            "#,
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].feedback_device, "Appliance");
        assert_eq!(loops[0].path, vec!["Spike", "Decide"]);
        assert!(diags.find("W0402").is_some());
    }

    #[test]
    fn query_only_loop_is_weaker() {
        let (loops, diags) = analyze(
            r#"
            device Meter { source reading as Float; }
            device Cooker { source consumption as Float; action Off; }
            context Usage as Float {
              when provided reading from Meter
                get consumption from Cooker
                always publish;
            }
            controller Guard { when provided Usage do Off on Cooker; }
            "#,
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].kind, LoopKind::Query);
        assert!(diags.find("W0403").is_some());
        assert!(diags.find("W0402").is_none());
    }

    #[test]
    fn disjoint_families_do_not_loop() {
        let (loops, diags) = analyze(
            r#"
            device Sensor { source motion as Boolean; }
            device Light { action lit; }
            context Presence as Boolean { when provided motion from Sensor always publish; }
            controller Lights { when provided Presence do lit on Light; }
            "#,
        );
        assert!(loops.is_empty());
        assert!(diags.is_empty());
    }

    #[test]
    fn sibling_subtype_actuation_does_not_loop() {
        // Senses one subtype, actuates a disjoint sibling: no overlap.
        let (loops, _) = analyze(
            r#"
            device Panel { source brightness as Float; action update; }
            device Indoor extends Panel { attribute room as String; }
            device Outdoor extends Panel { attribute street as String; }
            context Dim as Float { when provided brightness from Indoor always publish; }
            controller Refresh { when provided Dim do update on Outdoor; }
            "#,
        );
        assert!(loops.is_empty());
    }
}

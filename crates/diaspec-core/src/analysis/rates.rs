//! Pass 4b: rate propagation — window/period mismatches (W0404) and the
//! static capacity report.
//!
//! Message rates propagate forward through the dataflow graph in
//! topological order. Periodic subscriptions anchor the computation
//! (`1/period`); a `grouped by … every <W>` clause re-times publication
//! to once per window; event-driven sources are unknown at design time
//! unless the device carries a `@qos(periodMs = …)` hint. Device-facing
//! edges scale with a *fleet-size hypothesis* (how many deployed devices
//! match the family) — the small-to-large-scale knob of the paper.

use crate::diag::{Diagnostic, Diagnostics};
use crate::model::{ActivationTrigger, CheckedSpec, InputRef, PublishMode};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

const MS_PER_HOUR: f64 = 3_600_000.0;

/// One edge of the capacity report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeCapacity {
    /// Producing endpoint (`Device.source`, `[Context]`, `(Controller)`).
    pub from: String,
    /// Consuming endpoint.
    pub to: String,
    /// Interaction kind: `periodic`, `event`, `publish`, `get`, or `do`.
    pub kind: String,
    /// Estimated messages per hour, `None` when unknown at design time.
    pub msgs_per_hour: Option<f64>,
    /// How the estimate was derived (or why there is none).
    pub note: String,
}

/// The static capacity report: every interaction edge with its estimated
/// hourly message rate under a fleet-size hypothesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityReport {
    /// Assumed number of deployed devices per referenced family.
    pub fleet_size: u64,
    /// Edges in deterministic (consumer declaration) order.
    pub edges: Vec<EdgeCapacity>,
    /// Sum of all known edge rates.
    pub total_msgs_per_hour: f64,
    /// Number of edges whose rate is unknown (event-driven, no hint).
    pub unknown_edges: usize,
}

impl fmt::Display for CapacityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "capacity report (fleet hypothesis: {} devices per family)",
            self.fleet_size
        )?;
        for edge in &self.edges {
            let rate = match edge.msgs_per_hour {
                Some(r) => format!("{r:>12.1} msg/h"),
                None => format!("{:>12} msg/h", "?"),
            };
            writeln!(
                f,
                "  {rate}  {} -> {}  [{}]  {}",
                edge.from, edge.to, edge.kind, edge.note
            )?;
        }
        write!(
            f,
            "  total known: {:.1} msg/h, {} edge(s) unknown",
            self.total_msgs_per_hour, self.unknown_edges
        )
    }
}

/// Runs the rate pass: W0404 diagnostics plus the capacity report.
pub(crate) fn detect(
    spec: &CheckedSpec,
    fleet_size: u64,
    diags: &mut Diagnostics,
) -> CapacityReport {
    let fleet = fleet_size as f64;
    let mut edges = Vec::new();
    // Publication rate (msg/h) of each context, `None` when unknown.
    // Topological order guarantees producers are rated before consumers.
    let mut rate: BTreeMap<&str, Option<f64>> = BTreeMap::new();

    for ctx in spec.context_topo_order() {
        let mut own: Option<f64> = Some(0.0);
        for activation in &ctx.activations {
            // W0404: a window shorter than the delivery period closes
            // with at most one batch in it — aggregation degenerates.
            if let (ActivationTrigger::Periodic { period_ms, .. }, Some(grouping)) =
                (&activation.trigger, &activation.grouping)
            {
                if let Some(window_ms) = grouping.window_ms {
                    if window_ms < *period_ms {
                        diags.push(Diagnostic::warning(
                            "W0404",
                            format!(
                                "aggregation window ({window_ms} ms) is shorter than the delivery period ({period_ms} ms): each window sees at most one batch"
                            ),
                            grouping.window_span.unwrap_or(activation.span),
                        ));
                    }
                }
            }

            let activations_per_hour = match &activation.trigger {
                ActivationTrigger::Periodic {
                    device,
                    source,
                    period_ms,
                } => {
                    let per_device = MS_PER_HOUR / *period_ms as f64;
                    edges.push(EdgeCapacity {
                        from: format!("{device}.{source}"),
                        to: format!("[{}]", ctx.name),
                        kind: "periodic".to_owned(),
                        msgs_per_hour: Some(fleet * per_device),
                        note: format!("{fleet_size} devices x 1/{period_ms} ms, batched"),
                    });
                    // One activation per delivery, or per window when
                    // the readings are folded `every <W>`.
                    let window = activation.grouping.as_ref().and_then(|g| g.window_ms);
                    Some(match window {
                        Some(w) => MS_PER_HOUR / w as f64,
                        None => per_device,
                    })
                }
                ActivationTrigger::DeviceSource { device, source } => {
                    let hinted = qos_period_ms(spec, device);
                    let per_hour = hinted.map(|p| fleet * (MS_PER_HOUR / p as f64));
                    edges.push(EdgeCapacity {
                        from: format!("{device}.{source}"),
                        to: format!("[{}]", ctx.name),
                        kind: "event".to_owned(),
                        msgs_per_hour: per_hour,
                        note: match hinted {
                            Some(p) => {
                                format!("{fleet_size} devices x @qos(periodMs = {p}) hint")
                            }
                            None => "event-driven; no @qos(periodMs) hint".to_owned(),
                        },
                    });
                    per_hour
                }
                ActivationTrigger::Context(from) => {
                    let upstream = rate.get(from.as_str()).copied().flatten();
                    edges.push(EdgeCapacity {
                        from: format!("[{from}]"),
                        to: format!("[{}]", ctx.name),
                        kind: "publish".to_owned(),
                        msgs_per_hour: upstream,
                        note: match upstream {
                            Some(_) => "publication rate of the producer".to_owned(),
                            None => "producer rate unknown".to_owned(),
                        },
                    });
                    upstream
                }
                ActivationTrigger::OnDemand => Some(0.0),
            };

            // `get` edges fire once per activation; device-facing gets
            // fan out to every matching deployed device.
            for get in &activation.gets {
                let (from, getscale, kindnote) = match get {
                    InputRef::DeviceSource { device, source } => (
                        format!("{device}.{source}"),
                        fleet,
                        format!("per activation x {fleet_size} devices"),
                    ),
                    InputRef::Context(name) => {
                        (format!("[{name}]"), 1.0, "per activation".to_owned())
                    }
                };
                edges.push(EdgeCapacity {
                    from,
                    to: format!("[{}]", ctx.name),
                    kind: "get".to_owned(),
                    msgs_per_hour: activations_per_hour.map(|r| r * getscale),
                    note: kindnote,
                });
            }

            // Contribution to the context's own publication rate.
            let published = match activation.publish {
                PublishMode::Always | PublishMode::Maybe => activations_per_hour,
                PublishMode::No => Some(0.0),
            };
            own = match (own, published) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
        rate.insert(&ctx.name, own);
    }

    for ctrl in spec.controllers() {
        for binding in &ctrl.bindings {
            let trigger_rate = rate.get(binding.context.as_str()).copied().flatten();
            edges.push(EdgeCapacity {
                from: format!("[{}]", binding.context),
                to: format!("({})", ctrl.name),
                kind: "publish".to_owned(),
                msgs_per_hour: trigger_rate,
                note: match trigger_rate {
                    Some(_) => "publication rate of the trigger context".to_owned(),
                    None => "trigger rate unknown".to_owned(),
                },
            });
            for (action, device) in &binding.actions {
                edges.push(EdgeCapacity {
                    from: format!("({})", ctrl.name),
                    to: format!("{device}.{action}()"),
                    kind: "do".to_owned(),
                    msgs_per_hour: trigger_rate.map(|r| r * fleet),
                    note: format!("per trigger x {fleet_size} matching devices"),
                });
            }
        }
    }

    let total = edges.iter().filter_map(|e| e.msgs_per_hour).sum::<f64>();
    let unknown = edges.iter().filter(|e| e.msgs_per_hour.is_none()).count();
    CapacityReport {
        fleet_size,
        edges,
        total_msgs_per_hour: total,
        unknown_edges: unknown,
    }
}

/// The `@qos(periodMs = …)` hint of a device, when declared: the design
/// promise of how often each deployed instance publishes.
fn qos_period_ms(spec: &CheckedSpec, device: &str) -> Option<u64> {
    spec.device(device)?
        .annotations
        .iter()
        .find(|a| a.name == "qos")?
        .arg("periodMs")?
        .as_int()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    fn analyze(src: &str, fleet: u64) -> (CapacityReport, Diagnostics) {
        let spec = compile_str(src).unwrap();
        let mut diags = Diagnostics::new();
        let report = detect(&spec, fleet, &mut diags);
        (report, diags)
    }

    #[test]
    fn window_shorter_than_period_warns() {
        let (_, diags) = analyze(
            r#"
            device Meter { attribute home as String; source reading as Float; }
            device K { action a; }
            context Usage as Float[] {
              when periodic reading from Meter <1 hr>
                grouped by home every <1 min>
                always publish;
            }
            controller Out { when provided Usage do a on K; }
            "#,
            10,
        );
        assert!(diags.find("W0404").is_some());
    }

    #[test]
    fn window_multiple_of_period_is_clean() {
        let (_, diags) = analyze(
            r#"
            device Meter { attribute home as String; source reading as Float; }
            device K { action a; }
            context Usage as Float[] {
              when periodic reading from Meter <1 min>
                grouped by home every <1 hr>
                always publish;
            }
            controller Out { when provided Usage do a on K; }
            "#,
            10,
        );
        assert!(diags.find("W0404").is_none());
    }

    #[test]
    fn periodic_rates_scale_with_fleet() {
        let (report, _) = analyze(
            r#"
            device Meter { source reading as Float; }
            device K { action a; }
            context Usage as Float { when periodic reading from Meter <1 min> always publish; }
            controller Out { when provided Usage do a on K; }
            "#,
            100,
        );
        let source_edge = report.edges.iter().find(|e| e.kind == "periodic").unwrap();
        // 100 devices x 60 readings/hour.
        assert_eq!(source_edge.msgs_per_hour, Some(6000.0));
        // Context publishes once per delivery, centrally (not scaled).
        let trigger_edge = report.edges.iter().find(|e| e.to == "(Out)").unwrap();
        assert_eq!(trigger_edge.msgs_per_hour, Some(60.0));
        // Actuation fans back out to the fleet.
        let do_edge = report.edges.iter().find(|e| e.kind == "do").unwrap();
        assert_eq!(do_edge.msgs_per_hour, Some(6000.0));
        assert_eq!(report.unknown_edges, 0);
    }

    #[test]
    fn grouping_window_retimes_publication() {
        let (report, _) = analyze(
            r#"
            device Meter { attribute home as String; source reading as Float; }
            device K { action a; }
            context Usage as Float[] {
              when periodic reading from Meter <1 min>
                grouped by home every <1 hr>
                always publish;
            }
            controller Out { when provided Usage do a on K; }
            "#,
            100,
        );
        let trigger_edge = report.edges.iter().find(|e| e.to == "(Out)").unwrap();
        assert_eq!(trigger_edge.msgs_per_hour, Some(1.0));
    }

    #[test]
    fn event_rate_unknown_without_hint_known_with() {
        let (report, _) = analyze(
            r#"
            device Sensor { source motion as Boolean; }
            @qos(periodMs = 1000)
            device Beacon { source ping as Integer; }
            device K { action a; }
            context A as Boolean { when provided motion from Sensor always publish; }
            context B as Integer { when provided ping from Beacon always publish; }
            controller Out { when provided A do a on K; when provided B do a on K; }
            "#,
            10,
        );
        let unhinted = report
            .edges
            .iter()
            .find(|e| e.from == "Sensor.motion")
            .unwrap();
        assert_eq!(unhinted.msgs_per_hour, None);
        let hinted = report
            .edges
            .iter()
            .find(|e| e.from == "Beacon.ping")
            .unwrap();
        assert_eq!(hinted.msgs_per_hour, Some(36000.0));
        assert!(report.unknown_edges >= 1);
        let rendered = report.to_string();
        assert!(rendered.contains("capacity report"));
        assert!(rendered.contains("Beacon.ping"));
    }
}

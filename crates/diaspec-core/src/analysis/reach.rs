//! Pass 4a: reachability — dead contexts, controllers, and devices
//! (W0405 / W0406).
//!
//! A context is *live* when some activation can fire on its own (a
//! device-source or periodic trigger, or a subscription to a live
//! context), or when a live component `get`s it. A controller is live
//! when some binding is triggered by a live context. Everything else is
//! unreachable at runtime no matter what the environment does (W0405).
//!
//! A device is *dead* when no interaction contract anywhere in the
//! design can touch its family: no subscription or `get` senses one of
//! its sources and no `do` clause actuates it (W0406). Only the
//! root-most dead device of a dead subtree is reported.

use crate::diag::{Diagnostic, Diagnostics};
use crate::model::{ActivationTrigger, CheckedSpec, InputRef};
use std::collections::BTreeSet;

use super::graph::families_overlap;

/// The outcome of the reachability pass.
#[derive(Debug, Clone, Default)]
pub struct Reachability {
    /// Contexts that can never activate nor be queried, in name order.
    pub unreachable_contexts: Vec<String>,
    /// Controllers that can never fire, in name order.
    pub unreachable_controllers: Vec<String>,
    /// Root-most devices whose family is never sensed nor actuated.
    pub dead_devices: Vec<String>,
}

/// Runs the reachability pass, reporting findings into `diags`.
pub(crate) fn detect(spec: &CheckedSpec, diags: &mut Diagnostics) -> Reachability {
    let mut out = Reachability::default();

    // ---- component liveness fixpoint -----------------------------------
    let mut live: BTreeSet<&str> = BTreeSet::new();
    loop {
        let mut changed = false;
        for ctx in spec.contexts() {
            if live.contains(ctx.name.as_str()) {
                continue;
            }
            let fires = ctx.activations.iter().any(|a| match &a.trigger {
                ActivationTrigger::DeviceSource { .. } | ActivationTrigger::Periodic { .. } => true,
                ActivationTrigger::Context(from) => live.contains(from.as_str()),
                ActivationTrigger::OnDemand => false,
            });
            // A `when required` context is reached when a *live* context
            // queries it (the query runs only when the querier activates).
            let queried = spec.contexts().any(|querier| {
                live.contains(querier.name.as_str())
                    && querier.activations.iter().any(|a| {
                        a.gets
                            .iter()
                            .any(|g| matches!(g, InputRef::Context(name) if *name == ctx.name))
                    })
            });
            if fires || queried {
                live.insert(&ctx.name);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for ctx in spec.contexts() {
        if !live.contains(ctx.name.as_str()) {
            diags.push(Diagnostic::warning(
                "W0405",
                format!(
                    "context `{}` is unreachable: it can never activate and no live component queries it",
                    ctx.name
                ),
                ctx.span,
            ));
            out.unreachable_contexts.push(ctx.name.clone());
        }
    }
    for ctrl in spec.controllers() {
        let fires = ctrl
            .bindings
            .iter()
            .any(|b| live.contains(b.context.as_str()));
        if !fires {
            diags.push(Diagnostic::warning(
                "W0405",
                format!(
                    "controller `{}` is unreachable: none of its trigger contexts can ever publish",
                    ctrl.name
                ),
                ctrl.span,
            ));
            out.unreachable_controllers.push(ctrl.name.clone());
        }
    }

    // ---- dead devices ---------------------------------------------------
    // Every device reference appearing in an interaction contract.
    let mut referenced: BTreeSet<&str> = BTreeSet::new();
    for ctx in spec.contexts() {
        for activation in &ctx.activations {
            match &activation.trigger {
                ActivationTrigger::DeviceSource { device, .. }
                | ActivationTrigger::Periodic { device, .. } => {
                    referenced.insert(device);
                }
                _ => {}
            }
            for get in &activation.gets {
                if let InputRef::DeviceSource { device, .. } = get {
                    referenced.insert(device);
                }
            }
        }
    }
    for ctrl in spec.controllers() {
        for binding in &ctrl.bindings {
            for (_, device) in &binding.actions {
                referenced.insert(device);
            }
        }
    }
    let is_dead = |name: &str| !referenced.iter().any(|r| families_overlap(spec, r, name));
    for device in spec.devices() {
        if !is_dead(&device.name) {
            continue;
        }
        // Report only the root-most device of a dead subtree.
        if device.parent.as_deref().is_some_and(&is_dead) {
            continue;
        }
        diags.push(Diagnostic::warning(
            "W0406",
            format!(
                "device `{}` is dead: no interaction contract senses one of its sources or actuates one of its actions",
                device.name
            ),
            device.span,
        ));
        out.dead_devices.push(device.name.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    fn analyze(src: &str) -> (Reachability, Diagnostics) {
        let spec = compile_str(src).unwrap();
        let mut diags = Diagnostics::new();
        let reach = detect(&spec, &mut diags);
        (reach, diags)
    }

    #[test]
    fn required_only_context_without_querier_is_dead() {
        let (reach, diags) = analyze(
            r#"
            device S { source v as Integer; }
            device K { action a; }
            context Forgotten as Integer { when required; }
            context Live as Integer { when provided v from S always publish; }
            controller Out { when provided Live do a on K; }
            "#,
        );
        assert_eq!(reach.unreachable_contexts, vec!["Forgotten"]);
        assert!(reach.unreachable_controllers.is_empty());
        assert!(diags.find("W0405").is_some());
    }

    #[test]
    fn required_context_queried_by_live_context_is_live() {
        let (reach, diags) = analyze(
            r#"
            device S { source v as Integer; }
            device K { action a; }
            context Cache as Integer { when required; }
            context Live as Integer {
              when provided v from S get Cache always publish;
            }
            controller Out { when provided Live do a on K; }
            "#,
        );
        assert!(reach.unreachable_contexts.is_empty());
        assert!(diags.find("W0405").is_none());
    }

    #[test]
    fn unreferenced_device_family_reported_at_root() {
        let (reach, diags) = analyze(
            r#"
            device S { source v as Integer; }
            device K { action a; }
            device Ghost { source whisper as String; }
            device LoudGhost extends Ghost { attribute vol as Integer; }
            context Live as Integer { when provided v from S always publish; }
            controller Out { when provided Live do a on K; }
            "#,
        );
        assert_eq!(reach.dead_devices, vec!["Ghost"]);
        let diag = diags.find("W0406").unwrap();
        assert!(diag.message.contains("`Ghost`"));
    }

    #[test]
    fn subtype_reference_keeps_ancestor_alive() {
        let (reach, _) = analyze(
            r#"
            device Base { source v as Integer; }
            device Leaf extends Base { attribute x as Integer; }
            device K { action a; }
            context Live as Integer { when provided v from Leaf always publish; }
            controller Out { when provided Live do a on K; }
            "#,
        );
        assert!(reach.dead_devices.is_empty());
    }
}

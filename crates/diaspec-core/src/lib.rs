//! # diaspec-core — the DiaSpec design language
//!
//! This crate implements the domain-specific *design* language of
//! **"Internet of Things: From Small- to Large-Scale Orchestration"**
//! (Consel & Kabáč, ICDCS 2017): a declarative notation for IoT
//! applications following the Sense-Compute-Control (SCC) paradigm.
//!
//! A specification declares:
//!
//! - **devices** — abstractions over heterogeneous entities, with
//!   `attribute`s (for discovery), `source`s (sensing facets) and
//!   `action`s (actuating facets), related by `extends` inheritance;
//! - **contexts** — computation components that turn raw data into
//!   actionable information, activated event-driven (`when provided`),
//!   periodically (`when periodic … <10 min>`) or on demand
//!   (`when required`), optionally partitioning mass sensor data
//!   (`grouped by … with map as … reduce as …`);
//! - **controllers** — effect components triggered by context
//!   publications, issuing device actions (`do … on …`);
//! - **structures** and **enumerations** — application data types.
//!
//! The pipeline is: [`parser::parse`] → [`check::check`] →
//! [`model::CheckedSpec`], with [`compile_str`] as the one-shot entry
//! point. A `CheckedSpec` feeds the `diaspec-codegen` framework generator
//! and the `diaspec-runtime` orchestrator.
//!
//! ## Example
//!
//! ```
//! use diaspec_core::compile_str;
//!
//! let model = compile_str(r#"
//!     device Cooker { source consumption as Float; action Off; }
//!     device Clock  { source tickSecond as Integer; }
//!     device TvPrompter {
//!       source answer as String indexed by questionId as String;
//!       action askQuestion(question as String);
//!     }
//!     context Alert as Integer {
//!       when provided tickSecond from Clock
//!         get consumption from Cooker
//!         maybe publish;
//!     }
//!     controller Notify { when provided Alert do askQuestion on TvPrompter; }
//!     context RemoteTurnOff as Boolean {
//!       when provided answer from TvPrompter
//!         get consumption from Cooker
//!         maybe publish;
//!     }
//!     controller TurnOff { when provided RemoteTurnOff do Off on Cooker; }
//! "#)?;
//!
//! assert_eq!(model.contexts().count(), 2);
//! let chains = diaspec_core::chains::functional_chains(&model);
//! assert_eq!(chains.len(), 2); // the two chains of the paper's Figure 3
//! # Ok::<(), diaspec_core::diag::CompileError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod ast;
pub mod chains;
pub mod check;
pub mod diag;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod pretty;
pub mod requirements;
pub mod span;
pub mod token;
pub mod types;

pub use diag::{CompileError, Diagnostics};
pub use model::CheckedSpec;

use span::SourceMap;

/// Parses and checks a specification in one step.
///
/// # Errors
///
/// Returns a [`CompileError`] wrapping every diagnostic if the source has
/// lexical, syntactic, or semantic errors. Warnings do not cause failure
/// (inspect them via [`compile_str_with_warnings`] if needed).
///
/// # Examples
///
/// ```
/// let model = diaspec_core::compile_str(
///     "device Clock { source tick as Integer; }",
/// )?;
/// assert!(model.device("Clock").is_some());
/// # Ok::<(), diaspec_core::diag::CompileError>(())
/// ```
pub fn compile_str(source: &str) -> Result<CheckedSpec, CompileError> {
    compile_str_with_warnings(source).map(|(model, _)| model)
}

/// Like [`compile_str`], but also returns the (non-error) diagnostics.
///
/// # Errors
///
/// Returns a [`CompileError`] if the specification contains errors.
pub fn compile_str_with_warnings(source: &str) -> Result<(CheckedSpec, Diagnostics), CompileError> {
    let map = SourceMap::new(source);
    let (spec, mut diags) = parser::parse(source);
    if diags.has_errors() {
        return Err(CompileError::new(diags, &map));
    }
    let (model, mut check_diags) = check::check(&spec);
    diags.append(&mut check_diags);
    match model {
        Some(model) if !diags.has_errors() => Ok((model, diags)),
        _ => Err(CompileError::new(diags, &map)),
    }
}

/// Compiles several named specification files together — the paper's
/// §III *taxonomy* usage, where factorized device declarations (a
/// domain's taxonomy file) are shared across application designs.
///
/// Files are concatenated in order and checked as one specification;
/// diagnostics are attributed back to their file of origin.
///
/// # Errors
///
/// Returns a [`CompileError`] (with per-file attribution in its rendered
/// report) if the combined specification contains errors.
///
/// # Examples
///
/// ```
/// let taxonomy = "device Clock { source tick as Integer; }
///                 device Siren { action wail; }";
/// let app = "context Overdue as Integer { when provided tick from Clock maybe publish; }
///            controller Alarm { when provided Overdue do wail on Siren; }";
/// let model = diaspec_core::compile_sources([
///     ("home-taxonomy.spec", taxonomy),
///     ("alarm-app.spec", app),
/// ])?;
/// assert_eq!(model.component_count(), 4);
/// # Ok::<(), diaspec_core::diag::CompileError>(())
/// ```
pub fn compile_sources<N, T>(
    files: impl IntoIterator<Item = (N, T)>,
) -> Result<CheckedSpec, CompileError>
where
    N: Into<String>,
    T: AsRef<str>,
{
    let map = span::MultiSourceMap::new(files);
    let (spec, mut diags) = parser::parse(map.text());
    if !diags.has_errors() {
        let (model, mut check_diags) = check::check(&spec);
        diags.append(&mut check_diags);
        if let Some(model) = model {
            if !diags.has_errors() {
                return Ok(model);
            }
        }
    }
    let rendered = diags
        .iter()
        .map(|d| {
            let (file, pos) = map.locate(d.span.start);
            let mut out = format!("{d} at {file}:{pos}\n");
            out.push_str(&map.snippet(d.span));
            out
        })
        .collect::<Vec<_>>()
        .join("\n\n");
    Err(CompileError::from_rendered(diags, rendered))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_str_accepts_valid_spec() {
        let model = compile_str("device D { source s as Integer; }").unwrap();
        assert_eq!(model.devices().count(), 1);
    }

    #[test]
    fn compile_str_reports_parse_errors() {
        let err = compile_str("device {").unwrap_err();
        assert!(err.diagnostics().has_errors());
        assert!(err.to_string().contains("error"));
    }

    #[test]
    fn compile_str_reports_check_errors() {
        let err = compile_str("device D extends Ghost { }").unwrap_err();
        assert!(err.diagnostics().find("E0202").is_some());
    }

    #[test]
    fn compile_sources_attributes_errors_to_files() {
        let err = compile_sources([
            ("taxonomy.spec", "device D { source s as Integer; }"),
            (
                "app.spec",
                "context C as Integer { when provided ghost from D always publish; }",
            ),
        ])
        .unwrap_err();
        let report = err.to_string();
        assert!(report.contains("app.spec"), "{report}");
        assert!(err.diagnostics().find("E0221").is_some());
    }

    #[test]
    fn compile_sources_spans_cross_file_references() {
        // The app subscribes to a device declared in the taxonomy file.
        let model = compile_sources([
            (
                "taxonomy.spec",
                "device Sensor { source v as Integer; }\ndevice Sink { action a; }",
            ),
            (
                "app.spec",
                "context C as Integer { when provided v from Sensor always publish; }\n\
                 controller Out { when provided C do a on Sink; }",
            ),
        ])
        .unwrap();
        assert!(model.device("Sensor").is_some());
        assert!(model.controller("Out").is_some());
    }

    #[test]
    fn compile_sources_catches_cross_file_duplicates() {
        let err = compile_sources([
            ("a.spec", "device D { source s as Integer; }"),
            ("b.spec", "device D { source t as Integer; }"),
        ])
        .unwrap_err();
        assert!(err.diagnostics().find("E0201").is_some());
        assert!(err.to_string().contains("b.spec"), "{err}");
    }

    #[test]
    fn warnings_are_observable_but_non_blocking() {
        let (model, diags) = compile_str_with_warnings(
            "device D { source s as Integer; } \
             context C as Integer { when provided s from D always publish; }",
        )
        .unwrap();
        assert!(model.context("C").is_some());
        assert!(diags.find("W0303").is_some(), "unconsumed context warning");
    }
}

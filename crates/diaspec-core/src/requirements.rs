//! Requirements extraction and infrastructure matching — the paper's §VI
//! research question, implemented:
//!
//! > *"Can design declarations be used to match the requirements of an
//! > application with the resources of an infrastructure? The application
//! > requirements could be extracted (or estimated) from the design
//! > declarations; they could include devices, network bandwidth, and
//! > processing capability."*
//!
//! [`estimate`] derives an [`AppRequirements`] from a checked design:
//! which device families the application binds to (and how — sensing,
//! polling, actuation), the message rate its periodic contracts imply per
//! bound entity, and the processing its `grouped by`/MapReduce clauses
//! demand. [`match_infrastructure`] then checks those requirements
//! against a concrete [`Infrastructure`] description and reports, per
//! finding, what is satisfied, tight, or missing.

use crate::model::{ActivationTrigger, CheckedSpec, InputRef};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How an application uses a device family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceUsage {
    /// Some context subscribes to a source event-driven.
    pub event_sources: bool,
    /// Some context polls a source periodically.
    pub polled_sources: bool,
    /// Some context reads a source query-driven (`get`).
    pub queried_sources: bool,
    /// Some controller performs actions on it.
    pub actuated: bool,
}

impl DeviceUsage {
    fn none() -> Self {
        DeviceUsage {
            event_sources: false,
            polled_sources: false,
            queried_sources: false,
            actuated: false,
        }
    }
}

/// One device family the application must be able to bind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRequirement {
    /// The declared device type (entities of any subtype qualify).
    pub device_type: String,
    /// How the application uses the family.
    pub usage: DeviceUsage,
    /// Messages per hour each bound entity of this family contributes
    /// through *periodic* contracts (the statically known part of the
    /// bandwidth demand).
    pub periodic_msgs_per_entity_hour: f64,
}

/// One data-processing obligation derived from a context declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessingRequirement {
    /// The declaring context.
    pub context: String,
    /// The polled device family (readings scale with its entity count).
    pub device_type: String,
    /// Delivery period in milliseconds.
    pub period_ms: u64,
    /// Aggregation window in milliseconds, when declared.
    pub window_ms: Option<u64>,
    /// Whether the design declares MapReduce phases (i.e. the developer
    /// expects data volumes that need parallel processing).
    pub map_reduce: bool,
}

/// Requirements extracted from a design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRequirements {
    /// Required device families, keyed by declared type.
    pub devices: BTreeMap<String, DeviceRequirement>,
    /// Processing obligations of periodic contexts.
    pub processing: Vec<ProcessingRequirement>,
    /// Whether any source is consumed event-driven (bandwidth for these
    /// depends on environment activity and cannot be bounded statically).
    pub has_event_driven_load: bool,
}

impl AppRequirements {
    /// Statically estimable network demand, in messages per hour, for a
    /// given assignment of entity counts per device family.
    ///
    /// Families absent from `entity_counts` contribute nothing; event-
    /// driven load is excluded (see
    /// [`has_event_driven_load`](Self::has_event_driven_load)).
    #[must_use]
    pub fn periodic_msgs_per_hour(&self, entity_counts: &BTreeMap<String, u32>) -> f64 {
        self.devices
            .values()
            .map(|req| {
                let entities = entity_counts.get(&req.device_type).copied().unwrap_or(0);
                req.periodic_msgs_per_entity_hour * f64::from(entities)
            })
            .sum()
    }
}

/// A concrete infrastructure offer: what is deployed and what the
/// network/compute substrate provides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Infrastructure {
    /// Bound entities per *exact* device type.
    pub entities: BTreeMap<String, u32>,
    /// Network capacity in messages per hour, if limited (e.g. LoRa duty
    /// cycles); `None` = unconstrained.
    pub msgs_per_hour_capacity: Option<f64>,
    /// Worker threads available for declared MapReduce processing.
    pub parallel_workers: u32,
}

impl Infrastructure {
    /// Entities available for `device_type`, counting subtypes per the
    /// design's `extends` hierarchy.
    #[must_use]
    pub fn family_count(&self, spec: &CheckedSpec, device_type: &str) -> u32 {
        self.entities
            .iter()
            .filter(|(ty, _)| spec.device_is_subtype(ty, device_type))
            .map(|(_, n)| *n)
            .sum()
    }
}

/// Severity of a matching finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MatchSeverity {
    /// Requirement satisfied with headroom.
    Ok,
    /// Satisfied, but worth attention (e.g. > 80 % of network capacity,
    /// or MapReduce declared with a single worker).
    Tight,
    /// Not satisfiable on this infrastructure.
    Missing,
}

impl fmt::Display for MatchSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MatchSeverity::Ok => "ok",
            MatchSeverity::Tight => "tight",
            MatchSeverity::Missing => "missing",
        })
    }
}

/// One finding of the requirement/infrastructure match.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchFinding {
    /// How serious it is.
    pub severity: MatchSeverity,
    /// What the finding concerns (a device type, "network", "processing").
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

/// The result of matching a design against an infrastructure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchReport {
    /// Every finding, most severe first.
    pub findings: Vec<MatchFinding>,
    /// Estimated statically-known network demand (messages/hour).
    pub estimated_msgs_per_hour: f64,
}

impl MatchReport {
    /// Whether the application can run: no [`MatchSeverity::Missing`]
    /// finding.
    #[must_use]
    pub fn deployable(&self) -> bool {
        self.findings
            .iter()
            .all(|f| f.severity != MatchSeverity::Missing)
    }
}

impl fmt::Display for MatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} finding(s), ~{:.0} periodic msgs/hour)",
            if self.deployable() {
                "DEPLOYABLE"
            } else {
                "NOT DEPLOYABLE"
            },
            self.findings.len(),
            self.estimated_msgs_per_hour
        )?;
        for finding in &self.findings {
            writeln!(
                f,
                "  [{}] {}: {}",
                finding.severity, finding.subject, finding.message
            )?;
        }
        Ok(())
    }
}

/// Extracts the application requirements from a checked design (§VI).
#[must_use]
pub fn estimate(spec: &CheckedSpec) -> AppRequirements {
    let mut devices: BTreeMap<String, DeviceRequirement> = BTreeMap::new();
    let mut processing = Vec::new();
    let mut has_event_driven_load = false;

    fn require<'m>(
        devices: &'m mut BTreeMap<String, DeviceRequirement>,
        device_type: &str,
    ) -> &'m mut DeviceRequirement {
        devices
            .entry(device_type.to_owned())
            .or_insert_with(|| DeviceRequirement {
                device_type: device_type.to_owned(),
                usage: DeviceUsage::none(),
                periodic_msgs_per_entity_hour: 0.0,
            })
    }

    for ctx in spec.contexts() {
        for activation in &ctx.activations {
            match &activation.trigger {
                ActivationTrigger::DeviceSource { device, .. } => {
                    require(&mut devices, device).usage.event_sources = true;
                    has_event_driven_load = true;
                }
                ActivationTrigger::Periodic {
                    device, period_ms, ..
                } => {
                    let req = require(&mut devices, device);
                    req.usage.polled_sources = true;
                    if *period_ms > 0 {
                        req.periodic_msgs_per_entity_hour += 3_600_000.0 / *period_ms as f64;
                    }
                    processing.push(ProcessingRequirement {
                        context: ctx.name.clone(),
                        device_type: device.clone(),
                        period_ms: *period_ms,
                        window_ms: activation.grouping.as_ref().and_then(|g| g.window_ms),
                        map_reduce: activation
                            .grouping
                            .as_ref()
                            .is_some_and(|g| g.map_reduce.is_some()),
                    });
                }
                ActivationTrigger::Context(_) | ActivationTrigger::OnDemand => {}
            }
            for get in &activation.gets {
                if let InputRef::DeviceSource { device, .. } = get {
                    require(&mut devices, device).usage.queried_sources = true;
                }
            }
        }
    }
    for ctrl in spec.controllers() {
        for binding in &ctrl.bindings {
            for (_, device) in &binding.actions {
                require(&mut devices, device).usage.actuated = true;
            }
        }
    }

    AppRequirements {
        devices,
        processing,
        has_event_driven_load,
    }
}

/// Matches extracted requirements against an infrastructure description,
/// producing per-subject findings (§VI).
#[must_use]
pub fn match_infrastructure(
    spec: &CheckedSpec,
    requirements: &AppRequirements,
    infrastructure: &Infrastructure,
) -> MatchReport {
    let mut findings = Vec::new();

    // Devices: every required family needs at least one bound entity.
    let mut entity_counts: BTreeMap<String, u32> = BTreeMap::new();
    for req in requirements.devices.values() {
        let available = infrastructure.family_count(spec, &req.device_type);
        entity_counts.insert(req.device_type.clone(), available);
        if available == 0 {
            findings.push(MatchFinding {
                severity: MatchSeverity::Missing,
                subject: req.device_type.clone(),
                message: format!(
                    "no entity of family `{}` is deployed, but the design {}",
                    req.device_type,
                    describe_usage(req.usage)
                ),
            });
        } else {
            findings.push(MatchFinding {
                severity: MatchSeverity::Ok,
                subject: req.device_type.clone(),
                message: format!(
                    "{available} entit{} available ({})",
                    if available == 1 { "y" } else { "ies" },
                    describe_usage(req.usage)
                ),
            });
        }
    }

    // Network: statically known periodic demand vs. capacity.
    let demand = requirements.periodic_msgs_per_hour(&entity_counts);
    match infrastructure.msgs_per_hour_capacity {
        Some(capacity) if demand > capacity => findings.push(MatchFinding {
            severity: MatchSeverity::Missing,
            subject: "network".to_owned(),
            message: format!(
                "periodic contracts need ~{demand:.0} msgs/hour but the network \
                 provides {capacity:.0}"
            ),
        }),
        Some(capacity) if demand > 0.8 * capacity => findings.push(MatchFinding {
            severity: MatchSeverity::Tight,
            subject: "network".to_owned(),
            message: format!(
                "periodic demand (~{demand:.0} msgs/hour) uses more than 80% of the \
                 network capacity ({capacity:.0})"
            ),
        }),
        Some(capacity) => findings.push(MatchFinding {
            severity: MatchSeverity::Ok,
            subject: "network".to_owned(),
            message: format!(
                "periodic demand ~{demand:.0} msgs/hour within capacity {capacity:.0}"
            ),
        }),
        None => {}
    }
    if requirements.has_event_driven_load && infrastructure.msgs_per_hour_capacity.is_some() {
        findings.push(MatchFinding {
            severity: MatchSeverity::Tight,
            subject: "network".to_owned(),
            message: "event-driven subscriptions add activity-dependent traffic on top \
                      of the periodic estimate"
                .to_owned(),
        });
    }

    // Processing: declared MapReduce wants workers.
    for proc in &requirements.processing {
        if proc.map_reduce && infrastructure.parallel_workers <= 1 {
            findings.push(MatchFinding {
                severity: MatchSeverity::Tight,
                subject: "processing".to_owned(),
                message: format!(
                    "context `{}` declares MapReduce phases, but only {} worker(s) are \
                     available; processing falls back to serial",
                    proc.context, infrastructure.parallel_workers
                ),
            });
        }
    }

    findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.subject.cmp(&b.subject)));
    MatchReport {
        findings,
        estimated_msgs_per_hour: demand,
    }
}

fn describe_usage(usage: DeviceUsage) -> String {
    let mut parts = Vec::new();
    if usage.event_sources {
        parts.push("subscribes to its events");
    }
    if usage.polled_sources {
        parts.push("polls it periodically");
    }
    if usage.queried_sources {
        parts.push("queries it on demand");
    }
    if usage.actuated {
        parts.push("actuates it");
    }
    if parts.is_empty() {
        "declares it".to_owned()
    } else {
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    const PARKING: &str = r#"
        device PresenceSensor {
          attribute parkingLot as String;
          source presence as Boolean;
        }
        device DisplayPanel { action update(status as String); }
        device ParkingEntrancePanel extends DisplayPanel {
          attribute location as String;
        }
        context ParkingAvailability as Integer[] {
          when periodic presence from PresenceSensor <10 min>
            grouped by parkingLot
            with map as Boolean reduce as Integer
            always publish;
        }
        context Spike as Boolean {
          when provided presence from PresenceSensor maybe publish;
        }
        controller PanelCtl {
          when provided ParkingAvailability do update on ParkingEntrancePanel;
        }
        controller SpikeCtl {
          when provided Spike do update on ParkingEntrancePanel;
        }
    "#;

    fn parking_requirements() -> (CheckedSpec, AppRequirements) {
        let spec = compile_str(PARKING).unwrap();
        let req = estimate(&spec);
        (spec, req)
    }

    #[test]
    fn extraction_finds_families_usage_and_rates() {
        let (_, req) = parking_requirements();
        assert_eq!(req.devices.len(), 2);
        let sensor = &req.devices["PresenceSensor"];
        assert!(sensor.usage.polled_sources);
        assert!(sensor.usage.event_sources);
        assert!(!sensor.usage.actuated);
        // One 10-minute periodic contract = 6 msgs/hour per entity.
        assert!((sensor.periodic_msgs_per_entity_hour - 6.0).abs() < 1e-9);
        let panel = &req.devices["ParkingEntrancePanel"];
        assert!(panel.usage.actuated);
        assert!(!panel.usage.polled_sources);
        assert_eq!(panel.periodic_msgs_per_entity_hour, 0.0);
        assert!(req.has_event_driven_load);
        assert_eq!(req.processing.len(), 1);
        assert!(req.processing[0].map_reduce);
    }

    #[test]
    fn complete_infrastructure_is_deployable() {
        let (spec, req) = parking_requirements();
        let infra = Infrastructure {
            entities: [
                ("PresenceSensor".to_owned(), 800),
                ("ParkingEntrancePanel".to_owned(), 8),
            ]
            .into_iter()
            .collect(),
            msgs_per_hour_capacity: None,
            parallel_workers: 8,
        };
        let report = match_infrastructure(&spec, &req, &infra);
        assert!(report.deployable(), "{report}");
        // 800 sensors x 6 msgs/hour.
        assert!((report.estimated_msgs_per_hour - 4800.0).abs() < 1e-9);
    }

    #[test]
    fn missing_device_family_blocks_deployment() {
        let (spec, req) = parking_requirements();
        let infra = Infrastructure {
            entities: [("PresenceSensor".to_owned(), 100)].into_iter().collect(),
            msgs_per_hour_capacity: None,
            parallel_workers: 4,
        };
        let report = match_infrastructure(&spec, &req, &infra);
        assert!(!report.deployable(), "{report}");
        let missing: Vec<&MatchFinding> = report
            .findings
            .iter()
            .filter(|f| f.severity == MatchSeverity::Missing)
            .collect();
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].subject, "ParkingEntrancePanel");
        // Most severe first.
        assert_eq!(report.findings[0].severity, MatchSeverity::Missing);
    }

    #[test]
    fn subtypes_satisfy_family_requirements() {
        let (spec, req) = parking_requirements();
        // A hypothetical subtype of ParkingEntrancePanel would count; here
        // we verify the family arithmetic through the base/derived pair.
        let infra = Infrastructure {
            entities: [
                ("PresenceSensor".to_owned(), 10),
                // Counting against the DisplayPanel base: the requirement is
                // on ParkingEntrancePanel, and DisplayPanel is its *parent*,
                // so plain DisplayPanels must NOT satisfy it.
                ("DisplayPanel".to_owned(), 5),
            ]
            .into_iter()
            .collect(),
            msgs_per_hour_capacity: None,
            parallel_workers: 1,
        };
        let report = match_infrastructure(&spec, &req, &infra);
        assert!(
            !report.deployable(),
            "a parent-type entity must not satisfy a subtype requirement: {report}"
        );
    }

    #[test]
    fn network_capacity_thresholds() {
        let (spec, req) = parking_requirements();
        let infra = |capacity: f64| Infrastructure {
            entities: [
                ("PresenceSensor".to_owned(), 1000), // 6000 msgs/hour
                ("ParkingEntrancePanel".to_owned(), 8),
            ]
            .into_iter()
            .collect(),
            msgs_per_hour_capacity: Some(capacity),
            parallel_workers: 4,
        };
        // Insufficient capacity.
        let report = match_infrastructure(&spec, &req, &infra(5_000.0));
        assert!(!report.deployable(), "{report}");
        // Tight (between 80% and 100%).
        let report = match_infrastructure(&spec, &req, &infra(7_000.0));
        assert!(report.deployable());
        assert!(report
            .findings
            .iter()
            .any(|f| f.subject == "network" && f.severity == MatchSeverity::Tight));
        // Comfortable.
        let report = match_infrastructure(&spec, &req, &infra(100_000.0));
        assert!(report.deployable());
        // The event-driven caveat still flags as Tight.
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("event-driven")));
    }

    #[test]
    fn mapreduce_with_single_worker_is_flagged() {
        let (spec, req) = parking_requirements();
        let infra = Infrastructure {
            entities: [
                ("PresenceSensor".to_owned(), 10),
                ("ParkingEntrancePanel".to_owned(), 2),
            ]
            .into_iter()
            .collect(),
            msgs_per_hour_capacity: None,
            parallel_workers: 1,
        };
        let report = match_infrastructure(&spec, &req, &infra);
        assert!(report.deployable(), "tight, not missing: {report}");
        assert!(report
            .findings
            .iter()
            .any(|f| f.subject == "processing" && f.severity == MatchSeverity::Tight));
    }

    #[test]
    fn report_displays_verdict_and_findings() {
        let (spec, req) = parking_requirements();
        let report = match_infrastructure(
            &spec,
            &req,
            &Infrastructure {
                entities: BTreeMap::new(),
                msgs_per_hour_capacity: None,
                parallel_workers: 1,
            },
        );
        let text = report.to_string();
        assert!(text.contains("NOT DEPLOYABLE"), "{text}");
        assert!(text.contains("[missing] ParkingEntrancePanel"), "{text}");
    }

    #[test]
    fn requirements_serialize() {
        let (_, req) = parking_requirements();
        let json = serde_json::to_string(&req).unwrap();
        let back: AppRequirements = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }
}

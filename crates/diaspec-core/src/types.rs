//! Resolved types of the DiaSpec design language.
//!
//! After checking, every syntactic [`TypeRef`](crate::ast::TypeRef) is
//! resolved into a [`Type`], which distinguishes built-in scalar types from
//! user-declared structures and enumerations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully resolved DiaSpec type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// Built-in `Integer` (64-bit signed at runtime).
    Integer,
    /// Built-in `Float` (64-bit IEEE-754 at runtime).
    Float,
    /// Built-in `Boolean`.
    Boolean,
    /// Built-in `String`.
    String,
    /// A user-declared enumeration, by name.
    Enum(String),
    /// A user-declared structure, by name.
    Struct(String),
    /// An array of the element type.
    Array(Box<Type>),
}

impl Type {
    /// Resolves the built-in type named `name`, if it is one.
    #[must_use]
    pub fn builtin(name: &str) -> Option<Type> {
        Some(match name {
            "Integer" => Type::Integer,
            "Float" => Type::Float,
            "Boolean" => Type::Boolean,
            "String" => Type::String,
            _ => return None,
        })
    }

    /// Wraps this type in an array.
    #[must_use]
    pub fn array(self) -> Type {
        Type::Array(Box::new(self))
    }

    /// The element type if this is an array.
    #[must_use]
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Array(elem) => Some(elem),
            _ => None,
        }
    }

    /// Whether values of this type may key a `grouped by` partition.
    ///
    /// Grouping requires stable equality/hashing, so every type except
    /// `Float` and arrays qualifies.
    #[must_use]
    pub fn is_groupable(&self) -> bool {
        !matches!(self, Type::Float | Type::Array(_))
    }

    /// Whether this is one of the four built-in scalar types.
    #[must_use]
    pub fn is_builtin(&self) -> bool {
        matches!(
            self,
            Type::Integer | Type::Float | Type::Boolean | Type::String
        )
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Integer => f.write_str("Integer"),
            Type::Float => f.write_str("Float"),
            Type::Boolean => f.write_str("Boolean"),
            Type::String => f.write_str("String"),
            Type::Enum(name) | Type::Struct(name) => f.write_str(name),
            Type::Array(elem) => write!(f, "{elem}[]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup() {
        assert_eq!(Type::builtin("Integer"), Some(Type::Integer));
        assert_eq!(Type::builtin("Float"), Some(Type::Float));
        assert_eq!(Type::builtin("Boolean"), Some(Type::Boolean));
        assert_eq!(Type::builtin("String"), Some(Type::String));
        assert_eq!(Type::builtin("Availability"), None);
        assert_eq!(Type::builtin("integer"), None, "case sensitive");
    }

    #[test]
    fn display_matches_dsl_syntax() {
        assert_eq!(Type::Integer.to_string(), "Integer");
        assert_eq!(
            Type::Struct("Availability".into()).array().to_string(),
            "Availability[]"
        );
        assert_eq!(Type::Integer.array().array().to_string(), "Integer[][]");
    }

    #[test]
    fn groupability() {
        assert!(Type::Integer.is_groupable());
        assert!(Type::Boolean.is_groupable());
        assert!(Type::String.is_groupable());
        assert!(Type::Enum("E".into()).is_groupable());
        assert!(Type::Struct("S".into()).is_groupable());
        assert!(!Type::Float.is_groupable());
        assert!(!Type::Integer.array().is_groupable());
    }

    #[test]
    fn element_access() {
        let t = Type::Float.array();
        assert_eq!(t.element(), Some(&Type::Float));
        assert_eq!(Type::Float.element(), None);
    }

    #[test]
    fn serde_round_trip() {
        let t = Type::Struct("Availability".into()).array();
        let json = serde_json::to_string(&t).unwrap();
        let back: Type = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}

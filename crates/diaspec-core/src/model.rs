//! The resolved semantic model of a checked specification.
//!
//! A [`CheckedSpec`] is produced by [`check`](crate::check::check) from a
//! parsed [`Spec`](crate::ast::Spec). It is the single source of truth for
//! code generation ([`diaspec-codegen`]) and orchestration
//! ([`diaspec-runtime`]): names are resolved, device inheritance is
//! flattened, every type reference is a [`Type`], and the
//! Sense-Compute-Control layering rules have been verified.
//!
//! [`diaspec-codegen`]: https://docs.rs/diaspec-codegen
//! [`diaspec-runtime`]: https://docs.rs/diaspec-runtime

use crate::span::Span;
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A resolved non-functional annotation (`@error`, `@qos`, ...).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolvedAnnotation {
    /// Annotation name.
    pub name: String,
    /// Key/value arguments.
    pub args: BTreeMap<String, AnnotationArg>,
}

/// The value of a resolved annotation argument.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnnotationArg {
    /// String argument.
    Str(String),
    /// Integer argument.
    Int(u64),
    /// Symbolic (bare identifier) argument.
    Symbol(String),
}

impl AnnotationArg {
    /// The string payload, if this is a string argument.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AnnotationArg::Str(s) | AnnotationArg::Symbol(s) => Some(s),
            AnnotationArg::Int(_) => None,
        }
    }

    /// The integer payload, if this is an integer argument.
    #[must_use]
    pub fn as_int(&self) -> Option<u64> {
        match self {
            AnnotationArg::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl ResolvedAnnotation {
    /// Looks up an argument by key.
    #[must_use]
    pub fn arg(&self, key: &str) -> Option<&AnnotationArg> {
        self.args.get(key)
    }
}

/// A device attribute, possibly inherited.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: Type,
    /// Name of the device that declared this attribute (may be an ancestor).
    pub declared_in: String,
}

/// A device source, possibly inherited.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Source {
    /// Source name.
    pub name: String,
    /// Type of produced values.
    pub ty: Type,
    /// Optional `indexed by` clause: (index name, index type).
    pub index: Option<(String, Type)>,
    /// Name of the device that declared this source.
    pub declared_in: String,
}

/// A device action, possibly inherited.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// Action name.
    pub name: String,
    /// Ordered parameters: (name, type).
    pub params: Vec<(String, Type)>,
    /// Name of the device that declared this action.
    pub declared_in: String,
}

/// A resolved device: its own members plus everything inherited.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Device name.
    pub name: String,
    /// Direct parent, if any.
    pub parent: Option<String>,
    /// All attributes, ancestors' first.
    pub attributes: Vec<Attribute>,
    /// All sources, ancestors' first.
    pub sources: Vec<Source>,
    /// All actions, ancestors' first.
    pub actions: Vec<Action>,
    /// Non-functional annotations (own only).
    pub annotations: Vec<ResolvedAnnotation>,
    /// Span of the declaring name in the source (DUMMY when synthesized).
    #[serde(default)]
    pub span: Span,
}

impl Device {
    /// Looks up an attribute (own or inherited) by name.
    #[must_use]
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Looks up a source (own or inherited) by name.
    #[must_use]
    pub fn source(&self, name: &str) -> Option<&Source> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// Looks up an action (own or inherited) by name.
    #[must_use]
    pub fn action(&self, name: &str) -> Option<&Action> {
        self.actions.iter().find(|a| a.name == name)
    }
}

/// What activates a context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivationTrigger {
    /// Event-driven: fires on each publication of a device source.
    DeviceSource {
        /// Device declaring the source.
        device: String,
        /// Source name.
        source: String,
    },
    /// Event-driven: fires on each publication of another context.
    Context(String),
    /// Periodic batched delivery of a device source.
    Periodic {
        /// Device declaring the source.
        device: String,
        /// Source name.
        source: String,
        /// Delivery period in milliseconds.
        period_ms: u64,
    },
    /// `when required`: the context computes on demand when queried.
    OnDemand,
}

impl fmt::Display for ActivationTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivationTrigger::DeviceSource { device, source } => {
                write!(f, "when provided {source} from {device}")
            }
            ActivationTrigger::Context(name) => write!(f, "when provided {name}"),
            ActivationTrigger::Periodic {
                device,
                source,
                period_ms,
            } => write!(f, "when periodic {source} from {device} <{period_ms} ms>"),
            ActivationTrigger::OnDemand => f.write_str("when required"),
        }
    }
}

/// A query-driven (`get`) input of an activation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputRef {
    /// Query a device source.
    DeviceSource {
        /// Device declaring the source.
        device: String,
        /// Source name.
        source: String,
    },
    /// Query another context (which must declare `when required`).
    Context(String),
}

impl fmt::Display for InputRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputRef::DeviceSource { device, source } => write!(f, "{source} from {device}"),
            InputRef::Context(name) => f.write_str(name),
        }
    }
}

/// Resolved `grouped by` information of an activation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupingModel {
    /// The device attribute partitioning the readings.
    pub attribute: String,
    /// Type of the grouping attribute.
    pub attribute_ty: Type,
    /// Optional aggregation window in milliseconds (`every <24 hr>`).
    pub window_ms: Option<u64>,
    /// Span of the `every <...>` window literal, when declared.
    #[serde(default)]
    pub window_span: Option<Span>,
    /// Optional MapReduce typing: (map output type, reduce output type).
    pub map_reduce: Option<(Type, Type)>,
}

/// Publication mode of an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PublishMode {
    /// Every activation publishes a value.
    Always,
    /// An activation may decline to publish.
    Maybe,
    /// Never publishes; value only reachable via `get`.
    No,
}

impl fmt::Display for PublishMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishMode::Always => f.write_str("always publish"),
            PublishMode::Maybe => f.write_str("maybe publish"),
            PublishMode::No => f.write_str("no publish"),
        }
    }
}

/// One resolved activation contract of a context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activation {
    /// What triggers the activation.
    pub trigger: ActivationTrigger,
    /// Query-driven inputs read during the activation.
    pub gets: Vec<InputRef>,
    /// Optional grouping (only on device-source triggers).
    pub grouping: Option<GroupingModel>,
    /// Publication mode.
    pub publish: PublishMode,
    /// Span of the whole `when ...;` interaction in the source.
    #[serde(default)]
    pub span: Span,
}

/// A resolved context component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Context {
    /// Context name.
    pub name: String,
    /// Declared output type.
    pub output: Type,
    /// Activation contracts in source order.
    pub activations: Vec<Activation>,
    /// Non-functional annotations.
    pub annotations: Vec<ResolvedAnnotation>,
    /// Span of the declaring name in the source (DUMMY when synthesized).
    #[serde(default)]
    pub span: Span,
}

impl Context {
    /// Whether the context declares `when required` (pull access).
    #[must_use]
    pub fn is_required(&self) -> bool {
        self.activations
            .iter()
            .any(|a| a.trigger == ActivationTrigger::OnDemand)
    }

    /// Whether any activation publishes (`always` or `maybe`).
    #[must_use]
    pub fn publishes(&self) -> bool {
        self.activations
            .iter()
            .any(|a| matches!(a.publish, PublishMode::Always | PublishMode::Maybe))
    }

    /// Whether any activation declares a MapReduce processing phase.
    #[must_use]
    pub fn uses_map_reduce(&self) -> bool {
        self.activations
            .iter()
            .any(|a| a.grouping.as_ref().is_some_and(|g| g.map_reduce.is_some()))
    }
}

/// One `when provided Ctx do ...` binding of a controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerBinding {
    /// The triggering context.
    pub context: String,
    /// Actions performed when triggered: (action name, device name).
    pub actions: Vec<(String, String)>,
    /// Span of the triggering-context name in the source.
    #[serde(default)]
    pub context_span: Span,
    /// Spans of each `do ... on ...` clause, parallel to [`actions`].
    ///
    /// May be empty for synthesized bindings; use [`action_span`] for a
    /// lookup that falls back to [`context_span`].
    ///
    /// [`actions`]: ControllerBinding::actions
    /// [`action_span`]: ControllerBinding::action_span
    /// [`context_span`]: ControllerBinding::context_span
    #[serde(default)]
    pub action_spans: Vec<Span>,
}

impl ControllerBinding {
    /// The span of the `index`-th `do` clause, falling back to the
    /// binding's context span for synthesized bindings.
    #[must_use]
    pub fn action_span(&self, index: usize) -> Span {
        self.action_spans
            .get(index)
            .copied()
            .unwrap_or(self.context_span)
    }
}

/// A resolved controller component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Controller {
    /// Controller name.
    pub name: String,
    /// Bindings in source order.
    pub bindings: Vec<ControllerBinding>,
    /// Non-functional annotations.
    pub annotations: Vec<ResolvedAnnotation>,
    /// Span of the declaring name in the source (DUMMY when synthesized).
    #[serde(default)]
    pub span: Span,
}

/// A resolved structure (record) type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Structure {
    /// Structure name.
    pub name: String,
    /// Ordered fields: (name, type).
    pub fields: Vec<(String, Type)>,
}

impl Structure {
    /// Looks up a field type by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Type> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }
}

/// A resolved enumeration type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Enumeration {
    /// Enumeration name.
    pub name: String,
    /// Variants in source order.
    pub variants: Vec<String>,
}

impl Enumeration {
    /// Whether `variant` is declared by this enumeration.
    #[must_use]
    pub fn has_variant(&self, variant: &str) -> bool {
        self.variants.iter().any(|v| v == variant)
    }
}

/// Who consumes a publication: a context or a controller.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Subscriber {
    /// A context component.
    Context(String),
    /// A controller component.
    Controller(String),
}

impl Subscriber {
    /// The component name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Subscriber::Context(n) | Subscriber::Controller(n) => n,
        }
    }
}

impl fmt::Display for Subscriber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subscriber::Context(n) => write!(f, "context {n}"),
            Subscriber::Controller(n) => write!(f, "controller {n}"),
        }
    }
}

/// A fully checked and resolved specification.
///
/// Construction goes through [`check`](crate::check::check) (or the
/// [`compile_str`](crate::compile_str) convenience), which guarantees all
/// invariants documented on the accessors. Component maps are ordered
/// (`BTreeMap`) so iteration — and therefore code generation — is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckedSpec {
    pub(crate) devices: BTreeMap<String, Device>,
    pub(crate) contexts: BTreeMap<String, Context>,
    pub(crate) controllers: BTreeMap<String, Controller>,
    pub(crate) structures: BTreeMap<String, Structure>,
    pub(crate) enums: BTreeMap<String, Enumeration>,
}

impl CheckedSpec {
    /// Looks up a device by name.
    #[must_use]
    pub fn device(&self, name: &str) -> Option<&Device> {
        self.devices.get(name)
    }

    /// Looks up a context by name.
    #[must_use]
    pub fn context(&self, name: &str) -> Option<&Context> {
        self.contexts.get(name)
    }

    /// Looks up a controller by name.
    #[must_use]
    pub fn controller(&self, name: &str) -> Option<&Controller> {
        self.controllers.get(name)
    }

    /// Looks up a structure by name.
    #[must_use]
    pub fn structure(&self, name: &str) -> Option<&Structure> {
        self.structures.get(name)
    }

    /// Looks up an enumeration by name.
    #[must_use]
    pub fn enumeration(&self, name: &str) -> Option<&Enumeration> {
        self.enums.get(name)
    }

    /// Iterates over devices in name order.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }

    /// Iterates over contexts in name order.
    pub fn contexts(&self) -> impl Iterator<Item = &Context> {
        self.contexts.values()
    }

    /// Iterates over controllers in name order.
    pub fn controllers(&self) -> impl Iterator<Item = &Controller> {
        self.controllers.values()
    }

    /// Iterates over structures in name order.
    pub fn structures(&self) -> impl Iterator<Item = &Structure> {
        self.structures.values()
    }

    /// Iterates over enumerations in name order.
    pub fn enumerations(&self) -> impl Iterator<Item = &Enumeration> {
        self.enums.values()
    }

    /// Whether `descendant` equals `ancestor` or transitively extends it.
    #[must_use]
    pub fn device_is_subtype(&self, descendant: &str, ancestor: &str) -> bool {
        let mut current = Some(descendant);
        while let Some(name) = current {
            if name == ancestor {
                return true;
            }
            current = self.devices.get(name).and_then(|d| d.parent.as_deref());
        }
        false
    }

    /// All devices that are `ancestor` or extend it, in name order.
    #[must_use]
    pub fn device_family(&self, ancestor: &str) -> Vec<&Device> {
        self.devices
            .values()
            .filter(|d| self.device_is_subtype(&d.name, ancestor))
            .collect()
    }

    /// The components subscribed (event-driven) to publications of the
    /// context `name`, in deterministic order: contexts first, then
    /// controllers, each in name order.
    #[must_use]
    pub fn subscribers_of_context(&self, name: &str) -> Vec<Subscriber> {
        let mut out = Vec::new();
        for ctx in self.contexts.values() {
            let hit = ctx
                .activations
                .iter()
                .any(|a| matches!(&a.trigger, ActivationTrigger::Context(c) if c == name));
            if hit {
                out.push(Subscriber::Context(ctx.name.clone()));
            }
        }
        for ctrl in self.controllers.values() {
            if ctrl.bindings.iter().any(|b| b.context == name) {
                out.push(Subscriber::Controller(ctrl.name.clone()));
            }
        }
        out
    }

    /// The contexts subscribed (event-driven or periodic) to the source
    /// `source` of device `device` — including subscriptions declared
    /// against an ancestor of `device`.
    #[must_use]
    pub fn subscribers_of_source(&self, device: &str, source: &str) -> Vec<&Context> {
        self.contexts
            .values()
            .filter(|ctx| {
                ctx.activations.iter().any(|a| match &a.trigger {
                    ActivationTrigger::DeviceSource {
                        device: d,
                        source: s,
                    }
                    | ActivationTrigger::Periodic {
                        device: d,
                        source: s,
                        ..
                    } => s == source && self.device_is_subtype(device, d),
                    _ => false,
                })
            })
            .collect()
    }

    /// Total number of declared components (devices + contexts +
    /// controllers + structures + enumerations).
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.devices.len()
            + self.contexts.len()
            + self.controllers.len()
            + self.structures.len()
            + self.enums.len()
    }

    /// Contexts in dependency order: if context `B` subscribes to context
    /// `A`, then `A` precedes `B`. Ties are broken by name.
    ///
    /// The checker rejects subscription cycles, so this is always a valid
    /// topological order.
    #[must_use]
    pub fn context_topo_order(&self) -> Vec<&Context> {
        let mut order: Vec<&Context> = Vec::with_capacity(self.contexts.len());
        let mut placed: std::collections::BTreeSet<&str> = Default::default();
        // Kahn's algorithm over the context-to-context subscription edges.
        // BTreeMap iteration gives deterministic tie-breaking.
        let deps: BTreeMap<&str, Vec<&str>> = self
            .contexts
            .values()
            .map(|ctx| {
                let mut ds: Vec<&str> = ctx
                    .activations
                    .iter()
                    .filter_map(|a| match &a.trigger {
                        ActivationTrigger::Context(c) => Some(c.as_str()),
                        _ => None,
                    })
                    .chain(ctx.activations.iter().flat_map(|a| {
                        a.gets.iter().filter_map(|g| match g {
                            InputRef::Context(c) => Some(c.as_str()),
                            _ => None,
                        })
                    }))
                    .collect();
                ds.sort_unstable();
                ds.dedup();
                (ctx.name.as_str(), ds)
            })
            .collect();
        while order.len() < self.contexts.len() {
            let before = order.len();
            for ctx in self.contexts.values() {
                if placed.contains(ctx.name.as_str()) {
                    continue;
                }
                let ready = deps[ctx.name.as_str()]
                    .iter()
                    .all(|d| placed.contains(d) || !self.contexts.contains_key(*d));
                if ready {
                    placed.insert(&ctx.name);
                    order.push(ctx);
                }
            }
            assert!(
                order.len() > before,
                "context subscription cycle survived checking"
            );
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;

    const PARKING: &str = r#"
        device PresenceSensor {
          attribute parkingLot as ParkingLotEnum;
          source presence as Boolean;
        }
        device DisplayPanel { action update(status as String); }
        device ParkingEntrancePanel extends DisplayPanel {
          attribute location as ParkingLotEnum;
        }
        context ParkingAvailability as Availability[] {
          when periodic presence from PresenceSensor <10 min>
            grouped by parkingLot
            with map as Boolean reduce as Integer
            always publish;
        }
        context ParkingUsagePattern as Availability[] {
          when periodic presence from PresenceSensor <1 hr>
            grouped by parkingLot
            no publish;
          when required;
        }
        context ParkingSuggestion as ParkingLotEnum[] {
          when provided ParkingAvailability
            get ParkingUsagePattern
            always publish;
        }
        controller ParkingEntrancePanelController {
          when provided ParkingAvailability
            do update on ParkingEntrancePanel;
        }
        structure Availability {
          parkingLot as ParkingLotEnum;
          count as Integer;
        }
        enumeration ParkingLotEnum { A22, B16, D6 }
    "#;

    fn parking() -> CheckedSpec {
        compile_str(PARKING).expect("parking spec must check")
    }

    #[test]
    fn inherited_members_are_flattened() {
        let spec = parking();
        let panel = spec.device("ParkingEntrancePanel").unwrap();
        assert!(panel.action("update").is_some(), "inherits update");
        assert_eq!(panel.action("update").unwrap().declared_in, "DisplayPanel");
        assert!(panel.attribute("location").is_some());
        assert_eq!(panel.parent.as_deref(), Some("DisplayPanel"));
    }

    #[test]
    fn subtype_queries() {
        let spec = parking();
        assert!(spec.device_is_subtype("ParkingEntrancePanel", "DisplayPanel"));
        assert!(spec.device_is_subtype("DisplayPanel", "DisplayPanel"));
        assert!(!spec.device_is_subtype("DisplayPanel", "ParkingEntrancePanel"));
        assert!(!spec.device_is_subtype("PresenceSensor", "DisplayPanel"));
        let family = spec.device_family("DisplayPanel");
        assert_eq!(family.len(), 2);
    }

    #[test]
    fn subscriber_queries() {
        let spec = parking();
        let subs = spec.subscribers_of_context("ParkingAvailability");
        assert_eq!(
            subs,
            vec![
                Subscriber::Context("ParkingSuggestion".into()),
                Subscriber::Controller("ParkingEntrancePanelController".into()),
            ]
        );
        let source_subs = spec.subscribers_of_source("PresenceSensor", "presence");
        assert_eq!(source_subs.len(), 2);
    }

    #[test]
    fn context_flags() {
        let spec = parking();
        let avail = spec.context("ParkingAvailability").unwrap();
        assert!(avail.publishes());
        assert!(!avail.is_required());
        assert!(avail.uses_map_reduce());
        let usage = spec.context("ParkingUsagePattern").unwrap();
        assert!(!usage.publishes());
        assert!(usage.is_required());
        assert!(!usage.uses_map_reduce());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let spec = parking();
        let order: Vec<&str> = spec
            .context_topo_order()
            .into_iter()
            .map(|c| c.name.as_str())
            .collect();
        let avail = order
            .iter()
            .position(|n| *n == "ParkingAvailability")
            .unwrap();
        let usage = order
            .iter()
            .position(|n| *n == "ParkingUsagePattern")
            .unwrap();
        let suggestion = order
            .iter()
            .position(|n| *n == "ParkingSuggestion")
            .unwrap();
        assert!(avail < suggestion);
        assert!(usage < suggestion);
    }

    #[test]
    fn component_count_counts_everything() {
        let spec = parking();
        assert_eq!(spec.component_count(), 3 + 3 + 1 + 1 + 1);
    }

    #[test]
    fn model_serializes_to_json() {
        let spec = parking();
        let json = serde_json::to_string(&spec).unwrap();
        let back: CheckedSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn structure_and_enum_lookups() {
        let spec = parking();
        let avail = spec.structure("Availability").unwrap();
        assert_eq!(avail.field("count"), Some(&Type::Integer));
        assert_eq!(avail.field("missing"), None);
        let lots = spec.enumeration("ParkingLotEnum").unwrap();
        assert!(lots.has_variant("A22"));
        assert!(!lots.has_variant("Z99"));
    }
}

//! Property-based tests for the DiaSpec front-end.
//!
//! Invariants exercised:
//! 1. The lexer and parser are total: no input panics them.
//! 2. Pretty-printing is a fixpoint: `pretty(parse(pretty(parse(s)))) ==
//!    pretty(parse(s))` for generated valid specs.
//! 3. Generated well-formed specs always check without errors, and
//!    checking is deterministic.
//! 4. `SourceMap::line_col` is monotonic in the byte offset.

use diaspec_core::check::check;
use diaspec_core::parser::parse;
use diaspec_core::pretty::pretty;
use diaspec_core::span::SourceMap;
use proptest::prelude::*;

// ---------- generators -------------------------------------------------------

/// A lowercase identifier that is never a DSL keyword (keywords are all
/// lowercase ASCII, so prefixing with `v_` is sufficient).
fn lower_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}".prop_map(|s| format!("v_{s}"))
}

fn builtin_type() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("Integer"),
        Just("Float"),
        Just("Boolean"),
        Just("String"),
    ]
}

#[derive(Debug, Clone)]
struct GenDevice {
    name: String,
    attrs: Vec<(String, &'static str)>,
    sources: Vec<(String, &'static str)>,
    actions: Vec<String>,
}

fn gen_device(index: usize) -> impl Strategy<Value = GenDevice> {
    let attrs = proptest::collection::vec((lower_ident(), builtin_type()), 0..3);
    let sources = proptest::collection::vec((lower_ident(), builtin_type()), 1..4);
    let actions = proptest::collection::vec(lower_ident(), 0..3);
    (attrs, sources, actions).prop_map(move |(mut attrs, mut sources, mut actions)| {
        dedup_by_name(&mut attrs);
        dedup_by_name(&mut sources);
        actions.sort();
        actions.dedup();
        // Attribute names must not collide with source names? They live in
        // separate namespaces, so no constraint needed.
        GenDevice {
            name: format!("Dev{index}"),
            attrs,
            sources,
            actions,
        }
    })
}

fn dedup_by_name<T>(items: &mut Vec<(String, T)>) {
    let mut seen = std::collections::BTreeSet::new();
    items.retain(|(name, _)| seen.insert(name.clone()));
}

#[derive(Debug, Clone)]
struct GenSpec {
    devices: Vec<GenDevice>,
    /// (context index, device index, source index, periodic?, grouped attr index)
    contexts: Vec<(usize, usize, bool, Option<usize>)>,
    /// (controller context index, device index, action index)
    controllers: Vec<(usize, usize, usize)>,
}

fn gen_spec() -> impl Strategy<Value = GenSpec> {
    proptest::collection::vec(any::<u8>(), 1..5)
        .prop_flat_map(|seeds| {
            let n = seeds.len();
            let devices: Vec<_> = (0..n).map(gen_device).collect();
            let contexts = proptest::collection::vec(
                (
                    0..n,
                    any::<usize>(),
                    any::<bool>(),
                    proptest::option::of(any::<usize>()),
                ),
                1..5,
            );
            let controllers =
                proptest::collection::vec((any::<usize>(), 0..n, any::<usize>()), 0..4);
            (devices, contexts, controllers)
        })
        .prop_map(|(devices, contexts, controllers)| GenSpec {
            devices,
            contexts,
            controllers,
        })
}

/// Renders a generated spec to source text, resolving all the random
/// indices to actually-declared members so the result is well formed.
fn render(spec: &GenSpec) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for dev in &spec.devices {
        let _ = writeln!(out, "device {} {{", dev.name);
        for (name, ty) in &dev.attrs {
            let _ = writeln!(out, "  attribute {name} as {ty};");
        }
        for (name, ty) in &dev.sources {
            let _ = writeln!(out, "  source {name} as {ty};");
        }
        for name in &dev.actions {
            let _ = writeln!(out, "  action {name};");
        }
        let _ = writeln!(out, "}}");
    }
    let mut context_names = Vec::new();
    for (i, (dev_idx, src_seed, periodic, group_seed)) in spec.contexts.iter().enumerate() {
        let dev = &spec.devices[*dev_idx];
        let source = &dev.sources[src_seed % dev.sources.len()].0;
        let name = format!("Ctx{i}");
        let _ = writeln!(out, "context {name} as Integer {{");
        // Grouping only applies when the device has a groupable attribute
        // and the trigger is a device source (always true here). Float
        // attributes are not groupable, so filter them out.
        let groupable: Vec<&String> = dev
            .attrs
            .iter()
            .filter(|(_, ty)| *ty != "Float")
            .map(|(n, _)| n)
            .collect();
        let group_clause = group_seed
            .filter(|_| !groupable.is_empty())
            .map(|seed| format!(" grouped by {}", groupable[seed % groupable.len()]));
        if *periodic {
            let _ = writeln!(
                out,
                "  when periodic {source} from {} <5 min>{} always publish;",
                dev.name,
                group_clause.clone().unwrap_or_default()
            );
        } else {
            let _ = writeln!(
                out,
                "  when provided {source} from {}{} always publish;",
                dev.name,
                group_clause.unwrap_or_default()
            );
        }
        let _ = writeln!(out, "}}");
        context_names.push(name);
    }
    for (i, (ctx_seed, dev_idx, act_seed)) in spec.controllers.iter().enumerate() {
        let dev = &spec.devices[*dev_idx];
        if dev.actions.is_empty() || context_names.is_empty() {
            continue;
        }
        let ctx = &context_names[ctx_seed % context_names.len()];
        let action = &dev.actions[act_seed % dev.actions.len()];
        let _ = writeln!(out, "controller Ctl{i} {{");
        let _ = writeln!(out, "  when provided {ctx} do {action} on {};", dev.name);
        let _ = writeln!(out, "}}");
    }
    out
}

// ---------- properties -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer and parser never panic, on any input whatsoever.
    #[test]
    fn front_end_is_total(input in ".*") {
        let _ = diaspec_core::lexer::lex(&input);
        let _ = parse(&input);
    }

    /// Near-miss DSL text (keywords and punctuation shuffled together)
    /// never panics the parser either.
    #[test]
    fn parser_survives_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("device"), Just("context"), Just("controller"),
                Just("when"), Just("provided"), Just("periodic"),
                Just("grouped"), Just("by"), Just("publish"), Just("always"),
                Just("{"), Just("}"), Just(";"), Just("<"), Just(">"),
                Just("("), Just(")"), Just("X"), Just("y"), Just("10"),
                Just("min"), Just("as"), Just("from"), Just("@"), Just("="),
            ],
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = parse(&src);
    }

    /// Generated well-formed specs parse and check with zero errors.
    #[test]
    fn generated_specs_check_cleanly(spec in gen_spec()) {
        let src = render(&spec);
        let (ast, diags) = parse(&src);
        prop_assert!(!diags.has_errors(), "parse failed:\n{src}\n{diags:?}");
        let (model, check_diags) = check(&ast);
        prop_assert!(
            !check_diags.has_errors(),
            "check failed:\n{src}\n{check_diags:?}"
        );
        prop_assert!(model.is_some());
    }

    /// Pretty-printing reaches a fixpoint after one iteration.
    #[test]
    fn pretty_print_fixpoint(spec in gen_spec()) {
        let src = render(&spec);
        let (ast, diags) = parse(&src);
        prop_assert!(!diags.has_errors());
        let once = pretty(&ast);
        let (reparsed, rediags) = parse(&once);
        prop_assert!(!rediags.has_errors(), "re-parse failed:\n{once}\n{rediags:?}");
        let twice = pretty(&reparsed);
        prop_assert_eq!(once, twice);
    }

    /// Checking is deterministic: two runs produce identical models.
    #[test]
    fn checking_is_deterministic(spec in gen_spec()) {
        let src = render(&spec);
        let (ast, _) = parse(&src);
        let (model1, diags1) = check(&ast);
        let (model2, diags2) = check(&ast);
        prop_assert_eq!(model1, model2);
        prop_assert_eq!(diags1.len(), diags2.len());
    }

    /// `SourceMap::line_col` is monotonically non-decreasing in the offset.
    #[test]
    fn line_col_is_monotonic(text in ".{0,200}") {
        let map = SourceMap::new(text.as_str());
        let mut prev = (0u32, 0u32);
        for offset in 0..=text.len() {
            let pos = map.line_col(offset);
            let cur = (pos.line, pos.col);
            prop_assert!(
                pos.line > prev.0 || (pos.line == prev.0 && cur >= prev),
                "position went backwards at offset {offset}"
            );
            prev = (pos.line, pos.col);
        }
    }

    /// Token spans partition the input: non-overlapping and in order.
    #[test]
    fn token_spans_are_ordered(input in "[a-zA-Z0-9 {};()<>,@=\n\t]*") {
        let (tokens, _) = diaspec_core::lexer::lex(&input);
        let mut last_end = 0;
        for tok in &tokens {
            prop_assert!(tok.span.start >= last_end, "overlapping spans");
            prop_assert!(tok.span.end <= input.len() || tok.span.is_empty());
            last_end = tok.span.start;
        }
    }
}

//! Component logic traits: how application code plugs into the runtime.
//!
//! The paper's generated programming frameworks employ *inversion of
//! control* (§V): the developer subclasses generated abstract component
//! classes and the runtime calls them. The Rust equivalent is implementing
//! these traits and registering the implementations with the
//! [`Orchestrator`](crate::engine::Orchestrator); the engine then activates
//! them according to the declared interaction contracts.
//!
//! - [`ContextLogic`] — the compute layer, activated by source events,
//!   context publications, periodic batches, or on-demand pulls;
//! - [`ControllerLogic`] — the control layer, activated by context
//!   publications, issuing device actions through a discover facade;
//! - [`MapReduceLogic`] — the Map/Reduce phases of a `grouped by ... with
//!   map ... reduce ...` context, executed by the engine on the
//!   `diaspec-mapreduce` substrate.

use crate::clock::SimTime;
use crate::engine::{ContextApi, ControllerApi};
use crate::entity::EntityId;
use crate::error::ComponentError;
use crate::payload::Payload;
use crate::registry::PolledReading;
use crate::value::Value;
use std::collections::BTreeMap;

/// One periodic batch delivered to a context (paper §IV.2: "every 10
/// minutes, all presence sensor statuses of all parking lots are
/// delivered").
#[derive(Debug, Clone, PartialEq)]
pub struct BatchData {
    /// The polled device type.
    pub device_type: String,
    /// The polled source.
    pub source: String,
    /// Raw readings in deterministic (entity-id) order. Readings lost in
    /// transport are absent.
    pub readings: Vec<PolledReading>,
    /// Readings grouped by the `grouped by` attribute value, when the
    /// activation declares grouping. Keys and readings are shared
    /// [`Payload`] handles into the batch — grouping never deep-copies a
    /// reading (a `&Payload` dereferences to [`Value`] for consumers).
    pub grouped: Option<BTreeMap<Payload, Vec<Payload>>>,
    /// Result of the declared MapReduce phases, when `with map ... reduce
    /// ...` is present: final value per group key.
    pub reduced: Option<BTreeMap<Value, Value>>,
    /// Task-level coverage accounting of the MapReduce execution that
    /// produced [`BatchData::reduced`]. `Some` exactly when `reduced` is;
    /// a degraded batch reports a fraction below 1 here, so context logic
    /// can weigh partial results.
    pub coverage: Option<diaspec_mapreduce::CoverageReport>,
    /// The aggregation window in milliseconds, when `every <T>` is present.
    pub window_ms: Option<u64>,
}

/// The stimulus delivered to a [`ContextLogic`] activation.
#[derive(Debug, Clone, PartialEq)]
pub enum ContextActivation<'a> {
    /// Event-driven delivery of one device-source emission
    /// (`when provided src from Dev`).
    SourceEvent {
        /// Declared device type of the emitting entity.
        device_type: &'a str,
        /// The emitting entity.
        entity: &'a EntityId,
        /// The emitting source.
        source: &'a str,
        /// The emitted value.
        value: &'a Value,
        /// The index value, for `indexed by` sources (e.g. a question id).
        index: Option<&'a Value>,
    },
    /// Event-driven delivery of an upstream context publication
    /// (`when provided Ctx`).
    ContextEvent {
        /// The publishing context.
        context: &'a str,
        /// The published value.
        value: &'a Value,
    },
    /// A periodic batch (`when periodic ... <T>`).
    Batch(&'a BatchData),
    /// An on-demand computation (`when required`), triggered by another
    /// component's `get`.
    OnDemand,
}

/// Compute-layer logic of a declared context.
///
/// Return `Ok(Some(value))` to publish (subject to the activation's
/// declared publish mode), `Ok(None)` to stay silent. The engine verifies
/// the design contract: an `always publish` activation must return a
/// value, a `no publish` activation must not, and published values must
/// conform to the declared output type.
pub trait ContextLogic: Send {
    /// Handles one activation.
    ///
    /// # Errors
    ///
    /// Implementations report failures as [`ComponentError`]; the engine
    /// records them and keeps orchestrating.
    fn activate(
        &mut self,
        api: &mut ContextApi<'_>,
        activation: ContextActivation<'_>,
    ) -> Result<Option<Value>, ComponentError>;

    /// Called after the runtime re-binds `replacement` for a lost entity
    /// `lost` whose device type this context's design references. The
    /// default implementation does nothing; override to re-prime state
    /// tied to the lost entity.
    ///
    /// # Errors
    ///
    /// Implementations report failures as [`ComponentError`]; the engine
    /// records them and keeps orchestrating.
    fn on_recovery(
        &mut self,
        api: &mut ContextApi<'_>,
        lost: &EntityId,
        replacement: &EntityId,
    ) -> Result<(), ComponentError> {
        let _ = (api, lost, replacement);
        Ok(())
    }
}

impl<F> ContextLogic for F
where
    F: FnMut(&mut ContextApi<'_>, ContextActivation<'_>) -> Result<Option<Value>, ComponentError>
        + Send,
{
    fn activate(
        &mut self,
        api: &mut ContextApi<'_>,
        activation: ContextActivation<'_>,
    ) -> Result<Option<Value>, ComponentError> {
        self(api, activation)
    }
}

/// Control-layer logic of a declared controller.
pub trait ControllerLogic: Send {
    /// Handles one publication of a subscribed context.
    ///
    /// # Errors
    ///
    /// Implementations report failures as [`ComponentError`]; the engine
    /// records them and keeps orchestrating.
    fn on_context(
        &mut self,
        api: &mut ControllerApi<'_>,
        context: &str,
        value: &Value,
    ) -> Result<(), ComponentError>;

    /// Called after the runtime re-binds `replacement` for a lost entity
    /// `lost` whose device type this controller's design actuates. The
    /// default implementation does nothing; override to re-issue state
    /// the lost actuator held (e.g. a setpoint).
    ///
    /// # Errors
    ///
    /// Implementations report failures as [`ComponentError`]; the engine
    /// records them and keeps orchestrating.
    fn on_recovery(
        &mut self,
        api: &mut ControllerApi<'_>,
        lost: &EntityId,
        replacement: &EntityId,
    ) -> Result<(), ComponentError> {
        let _ = (api, lost, replacement);
        Ok(())
    }
}

impl<F> ControllerLogic for F
where
    F: FnMut(&mut ControllerApi<'_>, &str, &Value) -> Result<(), ComponentError> + Send,
{
    fn on_context(
        &mut self,
        api: &mut ControllerApi<'_>,
        context: &str,
        value: &Value,
    ) -> Result<(), ComponentError> {
        self(api, context, value)
    }
}

/// Map and Reduce phases of a `grouped by ... with map as X reduce as Y`
/// context (paper Figure 10), over dynamic values.
///
/// The engine partitions the periodic batch by the grouping attribute and
/// feeds each `(group, reading)` pair to [`map`](Self::map); intermediate
/// records are grouped by their emitted key and folded by
/// [`reduce`](Self::reduce). Implementations must be stateless
/// (`Send + Sync`) because the parallel executor shares them across
/// worker threads.
pub trait MapReduceLogic: Send + Sync {
    /// The Map phase: processes one reading, emitting intermediate records
    /// through `emit(key, value)`.
    fn map(&self, group: &Value, reading: &Value, emit: &mut dyn FnMut(Value, Value));

    /// The Reduce phase: folds all intermediate values for `key` into one
    /// final value.
    fn reduce(&self, key: &Value, values: &[Value]) -> Value;
}

/// Timestamped record of a contained error, retrievable via
/// [`Orchestrator::drain_errors`](crate::engine::Orchestrator::drain_errors).
#[derive(Debug, Clone, PartialEq)]
pub struct ContainedError {
    /// Simulation time at which the error occurred.
    pub at: SimTime,
    /// The error.
    pub error: crate::error::RuntimeError,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_data_is_plain_data() {
        let batch = BatchData {
            device_type: "PresenceSensor".into(),
            source: "presence".into(),
            readings: vec![],
            grouped: None,
            reduced: None,
            coverage: None,
            window_ms: Some(1000),
        };
        let clone = batch.clone();
        assert_eq!(batch, clone);
        assert!(format!("{batch:?}").contains("PresenceSensor"));
    }

    #[test]
    fn activation_variants_compare() {
        let a = ContextActivation::OnDemand;
        let b = ContextActivation::OnDemand;
        assert_eq!(a, b);
        let v = Value::Int(1);
        let c = ContextActivation::ContextEvent {
            context: "A",
            value: &v,
        };
        assert_ne!(a, c);
    }
}

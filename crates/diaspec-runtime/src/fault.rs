//! Fault injection and recovery configuration (paper §VI: error handling
//! as a design-level concern).
//!
//! The paper's §VI names error handling and QoS as the extensions that
//! turn the DiaSpec methodology into a dependable orchestration stack; at
//! city scale, device churn and lossy links are the normal case, not the
//! exception. This module supplies both halves of experiment E14's
//! failure story:
//!
//! - [`FaultPlan`] / [`FaultInjector`] — a *deterministic, clock-driven*
//!   fault injector. Scheduled faults (device crash/restart, link
//!   partition windows) fire at exact simulation times; per-message
//!   faults (drop, duplication, extra delay) are sampled from a seeded
//!   RNG that is independent of the transport's, so adding faults never
//!   perturbs the healthy-path event sequence of a run with the same
//!   seed.
//! - [`RecoveryConfig`] / [`RetryConfig`] — the recovery machinery the
//!   engine executes against those faults: lease-based bindings with
//!   expiry and automatic standby promotion (see
//!   [`Registry`](crate::registry::Registry)), and per-delivery retry
//!   with exponential backoff and a timeout.
//!
//! Both sides flow through the observability layer: every injected fault
//! and every recovery action is traced (see
//! [`TraceKind`](crate::trace::TraceKind)) and recovery cost is recorded
//! under [`Activity::Recovering`](crate::obs::Activity::Recovering).

use crate::clock::SimTime;
use crate::entity::EntityId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use diaspec_mapreduce::{SpeculationConfig, TaskFault, TaskFaultPlan, TaskPhase};

// ---- faults ----------------------------------------------------------------

/// A deterministic fault applied at a scheduled simulation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The entity stops serving queries/invocations and stops renewing
    /// its lease (it stays bound until the lease expires).
    DeviceCrash {
        /// The crashing entity.
        entity: EntityId,
    },
    /// A previously crashed entity resumes service (if it is still
    /// bound; an entity whose lease already expired stays gone).
    DeviceRestart {
        /// The restarting entity.
        entity: EntityId,
    },
    /// The link partitions: every message is dropped until the matching
    /// [`FaultKind::PartitionEnd`].
    PartitionStart,
    /// The link heals.
    PartitionEnd,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::DeviceCrash { entity } => write!(f, "crash {entity}"),
            FaultKind::DeviceRestart { entity } => write!(f, "restart {entity}"),
            FaultKind::PartitionStart => write!(f, "partition start"),
            FaultKind::PartitionEnd => write!(f, "partition end"),
        }
    }
}

/// One scheduled fault: what happens, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Absolute simulation time at which the fault fires.
    pub at_ms: SimTime,
    /// The fault.
    pub kind: FaultKind,
}

/// The full fault scenario of a run: scheduled faults plus per-message
/// fault probabilities. All sampling is seeded — two runs with equal
/// plans inject byte-identical fault sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's RNG (independent of the transport seed).
    pub seed: u64,
    /// Probability in `[0, 1]` that a message is dropped by a fault
    /// (on top of the transport's own loss model).
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a delivered message is duplicated.
    pub duplicate_probability: f64,
    /// Probability in `[0, 1]` that a delivered message is delayed by
    /// [`FaultPlan::delay_ms`] extra milliseconds.
    pub delay_probability: f64,
    /// Extra delay applied to delayed messages.
    pub delay_ms: SimTime,
    /// Probability in `[0, 1]` that a message is held back and arrives
    /// after the next one (out-of-order delivery). Consumed only by the
    /// chaos transport middleware
    /// ([`ChaosTransport`](crate::transport::ChaosTransport)); the
    /// engine-side [`FaultInjector`] never samples it, so enabling it
    /// leaves in-process fault streams untouched.
    pub reorder_probability: f64,
    /// Probability in `[0, 1]` that a message's encoded frame has one
    /// byte flipped in flight. Chaos-transport only, like
    /// [`FaultPlan::reorder_probability`].
    pub corrupt_probability: f64,
    /// Clock-driven faults, fired by the engine at their exact times.
    pub scheduled: Vec<ScheduledFault>,
    /// Task-level faults injected into the MapReduce processing activity
    /// (panicking, stalled, and lost map/reduce task attempts). Unlike
    /// the message faults above, task fates are a pure hash of
    /// `(seed, phase, task, attempt)`, so they are deterministic even
    /// across worker-thread interleavings.
    pub tasks: Option<TaskFaultPlan>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            delay_probability: 0.0,
            delay_ms: 0,
            reorder_probability: 0.0,
            corrupt_probability: 0.0,
            scheduled: Vec::new(),
            tasks: None,
        }
    }
}

impl FaultPlan {
    /// A plan with no faults and the given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the per-message drop probability.
    #[must_use]
    pub fn drop_messages(mut self, probability: f64) -> Self {
        self.drop_probability = probability;
        self
    }

    /// Sets the per-message duplication probability.
    #[must_use]
    pub fn duplicate_messages(mut self, probability: f64) -> Self {
        self.duplicate_probability = probability;
        self
    }

    /// Delays each message by `delay_ms` extra with the given probability.
    #[must_use]
    pub fn delay_messages(mut self, probability: f64, delay_ms: SimTime) -> Self {
        self.delay_probability = probability;
        self.delay_ms = delay_ms;
        self
    }

    /// Sets the per-message reorder probability (chaos transport only).
    #[must_use]
    pub fn reorder_messages(mut self, probability: f64) -> Self {
        self.reorder_probability = probability;
        self
    }

    /// Sets the per-message frame-corruption probability (chaos
    /// transport only).
    #[must_use]
    pub fn corrupt_frames(mut self, probability: f64) -> Self {
        self.corrupt_probability = probability;
        self
    }

    /// Crashes `entity` at `at_ms`.
    #[must_use]
    pub fn crash_at(mut self, at_ms: SimTime, entity: impl Into<EntityId>) -> Self {
        self.scheduled.push(ScheduledFault {
            at_ms,
            kind: FaultKind::DeviceCrash {
                entity: entity.into(),
            },
        });
        self
    }

    /// Restarts `entity` at `at_ms`.
    #[must_use]
    pub fn restart_at(mut self, at_ms: SimTime, entity: impl Into<EntityId>) -> Self {
        self.scheduled.push(ScheduledFault {
            at_ms,
            kind: FaultKind::DeviceRestart {
                entity: entity.into(),
            },
        });
        self
    }

    /// Injects the given task-level fault plan into the MapReduce
    /// processing path (map/reduce task panics, stalls, lost workers).
    #[must_use]
    pub fn fault_tasks(mut self, tasks: TaskFaultPlan) -> Self {
        self.tasks = Some(tasks);
        self
    }

    /// Partitions the link over `[from_ms, until_ms)`.
    #[must_use]
    pub fn partition(mut self, from_ms: SimTime, until_ms: SimTime) -> Self {
        assert!(from_ms < until_ms, "empty partition window");
        self.scheduled.push(ScheduledFault {
            at_ms: from_ms,
            kind: FaultKind::PartitionStart,
        });
        self.scheduled.push(ScheduledFault {
            at_ms: until_ms,
            kind: FaultKind::PartitionEnd,
        });
        self
    }
}

/// The fate of one message after fault sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered, possibly with extra delay and/or a duplicate copy.
    Deliver {
        /// Extra latency injected on top of the transport's sample.
        extra_delay_ms: SimTime,
        /// Whether a duplicate copy also arrives.
        duplicated: bool,
    },
    /// Dropped by an injected fault (or a partition window).
    Drop,
}

/// The seeded fault sampler consulted by the engine on every send, plus
/// the partition state toggled by scheduled faults.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    partitioned: bool,
    injected: u64,
}

impl FaultInjector {
    /// Creates an injector from a plan.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        for (name, p) in [
            ("drop", plan.drop_probability),
            ("duplicate", plan.duplicate_probability),
            ("delay", plan.delay_probability),
            ("reorder", plan.reorder_probability),
            ("corrupt", plan.corrupt_probability),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} probability {p} outside [0, 1]"
            );
        }
        if let Some(tasks) = &plan.tasks {
            tasks.validate();
        }
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng,
            partitioned: false,
            injected: 0,
        }
    }

    /// The scheduled faults of the plan (in declaration order; the engine
    /// schedules each at its `at_ms`).
    #[must_use]
    pub fn scheduled(&self) -> &[ScheduledFault] {
        &self.plan.scheduled
    }

    /// The task-level fault plan for the processing activity, if any.
    #[must_use]
    pub fn task_plan(&self) -> Option<&TaskFaultPlan> {
        self.plan.tasks.as_ref()
    }

    /// Whether the link is currently partitioned.
    #[must_use]
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Applies a partition start/end (called by the engine when the
    /// scheduled fault fires).
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.partitioned = partitioned;
        self.injected += 1;
    }

    /// Counts one injected fault (crash/restart applied by the engine).
    pub fn count_injection(&mut self) {
        self.injected += 1;
    }

    /// Total faults injected so far (messages affected + scheduled
    /// faults applied).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Samples the fate of one message. Deterministic per seed and call
    /// sequence.
    pub fn message_fate(&mut self) -> MessageFate {
        if self.partitioned {
            self.injected += 1;
            return MessageFate::Drop;
        }
        if self.plan.drop_probability > 0.0 && self.rng.gen::<f64>() < self.plan.drop_probability {
            self.injected += 1;
            return MessageFate::Drop;
        }
        let extra_delay_ms = if self.plan.delay_probability > 0.0
            && self.rng.gen::<f64>() < self.plan.delay_probability
        {
            self.injected += 1;
            self.plan.delay_ms
        } else {
            0
        };
        let duplicated = self.plan.duplicate_probability > 0.0
            && self.rng.gen::<f64>() < self.plan.duplicate_probability;
        if duplicated {
            self.injected += 1;
        }
        MessageFate::Deliver {
            extra_delay_ms,
            duplicated,
        }
    }
}

// ---- recovery ---------------------------------------------------------------

/// Per-delivery retry with exponential backoff and a timeout: a dropped
/// delivery is re-sent after `base_backoff_ms`, then twice that, and so
/// on, until it is delivered, `max_attempts` retries have failed, or the
/// message has been in flight longer than `timeout_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Maximum number of retry attempts after the initial send.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff_ms: SimTime,
    /// Total in-flight budget: no retry is scheduled past this.
    pub timeout_ms: SimTime,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 3,
            base_backoff_ms: 100,
            timeout_ms: 10_000,
        }
    }
}

impl RetryConfig {
    /// Backoff before retry `attempt` (1-based): `base * 2^(attempt-1)`.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> SimTime {
        self.base_backoff_ms.saturating_mul(
            1u64.checked_shl(attempt.saturating_sub(1))
                .unwrap_or(u64::MAX),
        )
    }
}

/// The recovery machinery the engine runs: lease-based bindings,
/// delivery retry, and task-level re-execution in the processing
/// activity. Disabled by default — a run without recovery behaves
/// exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryConfig {
    /// When set, every bound entity holds a lease of this many
    /// milliseconds, renewed on each successful query/poll/invocation.
    /// An expired lease unbinds the entity and promotes a standby (see
    /// [`Registry::register_standby`](crate::registry::Registry::register_standby)).
    pub lease_ttl_ms: Option<SimTime>,
    /// Delivery retry policy for dropped messages.
    pub retry: Option<RetryConfig>,
    /// How many times a failed map/reduce task is re-executed before the
    /// batch completes degraded (0 = a single failure loses the task).
    pub task_retries: u32,
    /// When set, straggling map/reduce tasks are speculatively
    /// re-executed (first result wins, byte-identical output).
    pub task_speculation: Option<SpeculationConfig>,
}

impl RecoveryConfig {
    /// Enables leases with the given TTL.
    #[must_use]
    pub fn with_leases(mut self, ttl_ms: SimTime) -> Self {
        assert!(ttl_ms > 0, "zero lease TTL");
        self.lease_ttl_ms = Some(ttl_ms);
        self
    }

    /// Enables delivery retry.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Re-executes each failed map/reduce task up to `retries` times.
    #[must_use]
    pub fn with_task_retries(mut self, retries: u32) -> Self {
        self.task_retries = retries;
        self
    }

    /// Enables speculative re-execution of straggling tasks.
    #[must_use]
    pub fn with_task_speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.task_speculation = Some(speculation);
        self
    }

    /// Interval at which the engine checks for expired leases: half the
    /// TTL, at least 1 ms.
    #[must_use]
    pub fn lease_check_interval_ms(&self) -> Option<SimTime> {
        self.lease_ttl_ms.map(|ttl| (ttl / 2).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let mut inj = FaultInjector::new(FaultPlan::default());
        for _ in 0..1000 {
            assert_eq!(
                inj.message_fate(),
                MessageFate::Deliver {
                    extra_delay_ms: 0,
                    duplicated: false
                }
            );
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = FaultPlan::seeded(42)
            .drop_messages(0.2)
            .duplicate_messages(0.1)
            .delay_messages(0.3, 500);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for _ in 0..500 {
            assert_eq!(a.message_fate(), b.message_fate());
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0);
    }

    #[test]
    fn partition_drops_everything_until_healed() {
        let mut inj = FaultInjector::new(FaultPlan::default());
        inj.set_partitioned(true);
        for _ in 0..10 {
            assert_eq!(inj.message_fate(), MessageFate::Drop);
        }
        inj.set_partitioned(false);
        assert!(matches!(inj.message_fate(), MessageFate::Deliver { .. }));
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let mut inj = FaultInjector::new(FaultPlan::seeded(7).drop_messages(0.25));
        let drops = (0..10_000)
            .filter(|_| inj.message_fate() == MessageFate::Drop)
            .count();
        let rate = drops as f64 / 10_000.0;
        assert!((0.22..0.28).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn plan_builder_schedules_faults_in_order() {
        let plan = FaultPlan::seeded(1)
            .crash_at(5_000, "altimeter-NOSE")
            .restart_at(20_000, "altimeter-NOSE")
            .partition(30_000, 40_000);
        assert_eq!(plan.scheduled.len(), 4);
        assert_eq!(
            plan.scheduled[0].kind,
            FaultKind::DeviceCrash {
                entity: "altimeter-NOSE".into()
            }
        );
        assert_eq!(plan.scheduled[2].at_ms, 30_000);
        assert_eq!(plan.scheduled[3].kind, FaultKind::PartitionEnd);
        assert_eq!(plan.scheduled[0].kind.to_string(), "crash altimeter-NOSE");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = FaultInjector::new(FaultPlan::default().drop_messages(1.5));
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let retry = RetryConfig {
            max_attempts: 5,
            base_backoff_ms: 100,
            timeout_ms: 60_000,
        };
        assert_eq!(retry.backoff_ms(1), 100);
        assert_eq!(retry.backoff_ms(2), 200);
        assert_eq!(retry.backoff_ms(3), 400);
        assert_eq!(retry.backoff_ms(64), u64::MAX, "saturates, no overflow");
    }

    #[test]
    fn recovery_config_defaults_to_disabled() {
        let config = RecoveryConfig::default();
        assert!(config.lease_ttl_ms.is_none());
        assert!(config.retry.is_none());
        assert_eq!(config.task_retries, 0);
        assert!(config.task_speculation.is_none());
        assert_eq!(config.lease_check_interval_ms(), None);
        let config = config.with_leases(5_000).with_retry(RetryConfig::default());
        assert_eq!(config.lease_check_interval_ms(), Some(2_500));
        let config = config
            .with_task_retries(2)
            .with_task_speculation(SpeculationConfig::default());
        assert_eq!(config.task_retries, 2);
        assert!(config.task_speculation.is_some());
    }

    #[test]
    fn fault_plan_embeds_task_plan() {
        let plan = FaultPlan::seeded(4).fault_tasks(TaskFaultPlan::seeded(4).panic_task(
            TaskPhase::Map,
            0,
            2,
        ));
        let injector = FaultInjector::new(plan);
        let tasks = injector.task_plan().expect("task plan embedded");
        assert_eq!(tasks.fate(TaskPhase::Map, 0, 1), Some(TaskFault::Panic));
        assert_eq!(tasks.fate(TaskPhase::Map, 0, 3), None);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_task_probability_rejected() {
        let _ = FaultInjector::new(
            FaultPlan::default().fault_tasks(TaskFaultPlan::seeded(0).panic_tasks(-0.5)),
        );
    }
}

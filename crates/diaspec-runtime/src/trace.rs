//! Execution tracing: a timestamped record of every orchestration-level
//! event.
//!
//! Tracing is off by default (it allocates per event); switch it on with
//! [`Orchestrator::set_tracing`](crate::engine::Orchestrator::set_tracing)
//! to debug a design or to render a timeline of a scenario run, and drain
//! the recorded events with
//! [`Orchestrator::take_trace`](crate::engine::Orchestrator::take_trace).

use crate::clock::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of orchestration event a trace entry records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A device source emission (event-driven delivery).
    Emission {
        /// Emitting entity.
        entity: String,
        /// Emitting source.
        source: String,
    },
    /// A periodic poll gathered a batch.
    PeriodicPoll {
        /// Polled device type.
        device: String,
        /// Polled source.
        source: String,
        /// Readings gathered.
        readings: usize,
    },
    /// A context activation started.
    ContextActivation {
        /// The activated context.
        context: String,
    },
    /// A context published a value.
    Publication {
        /// The publishing context.
        context: String,
        /// Rendered value.
        value: String,
    },
    /// A controller activation started.
    ControllerActivation {
        /// The activated controller.
        controller: String,
        /// The triggering context.
        from: String,
    },
    /// A device action was invoked.
    Actuation {
        /// Target entity.
        entity: String,
        /// Invoked action.
        action: String,
    },
    /// An error was contained.
    Error {
        /// Rendered error.
        message: String,
    },
    /// The fault injector applied a fault (see
    /// [`fault`](crate::fault)).
    FaultInjected {
        /// Rendered fault (e.g. `crash altimeter-NOSE`).
        fault: String,
    },
    /// A bound entity's lease ran out without renewal.
    LeaseExpired {
        /// The entity whose lease expired.
        entity: String,
    },
    /// The registry re-bound a replacement for a lost entity.
    Rebound {
        /// The entity that was lost.
        lost: String,
        /// The standby promoted in its place.
        replacement: String,
    },
    /// A dropped delivery was re-sent with backoff.
    DeliveryRetry {
        /// The receiving component.
        to: String,
        /// Retry attempt number (1-based).
        attempt: u32,
    },
    /// A failed actuation was masked by its declared fallback action.
    FallbackActuation {
        /// Target entity.
        entity: String,
        /// The fallback action invoked.
        action: String,
    },
    /// A map/reduce task exhausted its retry budget during batch
    /// processing (the batch continued with partial results).
    TaskFailed {
        /// The processing context.
        context: String,
        /// `map` or `reduce`.
        phase: String,
        /// Task index within the phase.
        task: u32,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A processed batch landed below its `@quality` coverage threshold
    /// (or a fault-free completeness expectation when undeclared).
    BatchDegraded {
        /// The processing context.
        context: String,
        /// Whole-percent input coverage achieved (floored).
        coverage_pct: u32,
        /// The coverage threshold that was missed.
        threshold_pct: u32,
        /// Tasks that permanently failed in this batch.
        failed_tasks: u32,
    },
}

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time of the event, in milliseconds.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8} ms] ", self.at)?;
        match &self.kind {
            TraceKind::Emission { entity, source } => {
                write!(f, "emit      {entity}.{source}")
            }
            TraceKind::PeriodicPoll {
                device,
                source,
                readings,
            } => write!(f, "poll      {device}.{source} ({readings} readings)"),
            TraceKind::ContextActivation { context } => {
                write!(f, "activate  [{context}]")
            }
            TraceKind::Publication { context, value } => {
                write!(f, "publish   [{context}] = {value}")
            }
            TraceKind::ControllerActivation { controller, from } => {
                write!(f, "control   ({controller}) <- [{from}]")
            }
            TraceKind::Actuation { entity, action } => {
                write!(f, "actuate   {entity}.{action}()")
            }
            TraceKind::Error { message } => write!(f, "ERROR     {message}"),
            TraceKind::FaultInjected { fault } => write!(f, "FAULT     {fault}"),
            TraceKind::LeaseExpired { entity } => {
                write!(f, "lease     {entity} expired")
            }
            TraceKind::Rebound { lost, replacement } => {
                write!(f, "rebind    {lost} -> {replacement}")
            }
            TraceKind::DeliveryRetry { to, attempt } => {
                write!(f, "retry     -> {to} (attempt {attempt})")
            }
            TraceKind::FallbackActuation { entity, action } => {
                write!(f, "fallback  {entity}.{action}()")
            }
            TraceKind::TaskFailed {
                context,
                phase,
                task,
                attempts,
            } => write!(
                f,
                "task      [{context}] {phase} task {task} failed after {attempts} attempts"
            ),
            TraceKind::BatchDegraded {
                context,
                coverage_pct,
                threshold_pct,
                failed_tasks,
            } => write!(
                f,
                "degraded  [{context}] coverage {coverage_pct}% < {threshold_pct}% \
                 ({failed_tasks} tasks lost)"
            ),
        }
    }
}

/// A bounded trace buffer (oldest entries are dropped past the capacity).
#[derive(Debug)]
pub(crate) struct TraceBuffer {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceBuffer {
    pub(crate) fn new() -> Self {
        TraceBuffer {
            events: std::collections::VecDeque::new(),
            capacity: 100_000,
            enabled: false,
            dropped: 0,
        }
    }

    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(&mut self, at: SimTime, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { at, kind });
    }

    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        // Draining starts a fresh observation window: a stale drop count
        // from a previous run would otherwise misreport later drains.
        self.dropped = 0;
        self.events.drain(..).collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut buf = TraceBuffer::new();
        buf.record(
            1,
            TraceKind::Emission {
                entity: "e".into(),
                source: "s".into(),
            },
        );
        assert!(buf.take().is_empty());
        assert!(!buf.is_enabled());
    }

    #[test]
    fn enabled_buffer_records_and_drains() {
        let mut buf = TraceBuffer::new();
        buf.set_enabled(true);
        buf.record(
            5,
            TraceKind::Publication {
                context: "C".into(),
                value: "1".into(),
            },
        );
        buf.record(
            9,
            TraceKind::Actuation {
                entity: "dev".into(),
                action: "go".into(),
            },
        );
        let events = buf.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, 5);
        assert!(buf.take().is_empty(), "drained");
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn buffer_is_bounded() {
        let mut buf = TraceBuffer::new();
        buf.set_enabled(true);
        buf.capacity = 3;
        for i in 0..5 {
            buf.record(
                i,
                TraceKind::ContextActivation {
                    context: format!("C{i}"),
                },
            );
        }
        assert_eq!(buf.dropped(), 2);
        let events = buf.take();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at, 2, "oldest dropped");
        assert_eq!(buf.dropped(), 0, "drain resets the drop counter");
    }

    #[test]
    fn display_forms_are_readable() {
        let samples = [
            TraceKind::Emission {
                entity: "sensor-1".into(),
                source: "v".into(),
            },
            TraceKind::PeriodicPoll {
                device: "PresenceSensor".into(),
                source: "presence".into(),
                readings: 12,
            },
            TraceKind::ContextActivation {
                context: "Alert".into(),
            },
            TraceKind::Publication {
                context: "Alert".into(),
                value: "3".into(),
            },
            TraceKind::ControllerActivation {
                controller: "Notify".into(),
                from: "Alert".into(),
            },
            TraceKind::Actuation {
                entity: "tv".into(),
                action: "askQuestion".into(),
            },
            TraceKind::Error {
                message: "boom".into(),
            },
            TraceKind::FaultInjected {
                fault: "crash altimeter-NOSE".into(),
            },
            TraceKind::LeaseExpired {
                entity: "altimeter-NOSE".into(),
            },
            TraceKind::Rebound {
                lost: "altimeter-NOSE".into(),
                replacement: "altimeter-SPARE".into(),
            },
            TraceKind::DeliveryRetry {
                to: "FlightState".into(),
                attempt: 2,
            },
            TraceKind::FallbackActuation {
                entity: "elevator-1".into(),
                action: "neutral".into(),
            },
            TraceKind::TaskFailed {
                context: "ParkingAvailability".into(),
                phase: "map".into(),
                task: 3,
                attempts: 4,
            },
            TraceKind::BatchDegraded {
                context: "ParkingAvailability".into(),
                coverage_pct: 66,
                threshold_pct: 80,
                failed_tasks: 1,
            },
        ];
        for kind in samples {
            let event = TraceEvent { at: 1500, kind };
            let text = event.to_string();
            assert!(text.contains("1500"), "{text}");
            assert!(text.len() > 15);
        }
    }

    #[test]
    fn trace_events_serialize() {
        let event = TraceEvent {
            at: 10,
            kind: TraceKind::Actuation {
                entity: "e".into(),
                action: "a".into(),
            },
        };
        let json = serde_json::to_string(&event).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(event, back);
    }
}

//! Observability: activity-labeled metrics, latency histograms, and a
//! pluggable observer/export layer.
//!
//! The paper organizes IoT orchestration into four activities — *binding
//! entities*, *delivering data*, *processing data*, and *actuating
//! entities* (§IV). Where [`crate::metrics::RuntimeMetrics`] counts
//! orchestration events globally, this module attributes **durations** to
//! those activities, labeled by the component or device family
//! involved:
//!
//! - [`Activity`] names the four paper activities, plus *recovering* —
//!   the cost of the §VI error-handling extension (lease expiry to
//!   rebind, retry backoff, fallback actuation; see [`crate::fault`]);
//! - [`LatencyHistogram`] is a zero-dependency log-bucketed histogram
//!   (mergeable, with p50/p90/p99/max readouts);
//! - [`Observer`] is the pluggable sink interface: attached observers
//!   receive every [`TraceEvent`] as it happens plus on-demand
//!   [`ObsSnapshot`]s — [`BufferSink`] keeps a bounded in-memory window,
//!   [`JsonlSink`] streams JSON Lines to any writer, and
//!   [`render_prometheus`] renders a snapshot in the Prometheus text
//!   exposition style;
//! - [`ObsHub`] ties it together inside the
//!   [`Orchestrator`](crate::engine::Orchestrator).
//!
//! Delivery durations are *simulation* milliseconds (transport latency);
//! binding, processing, and actuation durations are *wall-clock*
//! microseconds (simulation time does not advance while component logic
//! runs). Each activity snapshot carries its unit.
//!
//! Everything is **off by default**: with observability disabled and no
//! observers attached, the engine's hot path pays a single branch per
//! candidate record site (see the `obs` benchmark in `diaspec-bench`).

use crate::clock::SimTime;
use crate::spans::{SpanEvent, SpanStage, SpanTracer};
use crate::trace::TraceEvent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

// ---- activities -----------------------------------------------------------

/// The four orchestration activities of the paper (§IV), plus recovery
/// (the §VI error-handling extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Binding entities: attribute-based discovery and registration.
    Binding,
    /// Delivering data: a value crossing the (simulated) network.
    Delivering,
    /// Processing data: component logic, windows, MapReduce phases.
    Processing,
    /// Actuating entities: invoking a declared device action.
    Actuating,
    /// Recovering from injected faults: lease expiry to rebind, delivery
    /// retry backoff, fallback actuations, and map/reduce task
    /// re-execution time (see [`crate::fault`]).
    Recovering,
}

impl Activity {
    /// All activities: the paper's four in paper order, then recovery.
    pub const ALL: [Activity; 5] = [
        Activity::Binding,
        Activity::Delivering,
        Activity::Processing,
        Activity::Actuating,
        Activity::Recovering,
    ];

    /// Stable lower-case label (used in exports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Activity::Binding => "binding",
            Activity::Delivering => "delivering",
            Activity::Processing => "processing",
            Activity::Actuating => "actuating",
            Activity::Recovering => "recovering",
        }
    }

    /// Unit of the durations recorded under this activity.
    ///
    /// Delivery and recovery are measured on the simulation clock
    /// (milliseconds — recovery cost is dominated by backoff delays and
    /// lease timeouts, which are simulated time); the other three do not
    /// advance simulated time, so they are measured on the wall clock
    /// (microseconds).
    #[must_use]
    pub fn unit(self) -> &'static str {
        match self {
            Activity::Delivering | Activity::Recovering => "ms",
            _ => "us",
        }
    }

    /// Dense index in `0..5`, for array-backed storage.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Activity::Binding => 0,
            Activity::Delivering => 1,
            Activity::Processing => 2,
            Activity::Actuating => 3,
            Activity::Recovering => 4,
        }
    }
}

/// Wall-clock microseconds elapsed since `start`, saturated to `u64`.
#[must_use]
pub fn elapsed_us(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

// ---- histogram ------------------------------------------------------------

/// Values below this resolve to exact single-value buckets.
const LINEAR_LIMIT: u64 = 16;
/// Sub-buckets per power of two above the linear region (3 mantissa bits:
/// relative quantization error is at most 1/8).
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: 16 exact buckets + 8 per power of two for
/// exponents 4..=63.
const BUCKETS: usize = LINEAR_LIMIT as usize + (63 - 3) * SUB;

/// A log-bucketed latency histogram.
///
/// Values up to 15 land in exact buckets; larger values are bucketed
/// log-linearly (8 sub-buckets per power of two, ≤ 12.5% relative
/// error). Recording is O(1) with no allocation; histograms merge
/// exactly (merging two histograms yields the same buckets as recording
/// the union of their streams).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value.
    fn bucket_of(value: u64) -> usize {
        if value < LINEAR_LIMIT {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros(); // >= 4
        let sub = ((value >> (exp - SUB_BITS)) as usize) & (SUB - 1);
        LINEAR_LIMIT as usize + (exp as usize - 4) * SUB + sub
    }

    /// Smallest value that maps to bucket `i`.
    fn bucket_lower(i: usize) -> u64 {
        if i < LINEAR_LIMIT as usize {
            return i as u64;
        }
        let j = i - LINEAR_LIMIT as usize;
        let exp = 4 + (j / SUB) as u32;
        let sub = (j % SUB) as u64;
        (SUB as u64 + sub) << (exp - SUB_BITS)
    }

    /// Largest value that maps to bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i + 1 >= BUCKETS {
            u64::MAX
        } else {
            Self::bucket_lower(i + 1) - 1
        }
    }

    /// Records one duration.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded durations (saturated to `u64`).
    #[must_use]
    pub fn sum(&self) -> u64 {
        u64::try_from(self.sum).unwrap_or(u64::MAX)
    }

    /// Smallest recorded duration (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded duration (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded duration (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) of the recorded
    /// durations, up to bucket resolution. Exact for values below 16 and
    /// for the extremes: `quantile(0.0)` and `quantile(1.0)` never fall
    /// outside `[min, max]`. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one. Equivalent to having
    /// recorded both underlying streams into a single histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A serializable summary (count, sum, extremes, mean,
    /// p50/p90/p99/p99.9).
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }

    /// Cumulative bucket counts in Prometheus histogram style: one
    /// `(le, cumulative count)` pair per occupied bucket, ordered by
    /// bucket upper bound. The final unbounded bucket is omitted — its
    /// samples are only reachable through the implicit `+Inf` bucket
    /// (whose cumulative count is [`LatencyHistogram::count`]).
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<BucketCount> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if c == 0 {
                continue;
            }
            let le = Self::bucket_upper(i);
            if le == u64::MAX {
                continue;
            }
            out.push(BucketCount {
                le,
                count: cumulative,
            });
        }
        out
    }
}

/// One cumulative histogram bucket: the number of samples `<= le`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket, in the histogram's unit.
    pub le: u64,
    /// Cumulative sample count at or below `le`.
    pub count: u64,
}

/// Serializable summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations.
    pub sum: u64,
    /// Smallest recorded duration.
    pub min: u64,
    /// Largest recorded duration.
    pub max: u64,
    /// Mean recorded duration.
    pub mean: f64,
    /// Median (up to bucket resolution).
    pub p50: u64,
    /// 90th percentile (up to bucket resolution).
    pub p90: u64,
    /// 99th percentile (up to bucket resolution).
    pub p99: u64,
    /// 99.9th percentile (up to bucket resolution).
    #[serde(default)]
    pub p999: u64,
}

// ---- snapshots ------------------------------------------------------------

/// Point-in-time export of everything the hub has measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Simulation time of the snapshot, in milliseconds.
    pub at: SimTime,
    /// One entry per [`Activity`], in [`Activity::ALL`] order.
    pub activities: Vec<ActivitySnapshot>,
    /// Per-pipeline-stage latency breakdowns from causal span tracing,
    /// one entry per [`SpanStage`], in [`SpanStage::ALL`] order. Empty
    /// when span tracing never ran.
    #[serde(default)]
    pub stages: Vec<StageSnapshot>,
    /// Queue-depth / occupancy gauges sampled at snapshot time (filled
    /// by the orchestrator; see `Orchestrator::observation`).
    #[serde(default)]
    pub gauges: Vec<GaugeSample>,
    /// Per-peer transport link counters, one entry per deployment link
    /// (filled by coordinators from
    /// [`Transport::stats`](crate::transport::Transport::stats); empty
    /// for single-process runs that never sampled a link).
    #[serde(default)]
    pub transports: Vec<TransportSample>,
}

impl ObsSnapshot {
    /// The snapshot of one activity, by its label.
    #[must_use]
    pub fn activity(&self, activity: Activity) -> Option<&ActivitySnapshot> {
        self.activities
            .iter()
            .find(|a| a.activity == activity.label())
    }

    /// The breakdown of one pipeline stage, by its label.
    #[must_use]
    pub fn stage(&self, stage: SpanStage) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.stage == stage.label())
    }

    /// The value of one gauge, by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The counters of one transport link, by peer name.
    #[must_use]
    pub fn transport(&self, peer: &str) -> Option<&TransportSample> {
        self.transports.iter().find(|t| t.peer == peer)
    }
}

/// Measurements attributed to one activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivitySnapshot {
    /// Activity label (`binding`, `delivering`, `processing`,
    /// `actuating`, `recovering`).
    pub activity: String,
    /// Unit of the recorded durations (`ms` simulated or `us` wall).
    pub unit: String,
    /// Latency distribution of the activity.
    pub latency: HistogramSummary,
    /// Operation counts per component / device-family label.
    pub labels: BTreeMap<String, u64>,
    /// Cumulative latency buckets (occupied buckets only; the unbounded
    /// tail is implicit in `latency.count`).
    #[serde(default)]
    pub buckets: Vec<BucketCount>,
}

/// Latency breakdown of one pipeline stage, measured by span tracing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage label (`admit`, `route`, `schedule`, `dispatch`, `compute`,
    /// `actuate`, `retry`, `recover`, `ingest`).
    pub stage: String,
    /// Unit of the recorded durations (`ms` simulated or `us` wall).
    pub unit: String,
    /// Latency distribution of the stage.
    pub latency: HistogramSummary,
    /// Cumulative latency buckets (occupied buckets only).
    #[serde(default)]
    pub buckets: Vec<BucketCount>,
}

/// One occupancy gauge, sampled at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Gauge name (e.g. `queue_depth`, `inflight_deliveries`,
    /// `error_buffer_fill`).
    pub name: String,
    /// Sampled value.
    pub value: u64,
}

/// Counters of one transport link, sampled at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportSample {
    /// Peer node name (e.g. `edge0`).
    pub peer: String,
    /// Backend name (`in-process` or `tcp`).
    pub backend: String,
    /// Payload-frame bytes written to the peer.
    pub bytes_sent: u64,
    /// Payload-frame bytes read from the peer.
    pub bytes_received: u64,
    /// Envelopes written to the peer.
    pub frames_sent: u64,
    /// Envelopes read from the peer.
    pub frames_received: u64,
    /// Times the link was re-established after a failure.
    pub reconnects: u64,
}

impl TransportSample {
    /// Labels one link's [`TransportStats`](crate::transport::TransportStats)
    /// readout with its peer and backend names.
    #[must_use]
    pub fn from_stats(peer: &str, backend: &str, stats: &crate::transport::TransportStats) -> Self {
        TransportSample {
            peer: peer.to_owned(),
            backend: backend.to_owned(),
            bytes_sent: stats.bytes_sent,
            bytes_received: stats.bytes_received,
            frames_sent: stats.frames_sent,
            frames_received: stats.frames_received,
            reconnects: stats.reconnects,
        }
    }
}

// ---- observers ------------------------------------------------------------

/// A pluggable observability sink.
///
/// Attached to an [`Orchestrator`](crate::engine::Orchestrator) via
/// [`attach_observer`](crate::engine::Orchestrator::attach_observer), an
/// observer is streamed every [`TraceEvent`] the engine produces
/// (regardless of whether the bounded internal trace buffer is enabled)
/// and receives an [`ObsSnapshot`] whenever one is published.
pub trait Observer {
    /// Called for each orchestration-level trace event, as it happens.
    fn on_event(&mut self, _event: &TraceEvent) {}

    /// Called for each completed causal span, as it closes. Only fires
    /// while span tracing is enabled (see
    /// `Orchestrator::set_span_tracing`).
    fn on_span(&mut self, _span: &SpanEvent) {}

    /// Called when a metrics snapshot is published.
    fn on_snapshot(&mut self, _snapshot: &ObsSnapshot) {}
}

/// A bounded in-memory sink: the observer counterpart of the engine's
/// internal trace buffer. Oldest events are dropped past the capacity;
/// the drop counter resets when the buffer is drained.
#[derive(Debug)]
pub struct BufferSink {
    events: std::collections::VecDeque<TraceEvent>,
    spans: std::collections::VecDeque<SpanEvent>,
    snapshots: Vec<ObsSnapshot>,
    capacity: usize,
    dropped: u64,
    spans_dropped: u64,
}

impl BufferSink {
    /// Creates a sink holding at most `capacity` events (and, likewise,
    /// at most `capacity` spans).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BufferSink {
            events: std::collections::VecDeque::new(),
            spans: std::collections::VecDeque::new(),
            snapshots: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
            spans_dropped: 0,
        }
    }

    /// Drains the buffered events, resetting the drop counter.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.dropped = 0;
        self.events.drain(..).collect()
    }

    /// Drains the buffered spans, resetting the span drop counter.
    pub fn take_spans(&mut self) -> Vec<SpanEvent> {
        self.spans_dropped = 0;
        self.spans.drain(..).collect()
    }

    /// Drains the buffered snapshots.
    pub fn take_snapshots(&mut self) -> Vec<ObsSnapshot> {
        std::mem::take(&mut self.snapshots)
    }

    /// Events dropped since the last [`BufferSink::take`].
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans dropped since the last [`BufferSink::take_spans`].
    #[must_use]
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }
}

impl Observer for BufferSink {
    fn on_event(&mut self, event: &TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
    }

    fn on_span(&mut self, span: &SpanEvent) {
        if self.spans.len() >= self.capacity {
            self.spans.pop_front();
            self.spans_dropped += 1;
        }
        self.spans.push_back(span.clone());
    }

    fn on_snapshot(&mut self, snapshot: &ObsSnapshot) {
        self.snapshots.push(snapshot.clone());
    }
}

/// A JSON Lines sink: one JSON object per line, `{"trace": ...}` for
/// events and `{"snapshot": ...}` for snapshots.
///
/// Write errors do not disturb the orchestration; they are counted and
/// reported by [`JsonlSink::write_errors`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: u64,
    write_errors: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            lines: 0,
            write_errors: 0,
        }
    }

    /// Lines successfully written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Failed writes so far.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the writer's flush error.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Unwraps the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    /// Read access to the underlying writer (e.g. to inspect an
    /// in-memory buffer through a [`SharedSink`]).
    pub fn writer(&self) -> &W {
        &self.writer
    }

    fn write_line(&mut self, line: &str) {
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.lines += 1,
            Err(_) => self.write_errors += 1,
        }
    }
}

impl<W: Write> Observer for JsonlSink<W> {
    fn on_event(&mut self, event: &TraceEvent) {
        if let Ok(json) = serde_json::to_string(event) {
            self.write_line(&format!("{{\"trace\":{json}}}"));
        }
    }

    fn on_span(&mut self, span: &SpanEvent) {
        if let Ok(json) = serde_json::to_string(span) {
            self.write_line(&format!("{{\"span\":{json}}}"));
        }
    }

    fn on_snapshot(&mut self, snapshot: &ObsSnapshot) {
        if let Ok(json) = serde_json::to_string(snapshot) {
            self.write_line(&format!("{{\"snapshot\":{json}}}"));
        }
        let _ = self.flush();
    }
}

/// A cloneable handle that shares one sink between the orchestrator and
/// the caller: attach a clone, keep the original to inspect the sink
/// after (or during) the run.
#[derive(Debug)]
pub struct SharedSink<S>(Arc<Mutex<S>>);

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink(Arc::clone(&self.0))
    }
}

impl<S> SharedSink<S> {
    /// Wraps a sink in a shared handle.
    pub fn new(sink: S) -> Self {
        SharedSink(Arc::new(Mutex::new(sink)))
    }

    /// Runs `f` with exclusive access to the sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let mut guard = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }
}

impl<S: Observer> Observer for SharedSink<S> {
    fn on_event(&mut self, event: &TraceEvent) {
        self.with(|s| s.on_event(event));
    }

    fn on_span(&mut self, span: &SpanEvent) {
        self.with(|s| s.on_span(span));
    }

    fn on_snapshot(&mut self, snapshot: &ObsSnapshot) {
        self.with(|s| s.on_snapshot(snapshot));
    }
}

// ---- Prometheus text exposition -------------------------------------------

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote, and line feed.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Appends a Prometheus `histogram`-typed family (`_bucket`/`_sum`/
/// `_count` lines) for one latency distribution.
fn render_histogram_family(
    out: &mut String,
    family: &str,
    base: &str,
    latency: &HistogramSummary,
    buckets: &[BucketCount],
) {
    for bucket in buckets {
        out.push_str(&format!(
            "{family}_bucket{{{base},le=\"{}\"}} {}\n",
            bucket.le, bucket.count
        ));
    }
    out.push_str(&format!(
        "{family}_bucket{{{base},le=\"+Inf\"}} {}\n",
        latency.count
    ));
    out.push_str(&format!("{family}_sum{{{base}}} {}\n", latency.sum));
    out.push_str(&format!("{family}_count{{{base}}} {}\n", latency.count));
}

/// Renders a snapshot in the Prometheus text exposition style:
///
/// - `diaspec_activity_operations_total` — counter per activity/label
///   pair;
/// - `diaspec_activity_latency` — summary (p50/p90/p99/p99.9 + sum +
///   count) per activity;
/// - `diaspec_activity_latency_hist` — full cumulative histogram
///   (`_bucket{le=...}`/`_sum`/`_count`) per activity;
/// - `diaspec_stage_latency` / `diaspec_stage_latency_hist` — the same
///   pair per causal-tracing pipeline stage, when spans were recorded;
/// - `diaspec_transport_bytes_sent_total` /
///   `diaspec_transport_bytes_received_total` /
///   `diaspec_transport_frames_sent_total` /
///   `diaspec_transport_frames_received_total` /
///   `diaspec_transport_reconnects_total` — per-peer link counters, when
///   the snapshot carries transport samples;
/// - one `diaspec_<name>` gauge per occupancy sample in the snapshot.
#[must_use]
pub fn render_prometheus(snapshot: &ObsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(
        "# HELP diaspec_activity_operations_total Operations observed per activity and component.\n",
    );
    out.push_str("# TYPE diaspec_activity_operations_total counter\n");
    for act in &snapshot.activities {
        for (label, count) in &act.labels {
            out.push_str(&format!(
                "diaspec_activity_operations_total{{activity=\"{}\",component=\"{}\"}} {}\n",
                act.activity,
                escape_label(label),
                count
            ));
        }
    }
    out.push_str(
        "# HELP diaspec_activity_latency Duration distribution per activity (ms simulated for delivering, us wall otherwise).\n",
    );
    out.push_str("# TYPE diaspec_activity_latency summary\n");
    for act in &snapshot.activities {
        let base = format!("activity=\"{}\",unit=\"{}\"", act.activity, act.unit);
        for (q, v) in [
            ("0.5", act.latency.p50),
            ("0.9", act.latency.p90),
            ("0.99", act.latency.p99),
            ("0.999", act.latency.p999),
        ] {
            out.push_str(&format!(
                "diaspec_activity_latency{{{base},quantile=\"{q}\"}} {v}\n"
            ));
        }
        out.push_str(&format!(
            "diaspec_activity_latency_sum{{{base}}} {}\n",
            act.latency.sum
        ));
        out.push_str(&format!(
            "diaspec_activity_latency_count{{{base}}} {}\n",
            act.latency.count
        ));
    }
    out.push_str(
        "# HELP diaspec_activity_latency_hist Cumulative duration histogram per activity.\n",
    );
    out.push_str("# TYPE diaspec_activity_latency_hist histogram\n");
    for act in &snapshot.activities {
        let base = format!("activity=\"{}\",unit=\"{}\"", act.activity, act.unit);
        render_histogram_family(
            &mut out,
            "diaspec_activity_latency_hist",
            &base,
            &act.latency,
            &act.buckets,
        );
    }
    if !snapshot.stages.is_empty() {
        out.push_str(
            "# HELP diaspec_stage_latency Per-pipeline-stage duration from causal span tracing.\n",
        );
        out.push_str("# TYPE diaspec_stage_latency summary\n");
        for stage in &snapshot.stages {
            let base = format!("stage=\"{}\",unit=\"{}\"", stage.stage, stage.unit);
            for (q, v) in [
                ("0.5", stage.latency.p50),
                ("0.9", stage.latency.p90),
                ("0.99", stage.latency.p99),
                ("0.999", stage.latency.p999),
            ] {
                out.push_str(&format!(
                    "diaspec_stage_latency{{{base},quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!(
                "diaspec_stage_latency_sum{{{base}}} {}\n",
                stage.latency.sum
            ));
            out.push_str(&format!(
                "diaspec_stage_latency_count{{{base}}} {}\n",
                stage.latency.count
            ));
        }
        out.push_str(
            "# HELP diaspec_stage_latency_hist Cumulative duration histogram per pipeline stage.\n",
        );
        out.push_str("# TYPE diaspec_stage_latency_hist histogram\n");
        for stage in &snapshot.stages {
            let base = format!("stage=\"{}\",unit=\"{}\"", stage.stage, stage.unit);
            render_histogram_family(
                &mut out,
                "diaspec_stage_latency_hist",
                &base,
                &stage.latency,
                &stage.buckets,
            );
        }
    }
    if !snapshot.transports.is_empty() {
        type CounterOf = fn(&TransportSample) -> u64;
        let families: [(&str, &str, CounterOf); 5] = [
            (
                "diaspec_transport_bytes_sent_total",
                "Payload-frame bytes written per transport link.",
                |t| t.bytes_sent,
            ),
            (
                "diaspec_transport_bytes_received_total",
                "Payload-frame bytes read per transport link.",
                |t| t.bytes_received,
            ),
            (
                "diaspec_transport_frames_sent_total",
                "Envelopes written per transport link.",
                |t| t.frames_sent,
            ),
            (
                "diaspec_transport_frames_received_total",
                "Envelopes read per transport link.",
                |t| t.frames_received,
            ),
            (
                "diaspec_transport_reconnects_total",
                "Times a transport link was re-established after a failure.",
                |t| t.reconnects,
            ),
        ];
        for (family, help, value) in families {
            out.push_str(&format!("# HELP {family} {help}\n"));
            out.push_str(&format!("# TYPE {family} counter\n"));
            for t in &snapshot.transports {
                out.push_str(&format!(
                    "{family}{{peer=\"{}\",backend=\"{}\"}} {}\n",
                    escape_label(&t.peer),
                    escape_label(&t.backend),
                    value(t)
                ));
            }
        }
    }
    for gauge in &snapshot.gauges {
        let name = format!("diaspec_{}", gauge.name);
        out.push_str(&format!(
            "# HELP {name} Occupancy gauge sampled at snapshot time.\n"
        ));
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("{name} {}\n", gauge.value));
    }
    out
}

// ---- the hub --------------------------------------------------------------

struct ActivityStats {
    hist: LatencyHistogram,
    labels: BTreeMap<String, u64>,
}

impl ActivityStats {
    fn new() -> Self {
        ActivityStats {
            hist: LatencyHistogram::new(),
            labels: BTreeMap::new(),
        }
    }
}

/// The engine-side aggregation point: per-activity histograms, labeled
/// operation counters, and the list of attached [`Observer`]s.
///
/// Duration recording is off by default ([`ObsHub::set_enabled`]); trace
/// events flow to observers whenever any are attached.
pub struct ObsHub {
    enabled: bool,
    activities: [ActivityStats; 5],
    observers: Vec<Box<dyn Observer>>,
    spans: SpanTracer,
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHub")
            .field("enabled", &self.enabled)
            .field("observers", &self.observers.len())
            .field("spans_enabled", &self.spans.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Default for ObsHub {
    fn default() -> Self {
        ObsHub::new()
    }
}

impl ObsHub {
    /// Creates a hub with recording disabled and no observers.
    #[must_use]
    pub fn new() -> Self {
        ObsHub {
            enabled: false,
            activities: [
                ActivityStats::new(),
                ActivityStats::new(),
                ActivityStats::new(),
                ActivityStats::new(),
                ActivityStats::new(),
            ],
            observers: Vec::new(),
            spans: SpanTracer::new(),
        }
    }

    /// Enables or disables duration recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether duration recording is on. This is the only check on the
    /// disabled hot path.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attaches an observer sink.
    pub fn attach(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    /// Whether any observer is attached.
    #[must_use]
    pub fn has_observers(&self) -> bool {
        !self.observers.is_empty()
    }

    /// Records one duration under `activity`, labeled with the component
    /// or device-family name. No-op while disabled.
    pub fn record(&mut self, activity: Activity, label: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let stats = &mut self.activities[activity.index()];
        stats.hist.record(value);
        match stats.labels.get_mut(label) {
            Some(count) => *count += 1,
            None => {
                stats.labels.insert(label.to_owned(), 1);
            }
        }
    }

    /// Read access to one activity's histogram.
    #[must_use]
    pub fn histogram(&self, activity: Activity) -> &LatencyHistogram {
        &self.activities[activity.index()].hist
    }

    /// Streams a trace event to every attached observer.
    pub fn broadcast(&mut self, event: &TraceEvent) {
        for observer in &mut self.observers {
            observer.on_event(event);
        }
    }

    // ---- causal spans ----

    /// Enables or disables causal span tracing (implies span buffering
    /// when enabling).
    pub fn set_spans_enabled(&mut self, enabled: bool) {
        self.spans.set_enabled(enabled);
    }

    /// Whether span tracing is on. This is the only check on the
    /// disabled span hot path.
    #[must_use]
    pub fn spans_enabled(&self) -> bool {
        self.spans.is_enabled()
    }

    /// Turns the in-memory completed-span buffer on or off independently
    /// of span tracing itself. With buffering off and no observers
    /// attached, spans are not materialized at all — only IDs are minted
    /// and the per-stage histograms updated (the load-harness
    /// configuration).
    pub fn set_span_buffering(&mut self, buffering: bool) {
        self.spans.set_buffering(buffering);
    }

    /// Whether closed spans need a materialized [`SpanEvent`] (buffered
    /// or streamed to an observer) — callers use this to skip building
    /// label strings.
    #[must_use]
    pub fn spans_materializing(&self) -> bool {
        self.spans.is_buffering() || !self.observers.is_empty()
    }

    /// Mints a fresh trace ID (flows start at 1).
    pub fn mint_trace(&mut self) -> u64 {
        self.spans.mint_trace()
    }

    /// Opens a span and returns its ID. `label` is only retained when
    /// [`ObsHub::spans_materializing`] — pass `""` otherwise.
    pub fn open_span(
        &mut self,
        trace_id: u64,
        parent: u64,
        stage: SpanStage,
        label: &str,
        begin_ms: SimTime,
    ) -> u64 {
        let materialize = self.spans_materializing();
        self.spans
            .open(trace_id, parent, stage, label, begin_ms, materialize)
    }

    /// Closes an open span: records the stage histogram and, when
    /// materializing, buffers the completed span and streams it to every
    /// attached observer.
    pub fn close_span(&mut self, span_id: u64, end_ms: SimTime, wall_us: u64) {
        if let Some(event) = self.spans.close(span_id, end_ms, wall_us) {
            for observer in &mut self.observers {
                observer.on_span(&event);
            }
        }
    }

    /// Opens and immediately closes a span covering `[begin_ms, end_ms]`
    /// in simulated time (the shape of transport-side spans, whose
    /// extent is known up front). Returns the span's ID.
    pub fn record_span(
        &mut self,
        trace_id: u64,
        parent: u64,
        stage: SpanStage,
        label: &str,
        begin_ms: SimTime,
        end_ms: SimTime,
    ) -> u64 {
        let span_id = self.open_span(trace_id, parent, stage, label, begin_ms);
        self.close_span(span_id, end_ms, 0);
        span_id
    }

    /// Drains the completed-span buffer, resetting its drop counter.
    pub fn take_spans(&mut self) -> Vec<SpanEvent> {
        self.spans.take()
    }

    /// Spans dropped from the bounded buffer since the last drain.
    #[must_use]
    pub fn spans_dropped(&self) -> u64 {
        self.spans.dropped()
    }

    /// Number of currently open (unclosed) spans.
    #[must_use]
    pub fn open_span_count(&self) -> usize {
        self.spans.open_count()
    }

    /// Read access to one pipeline stage's latency histogram.
    #[must_use]
    pub fn stage_histogram(&self, stage: SpanStage) -> &LatencyHistogram {
        self.spans.stage_histogram(stage)
    }

    // ---- snapshots ----

    /// Builds a snapshot of everything recorded so far. Stage breakdowns
    /// are included once span tracing has ever been enabled; gauges are
    /// filled in by the orchestrator, which owns the queues being
    /// sampled.
    #[must_use]
    pub fn snapshot(&self, at: SimTime) -> ObsSnapshot {
        let include_stages = self.spans.is_enabled()
            || SpanStage::ALL
                .iter()
                .any(|&s| !self.spans.stage_histogram(s).is_empty());
        ObsSnapshot {
            at,
            activities: Activity::ALL
                .iter()
                .map(|&activity| {
                    let stats = &self.activities[activity.index()];
                    ActivitySnapshot {
                        activity: activity.label().to_owned(),
                        unit: activity.unit().to_owned(),
                        latency: stats.hist.summary(),
                        labels: stats.labels.clone(),
                        buckets: stats.hist.cumulative_buckets(),
                    }
                })
                .collect(),
            stages: if include_stages {
                SpanStage::ALL
                    .iter()
                    .map(|&stage| {
                        let hist = self.spans.stage_histogram(stage);
                        StageSnapshot {
                            stage: stage.label().to_owned(),
                            unit: stage.unit().to_owned(),
                            latency: hist.summary(),
                            buckets: hist.cumulative_buckets(),
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            },
            gauges: Vec::new(),
            transports: Vec::new(),
        }
    }

    /// Builds a snapshot and pushes it to every attached observer.
    pub fn publish(&mut self, at: SimTime) -> ObsSnapshot {
        let snapshot = self.snapshot(at);
        self.publish_snapshot(&snapshot);
        snapshot
    }

    /// Pushes an already-built snapshot (e.g. one augmented with gauges)
    /// to every attached observer.
    pub fn publish_snapshot(&mut self, snapshot: &ObsSnapshot) {
        for observer in &mut self.observers {
            observer.on_snapshot(snapshot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;

    #[test]
    fn small_values_have_exact_buckets() {
        let mut h = LatencyHistogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        // Below LINEAR_LIMIT every value is its own bucket, so quantiles
        // are exact.
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // The lower bound of every bucket maps back to that bucket, and
        // so does its upper bound.
        for i in 0..BUCKETS {
            let lo = LatencyHistogram::bucket_lower(i);
            assert_eq!(LatencyHistogram::bucket_of(lo), i, "lower of bucket {i}");
            let hi = LatencyHistogram::bucket_upper(i);
            assert_eq!(LatencyHistogram::bucket_of(hi), i, "upper of bucket {i}");
        }
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        h.record(1000);
        let q = h.quantile(0.5);
        // One sample: any quantile must return a value within bucket
        // resolution (12.5%) of it — and clamping makes it exact here.
        assert_eq!(q, 1000);
        h.record(2000);
        let p99 = h.quantile(0.99);
        assert!(p99 <= 2000 && p99 as f64 >= 2000.0 * 0.875, "{p99}");
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut state = 0x1234_5678_u64;
        for _ in 0..1000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(state >> 40);
        }
        let mut prev = 0;
        for i in 0..=100 {
            let q = h.quantile(f64::from(i) / 100.0);
            assert!(q >= prev, "quantile regressed at {i}%: {q} < {prev}");
            prev = q;
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for v in [0u64, 3, 17, 999, 1_000_000] {
            a.record(v);
            union.record(v);
        }
        for v in [5u64, 17, 40_000] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 0);
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let mut hub = ObsHub::new();
        hub.record(Activity::Delivering, "Ctx", 5);
        assert!(hub.histogram(Activity::Delivering).is_empty());
        hub.set_enabled(true);
        hub.record(Activity::Delivering, "Ctx", 5);
        hub.record(Activity::Delivering, "Ctx", 7);
        let snap = hub.snapshot(42);
        let delivering = snap.activity(Activity::Delivering).unwrap();
        assert_eq!(delivering.latency.count, 2);
        assert_eq!(delivering.labels["Ctx"], 2);
        assert_eq!(delivering.unit, "ms");
        assert_eq!(snap.at, 42);
    }

    #[test]
    fn buffer_sink_is_bounded_and_resets_dropped_on_take() {
        let mut sink = BufferSink::new(2);
        for at in 0..5 {
            sink.on_event(&TraceEvent {
                at,
                kind: TraceKind::ContextActivation {
                    context: "C".into(),
                },
            });
        }
        assert_eq!(sink.dropped(), 3);
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, 3, "oldest dropped");
        assert_eq!(sink.dropped(), 0, "drained buffers start a fresh window");
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_event(&TraceEvent {
            at: 7,
            kind: TraceKind::Actuation {
                entity: "tv".into(),
                action: "on".into(),
            },
        });
        let mut hub = ObsHub::new();
        hub.set_enabled(true);
        hub.record(Activity::Actuating, "Tv.on", 12);
        sink.on_snapshot(&hub.snapshot(9));
        assert_eq!(sink.lines(), 2);
        assert_eq!(sink.write_errors(), 0);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let trace: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert!(!trace["trace"].is_null());
        let snap: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(snap["snapshot"]["at"].as_u64(), Some(9));
    }

    #[test]
    fn shared_sink_exposes_contents_after_attachment() {
        let shared = SharedSink::new(BufferSink::new(10));
        let mut hub = ObsHub::new();
        hub.attach(Box::new(shared.clone()));
        assert!(hub.has_observers());
        hub.broadcast(&TraceEvent {
            at: 1,
            kind: TraceKind::Error {
                message: "x".into(),
            },
        });
        assert_eq!(shared.with(|s| s.take().len()), 1);
    }

    #[test]
    fn prometheus_rendering_has_counters_and_summaries() {
        let mut hub = ObsHub::new();
        hub.set_enabled(true);
        hub.record(Activity::Delivering, "AvgTemp", 10);
        hub.record(Activity::Delivering, "AvgTemp", 30);
        hub.record(Activity::Processing, "AvgTemp", 250);
        let text = render_prometheus(&hub.snapshot(0));
        assert!(text.contains(
            "diaspec_activity_operations_total{activity=\"delivering\",component=\"AvgTemp\"} 2"
        ));
        assert!(text.contains("# TYPE diaspec_activity_latency summary"));
        assert!(
            text.contains("diaspec_activity_latency_count{activity=\"delivering\",unit=\"ms\"} 2")
        );
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let mut hub = ObsHub::new();
        hub.set_enabled(true);
        hub.record(Activity::Processing, "weird\\label\"with\nnewline", 1);
        let text = render_prometheus(&hub.snapshot(0));
        assert!(
            text.contains("component=\"weird\\\\label\\\"with\\nnewline\""),
            "{text}"
        );
        // The raw newline must not split the sample line in two.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("diaspec_"),
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn prometheus_renders_a_fully_empty_snapshot() {
        let hub = ObsHub::new();
        let text = render_prometheus(&hub.snapshot(0));
        // No counters (no labels recorded), but every activity still gets
        // a well-formed summary with zero counts.
        assert!(text.contains("# TYPE diaspec_activity_operations_total counter"));
        for activity in Activity::ALL {
            assert!(
                text.contains(&format!(
                    "diaspec_activity_latency_count{{activity=\"{}\",unit=\"{}\"}} 0",
                    activity.label(),
                    activity.unit()
                )),
                "{text}"
            );
        }
        for line in text.lines() {
            assert!(!line.trim_end().is_empty(), "blank exposition line");
        }
    }

    #[test]
    fn recovering_activity_is_exported() {
        let mut hub = ObsHub::new();
        hub.set_enabled(true);
        hub.record(Activity::Recovering, "Altimeter", 5_000);
        let snap = hub.snapshot(1);
        let rec = snap.activity(Activity::Recovering).unwrap();
        assert_eq!(rec.unit, "ms");
        assert_eq!(rec.latency.count, 1);
        assert_eq!(rec.labels["Altimeter"], 1);
        assert_eq!(snap.activities.len(), Activity::ALL.len());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut hub = ObsHub::new();
        hub.set_enabled(true);
        hub.record(Activity::Binding, "PresenceSensor", 90);
        let snap = hub.snapshot(123);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ObsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn cumulative_buckets_cover_every_sample_and_stay_cumulative() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 0, 3, 17, 17, 999, 40_000] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        let mut prev_le = 0;
        let mut prev_count = 0;
        for b in &buckets {
            assert!(b.le >= prev_le, "le must be non-decreasing");
            assert!(b.count > prev_count, "counts must be cumulative");
            prev_le = b.le;
            prev_count = b.count;
        }
        assert_eq!(
            buckets.last().unwrap().count,
            h.count(),
            "final finite bucket covers every sample here"
        );
        // The unbounded tail bucket is excluded even when occupied.
        let mut tail = LatencyHistogram::new();
        tail.record(u64::MAX);
        assert!(tail.cumulative_buckets().is_empty());
        assert_eq!(tail.count(), 1, "still visible via count / +Inf");
    }

    #[test]
    fn prometheus_renders_cumulative_histograms_and_gauges() {
        let mut hub = ObsHub::new();
        hub.set_enabled(true);
        hub.record(Activity::Delivering, "AvgTemp", 10);
        hub.record(Activity::Delivering, "AvgTemp", 3_000);
        let mut snap = hub.snapshot(0);
        snap.gauges.push(GaugeSample {
            name: "queue_depth".into(),
            value: 7,
        });
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE diaspec_activity_latency_hist histogram"));
        assert!(text.contains(
            "diaspec_activity_latency_hist_bucket{activity=\"delivering\",unit=\"ms\",le=\"10\"} 1"
        ));
        assert!(text.contains(
            "diaspec_activity_latency_hist_bucket{activity=\"delivering\",unit=\"ms\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains(
            "diaspec_activity_latency_hist_count{activity=\"delivering\",unit=\"ms\"} 2"
        ));
        assert!(text.contains("quantile=\"0.999\""));
        assert!(text.contains("# TYPE diaspec_queue_depth gauge"));
        assert!(text.contains("diaspec_queue_depth 7"));
        // No spans recorded: the stage families are absent entirely.
        assert!(!text.contains("diaspec_stage_latency"));
    }

    #[test]
    fn prometheus_renders_per_peer_transport_counters() {
        let hub = ObsHub::new();
        let mut snap = hub.snapshot(0);
        // No links sampled: the transport families are absent entirely.
        assert!(!render_prometheus(&snap).contains("diaspec_transport_"));

        let stats = crate::transport::TransportStats {
            bytes_sent: 1_234,
            bytes_received: 567,
            frames_sent: 21,
            frames_received: 20,
            reconnects: 0,
        };
        snap.transports
            .push(TransportSample::from_stats("edge0", "tcp", &stats));
        snap.transports.push(TransportSample {
            reconnects: 3,
            ..TransportSample::from_stats("edge1", "tcp", &stats)
        });
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE diaspec_transport_bytes_sent_total counter"));
        assert!(text
            .contains("diaspec_transport_bytes_sent_total{peer=\"edge0\",backend=\"tcp\"} 1234"));
        assert!(text.contains(
            "diaspec_transport_bytes_received_total{peer=\"edge0\",backend=\"tcp\"} 567"
        ));
        assert!(
            text.contains("diaspec_transport_frames_sent_total{peer=\"edge1\",backend=\"tcp\"} 21")
        );
        assert!(
            text.contains("diaspec_transport_reconnects_total{peer=\"edge0\",backend=\"tcp\"} 0")
        );
        assert!(
            text.contains("diaspec_transport_reconnects_total{peer=\"edge1\",backend=\"tcp\"} 3")
        );
        assert_eq!(snap.transport("edge1").unwrap().reconnects, 3);
        assert!(snap.transport("edge9").is_none());
        // The section survives a JSON round-trip, and old snapshots
        // without it still deserialize.
        let json = serde_json::to_string(&snap).unwrap();
        let back: ObsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.transports, snap.transports);
    }

    #[test]
    fn prometheus_renders_stage_breakdowns_when_spans_ran() {
        let mut hub = ObsHub::new();
        hub.set_spans_enabled(true);
        let trace = hub.mint_trace();
        hub.record_span(trace, 0, SpanStage::Schedule, "Ctx", 0, 40);
        let snap = hub.snapshot(40);
        assert_eq!(snap.stages.len(), SpanStage::ALL.len());
        let sched = snap.stage(SpanStage::Schedule).unwrap();
        assert_eq!(sched.latency.count, 1);
        assert_eq!(sched.unit, "ms");
        let text = render_prometheus(&snap);
        assert!(text
            .contains("diaspec_stage_latency{stage=\"schedule\",unit=\"ms\",quantile=\"0.5\"} 40"));
        assert!(text.contains(
            "diaspec_stage_latency_hist_bucket{stage=\"schedule\",unit=\"ms\",le=\"+Inf\"} 1"
        ));
    }

    #[test]
    fn hub_spans_stream_to_observers_and_buffer() {
        let shared = SharedSink::new(BufferSink::new(10));
        let mut hub = ObsHub::new();
        hub.attach(Box::new(shared.clone()));
        hub.set_spans_enabled(true);
        assert!(hub.spans_materializing());
        let trace = hub.mint_trace();
        let admit = hub.open_span(trace, 0, SpanStage::Admit, "s.v", 5);
        hub.close_span(admit, 5, 12);
        let streamed = shared.with(BufferSink::take_spans);
        assert_eq!(streamed.len(), 1);
        assert_eq!(streamed[0].label, "s.v");
        assert_eq!(streamed[0].wall_us, 12);
        let buffered = hub.take_spans();
        assert_eq!(buffered, streamed);
        assert_eq!(hub.open_span_count(), 0);
        assert_eq!(hub.stage_histogram(SpanStage::Admit).count(), 1);
    }

    #[test]
    fn hub_spans_without_buffer_or_observers_keep_histograms_only() {
        let mut hub = ObsHub::new();
        hub.set_spans_enabled(true);
        hub.set_span_buffering(false);
        assert!(!hub.spans_materializing());
        let trace = hub.mint_trace();
        let id = hub.open_span(trace, 0, SpanStage::Dispatch, "", 0);
        hub.close_span(id, 0, 99);
        assert!(hub.take_spans().is_empty());
        assert_eq!(hub.stage_histogram(SpanStage::Dispatch).count(), 1);
    }
}

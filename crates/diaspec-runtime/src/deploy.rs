//! Deployment units: running one design as several processes.
//!
//! The paper's large-scale orchestration spans a city, not a process.
//! This module is the runtime half of the deployment subsystem (the
//! compiler half — partitioning a design and emitting a node manifest —
//! lives in `diaspec-codegen`): it lets a *coordinator* node run the
//! orchestration engine unchanged while some of the design's devices
//! physically live on *edge* nodes, reached over a
//! [`Transport`] backend.
//!
//! The pieces:
//!
//! - [`Link`] — a shared, sequence-numbering handle on one transport
//!   link, cloned across every proxy that talks to the same peer;
//! - [`RemoteDeviceProxy`] — a [`DeviceInstance`] whose `query`/`invoke`
//!   cross the link as [`Envelope`]s, so the engine binds and polls a
//!   remote device exactly like a local one (and lease renewal,
//!   expiry, and standby promotion apply unchanged when the remote
//!   node stops answering);
//! - [`EdgeRuntime`] — the edge side: owns the node's device drivers
//!   and environment-stepping hooks and answers envelopes, either over
//!   a real socket ([`serve_edge`]) or as an in-process handler on the
//!   simulated backend (which is how deployment wiring is unit-tested
//!   without opening sockets);
//! - [`TickPump`] — a coordinator-side [`Process`] that forwards sim
//!   time to edge environments at a fixed cadence, keeping the whole
//!   distributed run a single discrete-event simulation driven by the
//!   coordinator's clock.

use crate::clock::SimTime;
use crate::engine::ProcessApi;
use crate::entity::DeviceInstance;
use crate::error::DeviceError;
use crate::process::Process;
use crate::transport::{Envelope, MessageKind, Transport, TransportError, TransportStats};
use crate::value::Value;
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared handle on one transport link.
///
/// Every proxy bound to devices on the same peer clones one `Arc<Link>`;
/// the link serializes exchanges (one request/reply in flight per peer)
/// and assigns monotonically increasing sequence numbers.
pub struct Link {
    transport: Mutex<Box<dyn Transport>>,
    seq: AtomicU64,
}

impl Link {
    /// Wraps a transport backend in a shared link.
    #[must_use]
    pub fn new(transport: impl Transport + 'static) -> Arc<Link> {
        Arc::new(Link {
            transport: Mutex::new(Box::new(transport)),
            seq: AtomicU64::new(0),
        })
    }

    /// The next sequence number for a request on this link.
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Sends one request envelope (built by `make` from the assigned
    /// sequence number) and returns the reply.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`TransportError`].
    pub fn request(&self, make: impl FnOnce(u64) -> Envelope) -> Result<Envelope, TransportError> {
        let envelope = make(self.next_seq());
        self.transport
            .lock()
            .expect("transport lock poisoned")
            .exchange(&envelope)
    }

    /// The backend's byte/frame/reconnect counters.
    #[must_use]
    pub fn stats(&self) -> TransportStats {
        self.transport
            .lock()
            .expect("transport lock poisoned")
            .stats()
    }

    /// The peer label of the underlying backend.
    #[must_use]
    pub fn peer(&self) -> String {
        self.transport
            .lock()
            .expect("transport lock poisoned")
            .peer()
            .to_string()
    }

    /// The backend name of the underlying backend (`"sim"`, `"tcp"`).
    #[must_use]
    pub fn backend(&self) -> &'static str {
        self.transport
            .lock()
            .expect("transport lock poisoned")
            .backend()
    }

    /// Sends an orderly `Bye`, ignoring failures (the peer may already
    /// be gone).
    pub fn close(&self) {
        let _ = self.request(|seq| {
            Envelope::new(
                MessageKind::Bye,
                crate::spans::SpanCtx::NONE,
                seq,
                "",
                "",
                Vec::new(),
            )
        });
    }
}

/// A device that lives on another node.
///
/// Registered with the engine like any local driver; each `query` and
/// `invoke` crosses the link as an envelope. Transport failures surface
/// as [`DeviceError`]s, so the engine's `@error` policies, lease
/// non-renewal, and standby promotion handle a dead edge node exactly
/// like a crashed local device.
pub struct RemoteDeviceProxy {
    device: String,
    link: Arc<Link>,
}

impl RemoteDeviceProxy {
    /// A proxy for `device` reached over `link`.
    #[must_use]
    pub fn new(device: impl Into<String>, link: Arc<Link>) -> Self {
        RemoteDeviceProxy {
            device: device.into(),
            link,
        }
    }
}

impl DeviceInstance for RemoteDeviceProxy {
    fn query(&mut self, source: &str, now_ms: u64) -> Result<Value, DeviceError> {
        let reply = self
            .link
            .request(|seq| {
                Envelope::query(
                    crate::spans::SpanCtx::NONE,
                    seq,
                    &self.device,
                    source,
                    now_ms,
                )
            })
            .map_err(|e| DeviceError::new(&self.device, source, e.to_string()))?;
        match reply.kind {
            MessageKind::Value => reply
                .value()
                .map_err(|e| DeviceError::new(&self.device, source, e.to_string())),
            other => Err(DeviceError::new(
                &self.device,
                source,
                format!("unexpected reply kind {other:?}"),
            )),
        }
    }

    fn invoke(&mut self, action: &str, args: &[Value], now_ms: u64) -> Result<(), DeviceError> {
        let reply = self
            .link
            .request(|seq| {
                Envelope::invoke(
                    crate::spans::SpanCtx::NONE,
                    seq,
                    &self.device,
                    action,
                    args,
                    now_ms,
                )
            })
            .map_err(|e| DeviceError::new(&self.device, action, e.to_string()))?;
        match reply.kind {
            MessageKind::Ok => Ok(()),
            other => Err(DeviceError::new(
                &self.device,
                action,
                format!("unexpected reply kind {other:?}"),
            )),
        }
    }
}

/// An environment-stepping hook run when a `Tick` arrives.
pub type TickHook = Box<dyn FnMut(SimTime) + Send>;

/// The edge side of a deployment: the node's slice of the design.
///
/// Owns local device drivers and environment hooks, and answers the
/// coordinator's envelopes. The same runtime serves a real socket
/// ([`serve_edge`]) or acts as the in-process peer of a
/// [`SimTransport`](crate::transport::SimTransport) handler — the
/// deployment wiring is identical either way.
pub struct EdgeRuntime {
    node: String,
    devices: BTreeMap<String, Box<dyn DeviceInstance>>,
    ticks: Vec<TickHook>,
    /// Sim time at (or after) which this node plays dead: requests
    /// stamped `now >= die_at` get no reply and the connection drops,
    /// so the coordinator sees the node exactly as a crashed process.
    die_at: Option<SimTime>,
    dead: bool,
    requests: u64,
}

impl EdgeRuntime {
    /// An empty runtime for the node called `node`.
    #[must_use]
    pub fn new(node: impl Into<String>) -> Self {
        EdgeRuntime {
            node: node.into(),
            devices: BTreeMap::new(),
            ticks: Vec::new(),
            die_at: None,
            dead: false,
            requests: 0,
        }
    }

    /// The node name this runtime serves.
    #[must_use]
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Adds a local device driver addressable as `name`.
    pub fn add_device(&mut self, name: impl Into<String>, device: Box<dyn DeviceInstance>) {
        self.devices.insert(name.into(), device);
    }

    /// Adds an environment hook run on every `Tick` with the
    /// coordinator's sim time.
    pub fn on_tick(&mut self, hook: impl FnMut(SimTime) + Send + 'static) {
        self.ticks.push(Box::new(hook));
    }

    /// Schedules simulated death: no request stamped at or after
    /// `die_at_ms` is answered.
    pub fn set_die_at(&mut self, die_at_ms: SimTime) {
        self.die_at = Some(die_at_ms);
    }

    /// Whether the death schedule has triggered.
    #[must_use]
    pub fn dead(&self) -> bool {
        self.dead
    }

    /// Requests answered so far.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Answers one envelope, or `None` when the node is (now) dead.
    pub fn handle(&mut self, envelope: &Envelope) -> Option<Envelope> {
        if self.dead {
            return None;
        }
        if let Some(die_at) = self.die_at {
            if envelope.now >= die_at {
                self.dead = true;
                return None;
            }
        }
        self.requests += 1;
        Some(match envelope.kind {
            MessageKind::Hello | MessageKind::Heartbeat => envelope.reply_ok(),
            MessageKind::Tick => {
                for hook in &mut self.ticks {
                    hook(envelope.now);
                }
                envelope.reply_ok()
            }
            MessageKind::Query => match self.devices.get_mut(&envelope.target) {
                Some(device) => match device.query(&envelope.member, envelope.now) {
                    Ok(value) => envelope.reply_value(&value),
                    Err(e) => envelope.reply_error(&e.to_string()),
                },
                None => envelope.reply_error(&format!(
                    "node {} hosts no device `{}`",
                    self.node, envelope.target
                )),
            },
            MessageKind::Invoke => match self.devices.get_mut(&envelope.target) {
                Some(device) => {
                    let args: Vec<Value> =
                        serde_json::from_slice(&envelope.payload).unwrap_or_default();
                    match device.invoke(&envelope.member, &args, envelope.now) {
                        Ok(()) => envelope.reply_ok(),
                        Err(e) => envelope.reply_error(&e.to_string()),
                    }
                }
                None => envelope.reply_error(&format!(
                    "node {} hosts no device `{}`",
                    self.node, envelope.target
                )),
            },
            MessageKind::Bye | MessageKind::Ok | MessageKind::Value | MessageKind::Error => {
                envelope.reply_error(&format!("unexpected request kind {:?}", envelope.kind))
            }
        })
    }
}

/// Serves one coordinator connection on `listener` to completion:
/// accepts, answers envelopes through `runtime`, and returns when the
/// coordinator disconnects, says `Bye`, or the runtime's death schedule
/// triggers (the connection is dropped without a reply, like a killed
/// process).
///
/// # Errors
///
/// Returns [`TransportError::Io`] on accept/read/write failures and
/// [`TransportError::Frame`] on malformed frames.
pub fn serve_edge(
    listener: &TcpListener,
    runtime: &mut EdgeRuntime,
) -> Result<TransportStats, TransportError> {
    let (mut stream, _addr) = listener
        .accept()
        .map_err(|e| TransportError::Io(e.to_string()))?;
    crate::transport::serve_connection(&mut stream, |envelope| runtime.handle(envelope))
}

/// A coordinator-side [`Process`] that forwards sim time to edge
/// environments: every `period_ms` it sends one `Tick` envelope down
/// each link, so remote environment models step on the coordinator's
/// clock. Send failures are ignored — a dead edge is discovered (and
/// recovered from) through the device-polling path, not the pump.
pub struct TickPump {
    links: Vec<Arc<Link>>,
    period_ms: SimTime,
}

impl TickPump {
    /// A pump ticking `links` every `period_ms` of sim time.
    #[must_use]
    pub fn new(links: Vec<Arc<Link>>, period_ms: SimTime) -> Self {
        assert!(period_ms > 0, "tick period must be positive");
        TickPump { links, period_ms }
    }
}

impl Process for TickPump {
    fn wake(&mut self, api: &mut ProcessApi<'_>) -> Option<SimTime> {
        let now = api.now();
        for link in &self.links {
            let _ = link.request(|seq| Envelope::tick(seq, now));
        }
        Some(now + self.period_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{SimTransport, TransportConfig};

    struct FixedDevice {
        reading: i64,
        invoked: Vec<(String, usize)>,
    }

    impl DeviceInstance for FixedDevice {
        fn query(&mut self, source: &str, _now_ms: u64) -> Result<Value, DeviceError> {
            if source == "broken" {
                return Err(DeviceError::new("fixed", source, "sensor fault"));
            }
            Ok(Value::Int(self.reading))
        }

        fn invoke(
            &mut self,
            action: &str,
            args: &[Value],
            _now_ms: u64,
        ) -> Result<(), DeviceError> {
            self.invoked.push((action.to_string(), args.len()));
            Ok(())
        }
    }

    fn looped_edge(runtime: EdgeRuntime) -> Arc<Link> {
        let mut sim = SimTransport::new(TransportConfig::default());
        let shared = Arc::new(Mutex::new(runtime));
        let peer = Arc::clone(&shared);
        sim.connect_handler(Box::new(move |env| {
            peer.lock().expect("edge lock").handle(env)
        }));
        Link::new(sim)
    }

    #[test]
    fn remote_proxy_queries_and_invokes_through_the_link() {
        let mut edge = EdgeRuntime::new("edge0");
        edge.add_device(
            "presence-A22-0",
            Box::new(FixedDevice {
                reading: 7,
                invoked: Vec::new(),
            }),
        );
        let link = looped_edge(edge);
        let mut proxy = RemoteDeviceProxy::new("presence-A22-0", Arc::clone(&link));
        assert_eq!(proxy.query("presence", 600_000).unwrap(), Value::Int(7));
        proxy
            .invoke("display", &[Value::Str("12 free".into())], 600_000)
            .unwrap();
        let err = proxy.query("broken", 600_000).expect_err("driver error");
        assert!(err.message.contains("sensor fault"), "{}", err.message);
        let stats = link.stats();
        assert_eq!(stats.frames_sent, 3);
        assert_eq!(stats.frames_received, 3);
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
    }

    #[test]
    fn unknown_device_is_a_device_error_not_a_panic() {
        let link = looped_edge(EdgeRuntime::new("edge0"));
        let mut proxy = RemoteDeviceProxy::new("missing", link);
        let err = proxy.query("presence", 0).expect_err("unknown device");
        assert!(err.message.contains("hosts no device"), "{}", err.message);
    }

    #[test]
    fn death_schedule_stops_replies_at_the_given_sim_time() {
        let mut edge = EdgeRuntime::new("edge1");
        edge.add_device(
            "presence-F9-0",
            Box::new(FixedDevice {
                reading: 1,
                invoked: Vec::new(),
            }),
        );
        edge.set_die_at(1_200_000);
        let link = looped_edge(edge);
        let mut proxy = RemoteDeviceProxy::new("presence-F9-0", link);
        assert!(proxy.query("presence", 600_000).is_ok(), "alive before");
        let err = proxy.query("presence", 1_200_000).expect_err("dead at");
        assert!(err.message.contains("closed"), "{}", err.message);
        // Dead stays dead, even for earlier-stamped requests.
        assert!(proxy.query("presence", 0).is_err());
    }

    #[test]
    fn ticks_step_environment_hooks_with_coordinator_time() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut edge = EdgeRuntime::new("edge0");
        let sink = Arc::clone(&seen);
        edge.on_tick(move |now| sink.lock().expect("seen lock").push(now));
        let link = looped_edge(edge);
        for now in [61_000, 121_000, 181_000] {
            link.request(|seq| Envelope::tick(seq, now)).expect("tick");
        }
        assert_eq!(
            *seen.lock().expect("seen lock"),
            vec![61_000, 121_000, 181_000]
        );
    }
}

//! Zero-copy payload handle: the unit of data the delivery pipeline moves.
//!
//! A [`Payload`] is a cheaply clonable, immutable handle to a [`Value`]
//! (`Arc<Value>` under the hood). Every value entering the pipeline —
//! source emissions, polled readings, context publications — is wrapped
//! exactly once at admission; from there, fan-out to N subscribers,
//! injected duplicates, retry re-sends, window accumulation, and MapReduce
//! chunk ingestion all clone the *handle* (one pointer bump) instead of
//! deep-copying the value.
//!
//! `Payload` dereferences to [`Value`], so read-only consumers
//! (`payload.as_int()`, `ValueCodec::from_value(&payload)`) are unchanged.
//! Payloads are immutable by construction: mutating a value requires
//! building a new one, which keeps shared fan-out sound.

use crate::value::Value;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A shared, immutable handle to a [`Value`] flowing through the delivery
/// pipeline. Cloning is one atomic reference-count increment, independent
/// of the value's size.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Payload(Arc<Value>);

impl Payload {
    /// Wraps a value for pipeline transport (one allocation).
    #[must_use]
    pub fn new(value: Value) -> Self {
        Payload(Arc::new(value))
    }

    /// Read access to the carried value.
    #[must_use]
    pub fn value(&self) -> &Value {
        &self.0
    }

    /// Extracts the value, cloning only if the payload is still shared.
    #[must_use]
    pub fn into_value(self) -> Value {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| (*shared).clone())
    }

    /// How many handles (this one included) currently share the value.
    /// Diagnostic only — the count is racy under parallel executors.
    #[must_use]
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl Deref for Payload {
    type Target = Value;

    fn deref(&self) -> &Value {
        &self.0
    }
}

impl AsRef<Value> for Payload {
    fn as_ref(&self) -> &Value {
        &self.0
    }
}

impl std::borrow::Borrow<Value> for Payload {
    fn borrow(&self) -> &Value {
        &self.0
    }
}

impl From<Value> for Payload {
    fn from(value: Value) -> Self {
        Payload::new(value)
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&*self.0, f)
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl PartialEq<Value> for Payload {
    fn eq(&self, other: &Value) -> bool {
        *self.0 == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_value() {
        let payload = Payload::new(Value::Str("shared".into()));
        let copy = payload.clone();
        assert_eq!(payload, copy);
        assert_eq!(payload.handle_count(), 2);
        assert!(std::ptr::eq(payload.value(), copy.value()));
    }

    #[test]
    fn derefs_to_value_accessors() {
        let payload = Payload::from(Value::Int(7));
        assert_eq!(payload.as_int(), Some(7));
        assert_eq!(payload.to_string(), "7");
        assert_eq!(payload, Value::Int(7));
    }

    #[test]
    fn into_value_avoids_cloning_when_unshared() {
        let payload = Payload::new(Value::Int(1));
        assert_eq!(payload.into_value(), Value::Int(1));
        let shared = Payload::new(Value::Int(2));
        let keep = shared.clone();
        assert_eq!(shared.into_value(), Value::Int(2));
        assert_eq!(keep.as_int(), Some(2));
    }

    #[test]
    fn ordering_and_hash_follow_the_value() {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<Payload, i64> = BTreeMap::new();
        map.insert(Payload::from(Value::Int(2)), 2);
        map.insert(Payload::from(Value::Int(1)), 1);
        let keys: Vec<i64> = map.keys().filter_map(|p| p.as_int()).collect();
        assert_eq!(keys, vec![1, 2]);
        // Borrow<Value> allows lookups by plain value.
        assert_eq!(map.get(&Value::Int(2)), Some(&2));
    }

    #[test]
    fn payload_is_pointer_sized() {
        assert_eq!(std::mem::size_of::<Payload>(), std::mem::size_of::<usize>());
    }
}

//! Model tests for the shard queue and the merge barrier.
//!
//! `loom` is not vendored in this workspace, so these tests are the
//! stub equivalent: a small explicit-state model that enumerates every
//! interleaving of the SPSC monitor's atomic steps (each `send`/`recv`
//! holds the mutex for its whole critical section, so the monitor's
//! state machine *is* the concurrency model — the only scheduler
//! freedom is the order of whole operations), plus real-thread stress
//! runs that exercise the condvar wakeups and the coordinator/worker
//! barrier protocol many times over. The `tsan` CI job (nightly,
//! `-Zsanitizer=thread`, allowed to fail — see ci.yml) runs the same
//! tests under ThreadSanitizer for the memory-ordering angle the model
//! cannot see.

use super::queue::{channel, SpscReceiver, SpscSender};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---- explicit-state model of the SPSC monitor ------------------------------

/// The monitor state the mutex protects, as the model sees it.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct ModelState {
    buf: Vec<u8>,
    closed: bool,
    sent: u8,
    received: Vec<u8>,
    sender_alive: bool,
    receiver_alive: bool,
}

/// One schedulable atomic step. `SendOrDrop`/`RecvOrDrop` model the
/// producer/consumer threads: each either performs its next operation
/// or (once done) drops its endpoint, closing the channel.
#[derive(Clone, Copy)]
enum Step {
    Producer,
    Consumer,
}

const CAP: usize = 2;
const TO_SEND: u8 = 3;

/// Applies one whole-operation step; returns successor states. A step
/// that would block (full buffer / empty buffer while open) yields no
/// successor — the scheduler must run the other thread, exactly like
/// the condvar wait.
fn apply(state: &ModelState, step: Step) -> Option<ModelState> {
    let mut s = state.clone();
    match step {
        Step::Producer => {
            if !s.sender_alive {
                return None;
            }
            if s.sent == TO_SEND {
                // Done: drop the sender (close).
                s.sender_alive = false;
                s.closed = true;
                return Some(s);
            }
            if s.closed {
                // Receiver gone: send returns Err, producer gives up.
                s.sender_alive = false;
                return Some(s);
            }
            if s.buf.len() == CAP {
                return None; // would block on not_full
            }
            s.buf.push(s.sent);
            s.sent += 1;
            Some(s)
        }
        Step::Consumer => {
            if !s.receiver_alive {
                return None;
            }
            if !s.buf.is_empty() {
                let item = s.buf.remove(0);
                s.received.push(item);
                return Some(s);
            }
            if s.closed {
                // Drained and closed: recv returns None, consumer exits.
                s.receiver_alive = false;
                return Some(s);
            }
            None // would block on not_empty
        }
    }
}

/// Exhaustively explores every interleaving of producer and consumer
/// steps and asserts the safety properties on all reachable states:
/// items are received in FIFO order with no loss, no duplication, and
/// no state deadlocks (some step is always enabled until both sides
/// finish).
#[test]
fn model_every_interleaving_is_fifo_lossless_and_deadlock_free() {
    let initial = ModelState {
        buf: Vec::new(),
        closed: false,
        sent: 0,
        received: Vec::new(),
        sender_alive: true,
        receiver_alive: true,
    };
    let mut seen: BTreeSet<ModelState> = BTreeSet::new();
    let mut frontier = vec![initial];
    let mut terminal = 0usize;
    while let Some(state) = frontier.pop() {
        if !seen.insert(state.clone()) {
            continue;
        }
        // Safety in every reachable state: the received prefix is FIFO.
        assert!(
            state
                .received
                .iter()
                .copied()
                .eq(0..state.received.len() as u8),
            "out-of-order or duplicated receive in {state:?}"
        );
        assert!(state.buf.len() <= CAP, "capacity violated in {state:?}");
        let successors: Vec<ModelState> = [Step::Producer, Step::Consumer]
            .iter()
            .filter_map(|&s| apply(&state, s))
            .collect();
        if successors.is_empty() {
            // No step enabled: must be the fully-terminated state, not a
            // deadlock with work outstanding.
            assert!(
                !state.sender_alive && !state.receiver_alive,
                "deadlock with live threads in {state:?}"
            );
            assert_eq!(
                state.received,
                (0..TO_SEND).collect::<Vec<_>>(),
                "terminated without receiving everything: {state:?}"
            );
            terminal += 1;
        }
        frontier.extend(successors);
    }
    assert!(terminal > 0, "model never terminated");
    assert!(seen.len() >= 10, "model explored suspiciously few states");
}

// ---- real-thread stress: queue liveness and the round barrier --------------

/// Hammers a channel pair through many blocking hand-offs: every item
/// arrives, in order, with the producer repeatedly parked on a full
/// buffer and the consumer on an empty one.
#[test]
fn stress_blocking_handoff_is_fifo_and_live() {
    for _ in 0..50 {
        let (tx, rx) = channel::<u32>(1);
        let producer = std::thread::spawn(move || {
            for i in 0..200 {
                tx.send(i).expect("receiver alive");
            }
        });
        for i in 0..200 {
            assert_eq!(rx.recv(), Some(i));
        }
        producer.join().unwrap();
        assert_eq!(rx.recv(), None);
    }
}

/// The merge-barrier protocol in miniature: a coordinator ships rounds
/// to N workers over dedicated SPSC pairs and collects one result per
/// participating worker *in worker order*. However the workers race,
/// the collected sequence must be deterministic.
#[test]
fn stress_barrier_collects_results_in_worker_order() {
    const WORKERS: usize = 4;
    const ROUNDS: usize = 100;
    let turn = Arc::new(AtomicUsize::new(0));
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let (batch_tx, batch_rx) = channel::<usize>(2);
        let (result_tx, result_rx) = channel::<(usize, usize)>(2);
        let turn = Arc::clone(&turn);
        handles.push(std::thread::spawn(move || {
            while let Some(round) = batch_rx.recv() {
                // Skew worker finish order per round so the barrier is
                // exercised against every completion order.
                while turn.load(Ordering::SeqCst) != (round + w) % WORKERS {
                    std::thread::yield_now();
                }
                turn.store((round + w + 1) % WORKERS, Ordering::SeqCst);
                if result_tx.send((w, round)).is_err() {
                    return;
                }
            }
        }));
        txs.push(batch_tx);
        rxs.push(result_rx);
    }
    for round in 0..ROUNDS {
        turn.store(round % WORKERS, Ordering::SeqCst);
        for tx in &txs {
            tx.send(round).expect("worker alive");
        }
        // The barrier: consume in worker order regardless of the order
        // results were produced in.
        for (w, rx) in rxs.iter().enumerate() {
            assert_eq!(rx.recv(), Some((w, round)));
        }
    }
    drop(txs);
    for handle in handles {
        handle.join().unwrap();
    }
}

/// Dropping the coordinator side while a worker is parked mid-send must
/// wake and terminate it — the leaked-thread guarantee of shutdown.
#[test]
fn stress_worker_parked_on_full_buffer_terminates_on_disconnect() {
    let (tx, rx) = channel::<u32>(1);
    tx.send(0).unwrap();
    let worker = std::thread::spawn(move || tx.send(1).is_err());
    // Let the worker reach the blocking send, then hang up without
    // draining.
    std::thread::sleep(std::time::Duration::from_millis(20));
    drop(rx);
    assert!(
        worker.join().unwrap(),
        "send must fail once receiver is gone"
    );
}

/// `ShardRuntime`-style shutdown: close the batch channels and join —
/// workers parked on an empty buffer must wake with `None` and exit.
#[test]
fn stress_idle_workers_terminate_when_channels_close() {
    let mut handles = Vec::new();
    let mut txs: Vec<SpscSender<u32>> = Vec::new();
    let mut rxs: Vec<SpscReceiver<u32>> = Vec::new();
    for _ in 0..4 {
        let (batch_tx, batch_rx) = channel::<u32>(2);
        let (result_tx, result_rx) = channel::<u32>(2);
        handles.push(std::thread::spawn(move || {
            while let Some(item) = batch_rx.recv() {
                if result_tx.send(item).is_err() {
                    return;
                }
            }
        }));
        txs.push(batch_tx);
        rxs.push(result_rx);
    }
    drop(txs);
    for handle in handles {
        handle.join().unwrap();
    }
    for rx in rxs {
        assert_eq!(rx.recv(), None);
    }
}

//! A bounded single-producer/single-consumer channel for shard rounds.
//!
//! The coordinator and each worker exchange exactly one message stream
//! in each direction (round batches down, round results up), so a
//! dedicated SPSC pair per worker is the whole communication fabric —
//! no shared work-stealing deque, no multi-consumer coordination. The
//! implementation is a deliberately boring `Mutex<VecDeque>` +
//! two-condvar monitor: rounds are coarse (one message per round per
//! direction), so channel overhead is irrelevant next to round
//! execution, and the simple monitor shape is what the shard model
//! tests and the thread-sanitizer CI job exercise.
//!
//! Close semantics: dropping either endpoint closes the channel.
//! `send` on a closed channel returns the item back; `recv` drains
//! buffered items first and only then reports disconnection. Both
//! blocking operations therefore terminate when the peer goes away —
//! the leaked-thread CI check relies on this to guarantee worker
//! shutdown.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cap: usize,
    /// Signalled when an item is buffered or the channel closes.
    not_empty: Condvar,
    /// Signalled when capacity frees up or the channel closes.
    not_full: Condvar,
}

/// The sending half. Dropping it closes the channel.
pub(crate) struct SpscSender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Dropping it closes the channel.
pub(crate) struct SpscReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded SPSC channel holding at most `cap` items.
///
/// # Panics
///
/// Panics if `cap` is zero (a rendezvous channel would deadlock the
/// round protocol: the coordinator sends before it receives).
pub(crate) fn channel<T>(cap: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    assert!(cap > 0, "SPSC capacity must be at least 1");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(cap),
            closed: false,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        SpscSender {
            shared: Arc::clone(&shared),
        },
        SpscReceiver { shared },
    )
}

impl<T> SpscSender<T> {
    /// Blocks until the item is buffered or the receiver is gone; a
    /// disconnected channel hands the item back.
    pub(crate) fn send(&self, item: T) -> Result<(), T> {
        let mut state = self.shared.state.lock().expect("SPSC mutex poisoned");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.buf.len() < self.shared.cap {
                state.buf.push_back(item);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("SPSC mutex poisoned");
        }
    }
}

impl<T> SpscReceiver<T> {
    /// Blocks until an item arrives; `None` once the channel is closed
    /// and drained.
    pub(crate) fn recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("SPSC mutex poisoned");
        loop {
            if let Some(item) = state.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("SPSC mutex poisoned");
        }
    }
}

fn close<T>(shared: &Shared<T>) {
    let mut state = shared.state.lock().expect("SPSC mutex poisoned");
    state.closed = true;
    shared.not_empty.notify_one();
    shared.not_full.notify_one();
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        close(&self.shared);
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        close(&self.shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = channel(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Some(i));
        }
    }

    #[test]
    fn recv_drains_buffered_items_after_sender_drop() {
        let (tx, rx) = channel(2);
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some("a"));
        assert_eq!(rx.recv(), Some("b"));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = channel(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn blocking_send_wakes_when_capacity_frees() {
        let (tx, rx) = channel(1);
        tx.send(0).unwrap();
        let producer = std::thread::spawn(move || tx.send(1).is_ok());
        // The producer is parked on a full buffer; draining one item
        // must wake it.
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert!(producer.join().unwrap());
    }
}

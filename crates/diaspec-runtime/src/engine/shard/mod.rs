//! The N-shard execution plan: per-round parallel dispatch with a
//! deterministic sequenced merge.
//!
//! The serial engine pops one event at a time and performs *all* of its
//! side effects inline. The sharded engine keeps that external behavior
//! byte-identical while running component logic on worker threads:
//!
//! 1. **Round formation** — at the next event time `T`, pop events in
//!    seq order; the maximal prefix of *shard-eligible* events forms a
//!    round, and the first ineligible event (if any) becomes the carry,
//!    dispatched inline after the round. Because pops consume no
//!    sequence numbers, and the merge performs the round's `schedule`
//!    calls in exactly the serial order, every event the round creates
//!    receives the identical `(time, seq)` key it would have serially.
//! 2. **Parallel execution** — round items are partitioned by a stable
//!    FNV-1a hash of the target component name, so all activations of
//!    one component land on one worker in item order. Workers run
//!    *only* the component logic, against an immutable registry
//!    [`ReadView`]; every side effect (metrics, traces, spans,
//!    publications, actuations, contained errors) is deferred.
//! 3. **Sequenced merge** — the coordinator receives one result per
//!    participating shard (a per-round barrier keyed on the sim clock)
//!    and replays the deferred effects in global item order, calling
//!    the same admit/route/schedule functions the serial path calls.
//!    Determinism holds by construction: the merge *is* the serial
//!    execution, minus the logic invocations already performed.
//!
//! Shard eligibility keeps divergent cases on the coordinator: contexts
//! with `get` clauses or MapReduce phases, every controller while fault
//! injection is live (a crashed actuator propagates errors *into*
//! logic), and all engine machinery events (polls, batches, processes,
//! faults, leases, retries). The documented envelope: component logics
//! must not share mutable state across components, and a failing device
//! driver surfaces as a contained error at the merge rather than
//! propagating into the invoking controller's logic.

#[cfg(test)]
mod model;
pub(crate) mod queue;

use crate::clock::SimTime;
use crate::component::{ContextActivation, ContextLogic, ControllerLogic};
use crate::engine::api::{ApiBackend, DeferredActuation, ShardAccess};
use crate::engine::deliver::Event;
use crate::engine::{ContextApi, ControllerApi, Orchestrator};
use crate::entity::EntityId;
use crate::error::RuntimeError;
use crate::obs::{self, Activity, LatencyHistogram};
use crate::payload::Payload;
use crate::registry::ReadView;
use crate::spans::{SpanCtx, SpanStage};
use crate::trace::TraceKind;
use crate::value::Value;
use diaspec_core::model::{CheckedSpec, PublishMode};
use queue::{SpscReceiver, SpscSender};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Rounds smaller than this run inline on the coordinator: the channel
/// round-trip would dominate, and the inline path is always correct.
const MIN_PARALLEL_ITEMS: usize = 2;

/// Per-direction SPSC capacity. The round protocol has at most one
/// message in flight per direction, so anything ≥ 2 never blocks the
/// coordinator (the +1 leaves room for the shutdown message).
const CHANNEL_CAP: usize = 2;

/// Stable shard assignment: FNV-1a over the component name, mod N.
/// Independent of registration order, insertion order, and pointer
/// values, so the same design maps identically on every run and host.
fn shard_of(name: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    usize::try_from(h % shards as u64).expect("shard index fits usize")
}

/// What a worker executes for one round item. Spans stay coordinator-
/// side (the merge reconstructs them); values travel as shared
/// [`Payload`] handles, so shipping an item never deep-copies.
enum ItemKind {
    Source {
        context: String,
        entity: EntityId,
        device_type: String,
        source: String,
        value: Payload,
        index: Option<Payload>,
        publish: PublishMode,
    },
    FromContext {
        context: String,
        from: String,
        value: Payload,
        publish: PublishMode,
    },
    Controller {
        controller: String,
        from: String,
        value: Payload,
    },
}

struct WorkItem {
    /// Global position in the round: the serial execution order.
    idx: usize,
    kind: ItemKind,
}

/// One round shipped to one worker. Logic boxes travel with the round
/// and come back with the result, so the coordinator can keep running
/// carries and serial rounds in between.
struct RoundBatch {
    now: SimTime,
    /// Whether any trace/span/obs consumer is live this round: workers
    /// then report every item so the merge can replay each one's
    /// observable effects; otherwise only effectful items return.
    dense: bool,
    view: Arc<ReadView>,
    ctx_logics: Vec<(String, Box<dyn ContextLogic>)>,
    ctrl_logics: Vec<(String, Box<dyn ControllerLogic>)>,
    items: Vec<WorkItem>,
}

enum WorkerMsg {
    Round(RoundBatch),
    Shutdown,
}

enum ItemOutcome {
    Ctx(Result<Option<Value>, RuntimeError>),
    Ctrl {
        result: Result<(), RuntimeError>,
        actuations: Vec<DeferredActuation>,
    },
}

struct ItemResult {
    idx: usize,
    /// Wall-clock duration of the logic invocation, for the Processing
    /// activity histogram (wall durations are not part of byte
    /// determinism; sim-time fields are, and those come from the merge).
    logic_us: u64,
    outcome: ItemOutcome,
}

struct RoundResult {
    /// Reported items in `idx` order: all items when dense, only the
    /// effectful ones otherwise.
    items: Vec<ItemResult>,
    /// Silent context activations not in `items` (sparse rounds).
    ctx_trivial: u64,
    /// Silent controller activations not in `items` (sparse rounds).
    ctrl_trivial: u64,
    /// `maybe publish` activations among `ctx_trivial` that declined.
    declined_trivial: u64,
    busy_us: u64,
    ctx_logics: Vec<(String, Box<dyn ContextLogic>)>,
    ctrl_logics: Vec<(String, Box<dyn ControllerLogic>)>,
}

struct Worker {
    tx: SpscSender<WorkerMsg>,
    rx: SpscReceiver<RoundResult>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// What the merge needs to replay one round item in serial order.
enum ItemMeta {
    /// Serial dispatch would only open/close the dispatch span: the
    /// activation index resolved to nothing (defensive; routes are
    /// built from the same spec, so this does not occur in practice).
    Skip { name: String, span: SpanCtx },
    Ctx {
        shard: usize,
        name: String,
        publish: PublishMode,
        span: SpanCtx,
    },
    Ctrl {
        shard: usize,
        name: String,
        from: String,
        span: SpanCtx,
    },
}

/// The coordinator's handle on the shard plan: worker threads, the
/// stable component→shard assignment, the generation-cached registry
/// view, and shard occupancy stats surfaced as `diaspec_shard_*`
/// gauges.
pub(crate) struct ShardRuntime {
    ctx_shard: BTreeMap<String, usize>,
    ctrl_shard: BTreeMap<String, usize>,
    workers: Vec<Worker>,
    view_cache: Option<Arc<ReadView>>,
    rounds_total: u64,
    items_total: u64,
    per_shard_busy: Vec<LatencyHistogram>,
}

impl ShardRuntime {
    /// Builds the plan and spawns one worker thread per shard.
    ///
    /// `controllers_eligible` is false while fault injection is live:
    /// a crashed actuator makes `invoke` errors propagate *into*
    /// controller logic, which a worker's optimistic deferral cannot
    /// reproduce.
    pub(crate) fn launch(
        spec: &Arc<CheckedSpec>,
        shards: usize,
        controllers_eligible: bool,
    ) -> ShardRuntime {
        let mut ctx_shard = BTreeMap::new();
        for ctx in spec.contexts() {
            let pure_event_driven = ctx.activations.iter().all(|a| a.gets.is_empty());
            if pure_event_driven && !ctx.uses_map_reduce() {
                ctx_shard.insert(ctx.name.clone(), shard_of(&ctx.name, shards));
            }
        }
        let mut ctrl_shard = BTreeMap::new();
        if controllers_eligible {
            for ctrl in spec.controllers() {
                ctrl_shard.insert(ctrl.name.clone(), shard_of(&ctrl.name, shards));
            }
        }
        let workers = (0..shards)
            .map(|idx| {
                let (batch_tx, batch_rx) = queue::channel::<WorkerMsg>(CHANNEL_CAP);
                let (result_tx, result_rx) = queue::channel::<RoundResult>(CHANNEL_CAP);
                let spec = Arc::clone(spec);
                let handle = std::thread::Builder::new()
                    .name(format!("diaspec-shard-{idx}"))
                    .spawn(move || worker_loop(&spec, &batch_rx, &result_tx))
                    .expect("spawn shard worker");
                Worker {
                    tx: batch_tx,
                    rx: result_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardRuntime {
            ctx_shard,
            ctrl_shard,
            workers,
            view_cache: None,
            rounds_total: 0,
            items_total: 0,
            per_shard_busy: vec![LatencyHistogram::new(); shards],
        }
    }

    pub(crate) fn worker_count(&self) -> usize {
        self.workers.len()
    }

    pub(crate) fn rounds_total(&self) -> u64 {
        self.rounds_total
    }

    pub(crate) fn items_total(&self) -> u64 {
        self.items_total
    }

    /// p99 of per-shard round busy time, across all shards — the
    /// per-shard histograms combined through the mergeable-percentile
    /// machinery.
    pub(crate) fn busy_us_p99(&self) -> u64 {
        let mut merged = LatencyHistogram::new();
        for hist in &self.per_shard_busy {
            merged.merge(hist);
        }
        merged.quantile(0.99)
    }
}

impl Drop for ShardRuntime {
    /// Shuts the workers down and joins them: no thread outlives the
    /// orchestrator (the CI leaked-thread check pins this).
    fn drop(&mut self) {
        for worker in &self.workers {
            let _ = worker.tx.send(WorkerMsg::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// A worker's life: receive a round, run its component logic against
/// the snapshot, report results; exit on shutdown or channel close.
fn worker_loop(spec: &CheckedSpec, rx: &SpscReceiver<WorkerMsg>, tx: &SpscSender<RoundResult>) {
    while let Some(msg) = rx.recv() {
        let WorkerMsg::Round(batch) = msg else {
            return;
        };
        let result = run_round(spec, batch);
        if tx.send(result).is_err() {
            return;
        }
    }
}

fn run_round(spec: &CheckedSpec, batch: RoundBatch) -> RoundResult {
    let t_round = std::time::Instant::now();
    let mut ctx_logics: BTreeMap<String, Box<dyn ContextLogic>> =
        batch.ctx_logics.into_iter().collect();
    let mut ctrl_logics: BTreeMap<String, Box<dyn ControllerLogic>> =
        batch.ctrl_logics.into_iter().collect();
    let mut items = Vec::new();
    let mut ctx_trivial = 0u64;
    let mut ctrl_trivial = 0u64;
    let mut declined_trivial = 0u64;
    for item in batch.items {
        let t_item = std::time::Instant::now();
        match item.kind {
            ItemKind::Source { .. } | ItemKind::FromContext { .. } => {
                let (name, publish) = match &item.kind {
                    ItemKind::Source {
                        context, publish, ..
                    }
                    | ItemKind::FromContext {
                        context, publish, ..
                    } => (context.clone(), *publish),
                    ItemKind::Controller { .. } => unreachable!("matched above"),
                };
                let logic = ctx_logics
                    .get_mut(&name)
                    .expect("context logic shipped with its round");
                let mut actuations = Vec::new();
                let result = {
                    let input = match &item.kind {
                        ItemKind::Source {
                            entity,
                            device_type,
                            source,
                            value,
                            index,
                            ..
                        } => ContextActivation::SourceEvent {
                            device_type,
                            entity,
                            source,
                            value,
                            index: index.as_deref(),
                        },
                        ItemKind::FromContext { from, value, .. } => {
                            ContextActivation::ContextEvent {
                                context: from,
                                value,
                            }
                        }
                        ItemKind::Controller { .. } => unreachable!("matched above"),
                    };
                    let mut api = ContextApi {
                        backend: ApiBackend::Shard(ShardAccess {
                            now: batch.now,
                            spec,
                            view: &batch.view,
                            actuations: &mut actuations,
                        }),
                        context: &name,
                    };
                    logic.activate(&mut api, input).map_err(RuntimeError::from)
                };
                debug_assert!(actuations.is_empty(), "contexts cannot actuate");
                let effectful = match (&result, publish) {
                    (Err(_) | Ok(Some(_)), _) => true,
                    // `always publish` with no value is a contained
                    // contract violation the merge must replay.
                    (Ok(None), PublishMode::Always) => true,
                    (Ok(None), PublishMode::Maybe | PublishMode::No) => false,
                };
                if batch.dense || effectful {
                    items.push(ItemResult {
                        idx: item.idx,
                        logic_us: obs::elapsed_us(t_item),
                        outcome: ItemOutcome::Ctx(result),
                    });
                } else {
                    // Counted here only because the merge will not see
                    // this item: replayed items do their own accounting.
                    ctx_trivial += 1;
                    if publish == PublishMode::Maybe {
                        declined_trivial += 1;
                    }
                }
            }
            ItemKind::Controller {
                controller,
                from,
                value,
            } => {
                let logic = ctrl_logics
                    .get_mut(&controller)
                    .expect("controller logic shipped with its round");
                let mut actuations = Vec::new();
                let result = {
                    let mut api = ControllerApi {
                        backend: ApiBackend::Shard(ShardAccess {
                            now: batch.now,
                            spec,
                            view: &batch.view,
                            actuations: &mut actuations,
                        }),
                        controller: &controller,
                    };
                    logic
                        .on_context(&mut api, &from, &value)
                        .map_err(RuntimeError::from)
                };
                if batch.dense || result.is_err() || !actuations.is_empty() {
                    items.push(ItemResult {
                        idx: item.idx,
                        logic_us: obs::elapsed_us(t_item),
                        outcome: ItemOutcome::Ctrl { result, actuations },
                    });
                } else {
                    ctrl_trivial += 1;
                }
            }
        }
    }
    RoundResult {
        items,
        ctx_trivial,
        ctrl_trivial,
        declined_trivial,
        busy_us: obs::elapsed_us(t_round),
        ctx_logics: ctx_logics.into_iter().collect(),
        ctrl_logics: ctrl_logics.into_iter().collect(),
    }
}

impl Orchestrator {
    /// Whether the shard plan may execute this event on a worker.
    fn shard_eligible(&self, event: &Event) -> bool {
        let Some(rt) = &self.shard else {
            return false;
        };
        match event {
            Event::SourceDeliver { context, .. } | Event::ContextDeliver { context, .. } => {
                rt.ctx_shard.contains_key(context)
            }
            Event::ControllerDeliver { controller, .. } => rt.ctrl_shard.contains_key(controller),
            _ => false,
        }
    }

    /// The sharded counterpart of [`Orchestrator::run_until`]: rounds of
    /// same-time shard-eligible events run on the workers, everything
    /// else dispatches inline in the identical serial position.
    pub(crate) fn run_until_sharded(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                return;
            }
            let mut round: Vec<Event> = Vec::new();
            let mut carry: Option<Event> = None;
            while let Some(next) = self.queue.peek_time() {
                if next > t {
                    break;
                }
                let (_, event) = self.queue.pop().expect("peeked event present");
                if self.shard_eligible(&event) {
                    round.push(event);
                } else {
                    carry = Some(event);
                    break;
                }
            }
            if round.len() >= MIN_PARALLEL_ITEMS {
                self.execute_round(t, round);
            } else {
                for event in round {
                    self.dispatch(event);
                }
            }
            if let Some(event) = carry {
                self.dispatch(event);
            }
        }
    }

    /// Runs one round on the workers and merges the results in serial
    /// order.
    fn execute_round(&mut self, now: SimTime, events: Vec<Event>) {
        let mut rt = self.shard.take().expect("sharded run loop owns a plan");
        let shards = rt.workers.len();

        // Refresh the registry snapshot only when bindings changed.
        let generation = self.registry.generation();
        let view = match &rt.view_cache {
            Some(cached) if cached.generation() == generation => Arc::clone(cached),
            _ => {
                let fresh = Arc::new(self.registry.read_view());
                rt.view_cache = Some(Arc::clone(&fresh));
                fresh
            }
        };
        let dense = self.trace_active() || self.obs.spans_enabled() || self.obs.is_enabled();

        // Partition the round: metas keep the merge's replay order,
        // per-shard item lists keep each component's items in order.
        let mut metas: Vec<ItemMeta> = Vec::with_capacity(events.len());
        let mut shard_items: Vec<Vec<WorkItem>> = (0..shards).map(|_| Vec::new()).collect();
        let mut ctx_needed: Vec<BTreeSet<String>> = vec![BTreeSet::new(); shards];
        let mut ctrl_needed: Vec<BTreeSet<String>> = vec![BTreeSet::new(); shards];
        for (idx, event) in events.into_iter().enumerate() {
            match event {
                Event::SourceDeliver {
                    context,
                    entity,
                    device_type,
                    source,
                    value,
                    index,
                    activation_idx,
                    span,
                } => {
                    let publish = self
                        .spec
                        .context(&context)
                        .and_then(|c| c.activations.get(activation_idx))
                        .map(|a| a.publish);
                    let Some(publish) = publish else {
                        metas.push(ItemMeta::Skip {
                            name: context,
                            span,
                        });
                        continue;
                    };
                    let shard = rt.ctx_shard[&context];
                    ctx_needed[shard].insert(context.clone());
                    metas.push(ItemMeta::Ctx {
                        shard,
                        name: context.clone(),
                        publish,
                        span,
                    });
                    shard_items[shard].push(WorkItem {
                        idx,
                        kind: ItemKind::Source {
                            context,
                            entity,
                            device_type,
                            source,
                            value,
                            index,
                            publish,
                        },
                    });
                }
                Event::ContextDeliver {
                    context,
                    from,
                    value,
                    activation_idx,
                    span,
                } => {
                    let publish = self
                        .spec
                        .context(&context)
                        .and_then(|c| c.activations.get(activation_idx))
                        .map(|a| a.publish);
                    let Some(publish) = publish else {
                        metas.push(ItemMeta::Skip {
                            name: context,
                            span,
                        });
                        continue;
                    };
                    let shard = rt.ctx_shard[&context];
                    ctx_needed[shard].insert(context.clone());
                    metas.push(ItemMeta::Ctx {
                        shard,
                        name: context.clone(),
                        publish,
                        span,
                    });
                    shard_items[shard].push(WorkItem {
                        idx,
                        kind: ItemKind::FromContext {
                            context,
                            from,
                            value,
                            publish,
                        },
                    });
                }
                Event::ControllerDeliver {
                    controller,
                    from,
                    value,
                    span,
                } => {
                    let shard = rt.ctrl_shard[&controller];
                    ctrl_needed[shard].insert(controller.clone());
                    metas.push(ItemMeta::Ctrl {
                        shard,
                        name: controller.clone(),
                        from: from.clone(),
                        span,
                    });
                    shard_items[shard].push(WorkItem {
                        idx,
                        kind: ItemKind::Controller {
                            controller,
                            from,
                            value,
                        },
                    });
                }
                _ => unreachable!("only shard-eligible events enter a round"),
            }
        }

        // Ship each participating shard its batch, lending the logic
        // boxes of the components it will activate.
        let participating: Vec<usize> = (0..shards)
            .filter(|&s| !shard_items[s].is_empty())
            .collect();
        for &shard in &participating {
            let ctx_logics = ctx_needed[shard]
                .iter()
                .map(|name| {
                    let logic = self
                        .contexts
                        .get_mut(name)
                        .and_then(|r| r.logic.take())
                        .expect("context logic present outside an activation");
                    (name.clone(), logic)
                })
                .collect();
            let ctrl_logics = ctrl_needed[shard]
                .iter()
                .map(|name| {
                    let logic = self
                        .controllers
                        .get_mut(name)
                        .and_then(|r| r.logic.take())
                        .expect("controller logic present outside an activation");
                    (name.clone(), logic)
                })
                .collect();
            let batch = RoundBatch {
                now,
                dense,
                view: Arc::clone(&view),
                ctx_logics,
                ctrl_logics,
                items: std::mem::take(&mut shard_items[shard]),
            };
            assert!(
                rt.workers[shard].tx.send(WorkerMsg::Round(batch)).is_ok(),
                "shard worker {shard} hung up"
            );
        }

        // Per-round barrier: one result per participating shard, taken
        // in shard order (each worker has a dedicated channel, so the
        // order results are *consumed* in is deterministic regardless
        // of the order they were produced in).
        let mut result_queues: Vec<VecDeque<ItemResult>> =
            (0..shards).map(|_| VecDeque::new()).collect();
        let mut ctx_trivial = 0u64;
        let mut ctrl_trivial = 0u64;
        let mut declined_trivial = 0u64;
        for &shard in &participating {
            let result = rt.workers[shard]
                .rx
                .recv()
                .unwrap_or_else(|| panic!("shard worker {shard} died mid-round"));
            for (name, logic) in result.ctx_logics {
                self.contexts.get_mut(&name).expect("context exists").logic = Some(logic);
            }
            for (name, logic) in result.ctrl_logics {
                self.controllers
                    .get_mut(&name)
                    .expect("controller exists")
                    .logic = Some(logic);
            }
            ctx_trivial += result.ctx_trivial;
            ctrl_trivial += result.ctrl_trivial;
            declined_trivial += result.declined_trivial;
            rt.per_shard_busy[shard].record(result.busy_us);
            result_queues[shard] = result.items.into();
        }

        rt.rounds_total += 1;
        rt.items_total += metas.len() as u64;

        // Silent activations: order-free counter adds, identical to the
        // increments the serial path interleaves with the replay below.
        self.metrics.context_activations += ctx_trivial;
        self.metrics.controller_activations += ctrl_trivial;
        self.metrics.publications_declined += declined_trivial;

        // Sequenced merge: replay every reported item in global round
        // order. Dense rounds report all items; sparse rounds report
        // only effectful ones (the trivial remainder has no observable
        // effect beyond the counters above).
        for (idx, meta) in metas.iter().enumerate() {
            match meta {
                ItemMeta::Skip { name, span } => {
                    let open = self.begin_wall_span(*span, SpanStage::Dispatch, &|| name.clone());
                    self.end_wall_span(open);
                }
                ItemMeta::Ctx {
                    shard,
                    name,
                    publish,
                    span,
                } => {
                    let reported = result_queues[*shard]
                        .front()
                        .is_some_and(|r| r.idx == idx)
                        .then(|| result_queues[*shard].pop_front().expect("peeked"));
                    if let Some(res) = reported {
                        let ItemOutcome::Ctx(result) = res.outcome else {
                            unreachable!("context item reported a controller outcome");
                        };
                        self.replay_context_item(name, *publish, *span, result, res.logic_us);
                    }
                }
                ItemMeta::Ctrl {
                    shard,
                    name,
                    from,
                    span,
                } => {
                    let reported = result_queues[*shard]
                        .front()
                        .is_some_and(|r| r.idx == idx)
                        .then(|| result_queues[*shard].pop_front().expect("peeked"));
                    if let Some(res) = reported {
                        let ItemOutcome::Ctrl { result, actuations } = res.outcome else {
                            unreachable!("controller item reported a context outcome");
                        };
                        self.replay_controller_item(
                            name,
                            from,
                            *span,
                            result,
                            actuations,
                            res.logic_us,
                        );
                    }
                }
            }
        }

        self.shard = Some(rt);
    }

    /// Replays one context activation's deferred effects, mirroring the
    /// serial `dispatch` + `activate_context` sequence exactly (minus
    /// the logic invocation, already performed on the worker).
    fn replay_context_item(
        &mut self,
        name: &str,
        publish: PublishMode,
        span: SpanCtx,
        result: Result<Option<Value>, RuntimeError>,
        logic_us: u64,
    ) {
        let open = self.begin_wall_span(span, SpanStage::Dispatch, &|| name.to_owned());
        let dispatch_ctx = open.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
            trace_id: span.trace_id,
            parent: id,
        });
        self.metrics.context_activations += 1;
        if self.trace_active() {
            let at = self.queue.now();
            self.record_trace(
                at,
                TraceKind::ContextActivation {
                    context: name.to_owned(),
                },
            );
        }
        let compute = self.begin_wall_span(dispatch_ctx, SpanStage::Compute, &|| name.to_owned());
        let compute_ctx = compute.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
            trace_id: dispatch_ctx.trace_id,
            parent: id,
        });
        if self.obs.is_enabled() {
            self.obs.record(Activity::Processing, name, logic_us);
        }
        self.end_wall_span(compute);
        match result {
            Err(e) => self.contain(e),
            Ok(maybe_value) => self.handle_publication(name, publish, maybe_value, compute_ctx),
        }
        self.end_wall_span(open);
    }

    /// Replays one controller activation: its deferred actuations run
    /// through the live registry under the reconstructed compute span,
    /// in the order the logic issued them.
    fn replay_controller_item(
        &mut self,
        name: &str,
        from: &str,
        span: SpanCtx,
        result: Result<(), RuntimeError>,
        actuations: Vec<DeferredActuation>,
        logic_us: u64,
    ) {
        let open = self.begin_wall_span(span, SpanStage::Dispatch, &|| name.to_owned());
        let dispatch_ctx = open.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
            trace_id: span.trace_id,
            parent: id,
        });
        self.metrics.controller_activations += 1;
        if self.trace_active() {
            let at = self.queue.now();
            self.record_trace(
                at,
                TraceKind::ControllerActivation {
                    controller: name.to_owned(),
                    from: from.to_owned(),
                },
            );
        }
        let compute = self.begin_wall_span(dispatch_ctx, SpanStage::Compute, &|| name.to_owned());
        let compute_ctx = compute.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
            trace_id: dispatch_ctx.trace_id,
            parent: id,
        });
        let prev = std::mem::replace(&mut self.span_cursor, compute_ctx);
        for act in actuations {
            // The worker already validated the declaration; a driver
            // failure here is contained (the sharding envelope: serial
            // execution would have fed it back into the logic).
            if let Err(e) =
                self.invoke_for_controller(&act.entity, &act.device_type, &act.action, &act.args)
            {
                self.contain(e);
            }
        }
        self.span_cursor = prev;
        if self.obs.is_enabled() {
            self.obs.record(Activity::Processing, name, logic_us);
        }
        self.end_wall_span(compute);
        if let Err(e) = result {
            self.contain(e);
        }
        self.end_wall_span(open);
    }
}

//! Stage 4 — **dispatch**: a due event leaves the queue and activates
//! its target.
//!
//! Dispatch is the pipeline's consumer end: it pattern-matches the due
//! [`Event`] and drives the paper's activities — component activation
//! (contexts and controllers, with Sense-Compute-Control conformance
//! enforced), periodic polling with window accumulation, batch
//! processing on the MapReduce substrate, scheduled faults, lease
//! sweeps, and recovery notification. Payload-carrying events hand the
//! borrowed value straight to component logic (`&Payload` dereferences
//! to [`Value`]) — the pipeline never deep-copies a value between
//! admission and activation.

use crate::component::{BatchData, ContextActivation, MapReduceLogic};
use crate::engine::api::ApiBackend;
use crate::engine::{ContextApi, ControllerApi, Orchestrator, ProcessApi, ProcessingMode};
use crate::error::RuntimeError;
use crate::fault::{FaultInjector, FaultKind};
use crate::obs::{self, Activity};
use crate::payload::Payload;
use crate::registry::PolledReading;
use crate::spans::{SpanCtx, SpanStage};
use crate::trace::TraceKind;
use crate::value::Value;
use diaspec_core::model::{ActivationTrigger, InputRef};
use diaspec_mapreduce::{ExecutionStats, Job, MapCollector, MapReduce, ReduceCollector, TaskError};
use std::collections::BTreeMap;
use std::time::Duration;

use super::Event;

impl Orchestrator {
    /// Consumes one due event.
    pub(crate) fn dispatch(&mut self, event: Event) {
        match event {
            Event::Emit {
                entity,
                source,
                value,
                index,
            } => self.dispatch_emit(&entity, &source, &value, index.as_ref()),
            Event::SourceDeliver {
                context,
                entity,
                device_type,
                source,
                value,
                index,
                activation_idx,
                span,
            } => {
                let open = self.begin_wall_span(span, SpanStage::Dispatch, &|| context.clone());
                let ctx = open.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
                    trace_id: span.trace_id,
                    parent: id,
                });
                let input = ContextActivation::SourceEvent {
                    device_type: &device_type,
                    entity: &entity,
                    source: &source,
                    value: &value,
                    index: index.as_deref(),
                };
                self.activate_context(&context, activation_idx, input, ctx);
                self.end_wall_span(open);
            }
            Event::ContextDeliver {
                context,
                from,
                value,
                activation_idx,
                span,
            } => {
                let open = self.begin_wall_span(span, SpanStage::Dispatch, &|| context.clone());
                let ctx = open.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
                    trace_id: span.trace_id,
                    parent: id,
                });
                let input = ContextActivation::ContextEvent {
                    context: &from,
                    value: &value,
                };
                self.activate_context(&context, activation_idx, input, ctx);
                self.end_wall_span(open);
            }
            Event::ControllerDeliver {
                controller,
                from,
                value,
                span,
            } => {
                let open = self.begin_wall_span(span, SpanStage::Dispatch, &|| controller.clone());
                let ctx = open.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
                    trace_id: span.trace_id,
                    parent: id,
                });
                self.activate_controller(&controller, &from, &value, ctx);
                self.end_wall_span(open);
            }
            Event::PeriodicPoll {
                context,
                activation_idx,
            } => self.dispatch_periodic_poll(&context, activation_idx),
            Event::BatchDeliver {
                context,
                activation_idx,
                readings,
                window_ms,
                span,
            } => self.dispatch_batch(&context, activation_idx, readings, window_ms, span),
            Event::ProcessWake { idx } => {
                let Some(mut process) = self.processes[idx].process.take() else {
                    return;
                };
                let started = self.obs.is_enabled().then(std::time::Instant::now);
                let next = {
                    let mut api = ProcessApi { engine: self };
                    process.wake(&mut api)
                };
                if let Some(t0) = started {
                    let label = format!("process:{}", self.processes[idx].name);
                    self.obs
                        .record(Activity::Processing, &label, obs::elapsed_us(t0));
                }
                self.processes[idx].process = Some(process);
                if let Some(at) = next {
                    self.queue.schedule(at, Event::ProcessWake { idx });
                }
            }
            Event::Fault { idx } => self.dispatch_fault(idx),
            Event::LeaseCheck => self.dispatch_lease_check(),
            Event::Redeliver {
                event,
                attempt,
                first_sent_at,
            } => {
                let target = event.target().to_owned();
                let qos_context = event.targets_context();
                self.send_event(&target, qos_context, *event, attempt, first_sent_at);
            }
        }
    }

    /// Applies a scheduled fault (crash, restart, partition transition).
    fn dispatch_fault(&mut self, idx: usize) {
        let Some(kind) = self
            .faults
            .as_ref()
            .and_then(|injector| injector.scheduled().get(idx))
            .map(|fault| fault.kind.clone())
        else {
            return;
        };
        let applied = match &kind {
            FaultKind::DeviceCrash { entity } => {
                let ok = self.registry.set_crashed(entity, true).is_ok();
                if ok {
                    self.faults
                        .as_mut()
                        .expect("fault injector enabled")
                        .count_injection();
                }
                ok
            }
            FaultKind::DeviceRestart { entity } => {
                let ok = self.registry.set_crashed(entity, false).is_ok();
                if ok {
                    self.faults
                        .as_mut()
                        .expect("fault injector enabled")
                        .count_injection();
                }
                ok
            }
            FaultKind::PartitionStart => {
                self.faults
                    .as_mut()
                    .expect("fault injector enabled")
                    .set_partitioned(true);
                true
            }
            FaultKind::PartitionEnd => {
                self.faults
                    .as_mut()
                    .expect("fault injector enabled")
                    .set_partitioned(false);
                true
            }
        };
        if applied {
            self.metrics.faults_injected += 1;
            let at = self.queue.now();
            self.record_trace(
                at,
                TraceKind::FaultInjected {
                    fault: kind.to_string(),
                },
            );
        }
    }

    /// Periodic lease sweep: expires silent bindings, promotes standbys,
    /// traces the transitions, and notifies interested components.
    fn dispatch_lease_check(&mut self) {
        let Some(interval) = self.recovery.lease_check_interval_ms() else {
            return;
        };
        let now = self.queue.now();
        let transitions = self.registry.expire_leases(now);
        for transition in &transitions {
            self.metrics.lease_expiries += 1;
            self.record_trace(
                now,
                TraceKind::LeaseExpired {
                    entity: transition.lost.id.to_string(),
                },
            );
            // Recovery cost: how long the loss went undetected (bounded
            // by the sweep interval).
            self.obs.record(
                Activity::Recovering,
                &transition.lost.device_type,
                now.saturating_sub(transition.deadline),
            );
            // Each recovery episode is its own trace: a root recover span
            // spanning the undetected-loss window.
            if self.obs.spans_enabled() {
                let trace_id = self.obs.mint_trace();
                let label = if self.obs.spans_materializing() {
                    transition.lost.device_type.clone()
                } else {
                    String::new()
                };
                self.obs.record_span(
                    trace_id,
                    0,
                    SpanStage::Recover,
                    &label,
                    transition.deadline.min(now),
                    now,
                );
            }
            if let Some(replacement) = &transition.replacement {
                self.metrics.rebinds += 1;
                self.record_trace(
                    now,
                    TraceKind::Rebound {
                        lost: transition.lost.id.to_string(),
                        replacement: replacement.to_string(),
                    },
                );
            }
        }
        for transition in transitions {
            if let Some(replacement) = transition.replacement {
                self.notify_recovery(
                    &transition.lost.id,
                    &transition.lost.device_type,
                    &replacement,
                );
            }
        }
        self.queue.schedule(now + interval, Event::LeaseCheck);
    }

    /// Invokes the `on_recovery` hook of every component whose design
    /// references the lost device's family.
    fn notify_recovery(
        &mut self,
        lost: &crate::entity::EntityId,
        device_type: &str,
        replacement: &crate::entity::EntityId,
    ) {
        let controllers: Vec<String> = self
            .controllers
            .keys()
            .filter(|name| self.controller_declares_device(name, device_type))
            .cloned()
            .collect();
        for name in controllers {
            let Some(mut logic) = self.controllers.get_mut(&name).and_then(|r| r.logic.take())
            else {
                continue;
            };
            let result = {
                let mut api = ControllerApi {
                    backend: ApiBackend::Engine(self),
                    controller: &name,
                };
                logic.on_recovery(&mut api, lost, replacement)
            };
            self.controllers
                .get_mut(&name)
                .expect("controller exists")
                .logic = Some(logic);
            if let Err(e) = result {
                self.contain(e.into());
            }
        }
        let contexts: Vec<String> = self
            .contexts
            .keys()
            .filter(|name| self.context_references_device(name, device_type))
            .cloned()
            .collect();
        for name in contexts {
            let Some(mut logic) = self.contexts.get_mut(&name).and_then(|r| r.logic.take()) else {
                continue;
            };
            let result = {
                let mut api = ContextApi {
                    backend: ApiBackend::Engine(self),
                    context: &name,
                };
                logic.on_recovery(&mut api, lost, replacement)
            };
            self.contexts.get_mut(&name).expect("context exists").logic = Some(logic);
            if let Err(e) = result {
                self.contain(e.into());
            }
        }
    }

    /// Whether `context`'s design references the device family (a source
    /// subscription, a periodic poll, or a `get` of one of its sources).
    fn context_references_device(&self, context: &str, device_type: &str) -> bool {
        let Some(ctx) = self.spec.context(context) else {
            return false;
        };
        ctx.activations.iter().any(|a| {
            let triggered = match &a.trigger {
                ActivationTrigger::DeviceSource { device, .. }
                | ActivationTrigger::Periodic { device, .. } => {
                    self.spec.device_is_subtype(device_type, device)
                }
                _ => false,
            };
            triggered
                || a.gets.iter().any(|g| {
                    matches!(
                        g,
                        InputRef::DeviceSource { device, .. }
                            if self.spec.device_is_subtype(device_type, device)
                    )
                })
        })
    }

    fn dispatch_periodic_poll(&mut self, context: &str, activation_idx: usize) {
        let Some(ctx_decl) = self.spec.context(context) else {
            return;
        };
        let Some(activation) = ctx_decl.activations.get(activation_idx) else {
            return;
        };
        let ActivationTrigger::Periodic {
            device,
            source,
            period_ms,
        } = activation.trigger.clone()
        else {
            return;
        };
        let group_attr = activation.grouping.as_ref().map(|g| g.attribute.clone());
        let window_ms = activation.grouping.as_ref().and_then(|g| g.window_ms);

        // Poll the whole device family (query-driven under the hood; the
        // paper requires drivers to support all three delivery modes).
        // Each poll mints one trace; its admit span covers the poll and
        // the per-reading transport sampling (individual readings are not
        // traced — one span per reading would dwarf the data).
        let now = self.queue.now();
        let admit = if self.obs.spans_enabled() {
            let trace_id = self.obs.mint_trace();
            let label = if self.obs.spans_materializing() {
                format!("{context}/poll")
            } else {
                String::new()
            };
            let id = self
                .obs
                .open_span(trace_id, 0, SpanStage::Admit, &label, now);
            Some((trace_id, id, std::time::Instant::now()))
        } else {
            None
        };
        let readings = self
            .registry
            .poll(&device, &source, group_attr.as_deref(), now);
        self.metrics.periodic_deliveries += 1;
        self.metrics.readings_polled += readings.len() as u64;
        self.record_trace(
            now,
            TraceKind::PeriodicPoll {
                device: device.clone(),
                source: source.clone(),
                readings: readings.len(),
            },
        );

        // Each reading crosses the transport; the batch arrives when its
        // slowest surviving reading does. Readings carry payload handles,
        // so the injected-duplicate copy is a handle clone.
        let mut surviving = Vec::with_capacity(readings.len());
        let mut max_latency = 0;
        for reading in readings {
            let outcome = self.sample_send();
            if let Some(latency) = outcome.duplicate {
                // At-least-once delivery: the injected duplicate shows up
                // as a second copy of the reading in the batch.
                self.metrics.messages_delivered += 1;
                self.metrics.total_transport_latency_ms += latency;
                self.obs.record(Activity::Delivering, context, latency);
                max_latency = max_latency.max(latency);
                surviving.push(reading.clone());
            }
            match outcome.delivery {
                Some(latency) => {
                    self.metrics.messages_delivered += 1;
                    self.metrics.total_transport_latency_ms += latency;
                    self.obs.record(Activity::Delivering, context, latency);
                    max_latency = max_latency.max(latency);
                    surviving.push(reading);
                }
                // Dropped poll readings are not retried: the next poll
                // supersedes them.
                None => self.metrics.messages_lost += 1,
            }
        }
        let span = match admit {
            Some((trace_id, id, t0)) => {
                self.obs.close_span(id, now, obs::elapsed_us(t0));
                SpanCtx {
                    trace_id,
                    parent: id,
                }
            }
            None => SpanCtx::NONE,
        };

        // Window accumulation (`every <T>`): buffer until the deadline.
        let deliver = if let Some(window_ms) = window_ms {
            let runtime = self.contexts.get_mut(context).expect("context exists");
            let buffer = runtime
                .windows
                .get_mut(&activation_idx)
                .expect("window initialized at launch");
            buffer.readings.extend(surviving);
            if now >= buffer.deadline {
                let batch = std::mem::take(&mut buffer.readings);
                buffer.deadline = now + window_ms;
                Some(batch)
            } else {
                None
            }
        } else {
            Some(surviving)
        };

        if let Some(readings) = deliver {
            self.check_qos(context, max_latency);
            // One schedule span stands for the whole batch hop (the batch
            // arrives with its slowest surviving reading). A window flush
            // is attributed to the poll that flushed it.
            let batch_span = if span.is_active() {
                self.schedule_span(span, context, max_latency)
            } else {
                SpanCtx::NONE
            };
            self.queue.schedule_in(
                max_latency,
                Event::BatchDeliver {
                    context: context.to_owned(),
                    activation_idx,
                    readings,
                    window_ms,
                    span: batch_span,
                },
            );
        }

        // Keep the cadence anchored to the poll time, not delivery time.
        self.queue.schedule(
            now + period_ms,
            Event::PeriodicPoll {
                context: context.to_owned(),
                activation_idx,
            },
        );
    }

    fn dispatch_batch(
        &mut self,
        context: &str,
        activation_idx: usize,
        readings: Vec<PolledReading>,
        window_ms: Option<u64>,
        span: SpanCtx,
    ) {
        let spec = std::sync::Arc::clone(&self.spec);
        let Some(ctx_decl) = spec.context(context) else {
            return;
        };
        let Some(activation) = ctx_decl.activations.get(activation_idx) else {
            return;
        };
        let ActivationTrigger::Periodic { device, source, .. } = activation.trigger.clone() else {
            return;
        };
        let open = self.begin_wall_span(span, SpanStage::Dispatch, &|| context.to_owned());
        let ctx = open.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
            trace_id: span.trace_id,
            parent: id,
        });

        // Grouping shares the batch's payload handles — a 10k-reading
        // batch groups with 10k pointer bumps, not 10k value copies.
        let grouped = activation.grouping.as_ref().map(|_| {
            let mut groups: BTreeMap<Payload, Vec<Payload>> = BTreeMap::new();
            for reading in &readings {
                if let Some(group) = &reading.group {
                    groups
                        .entry(group.clone())
                        .or_default()
                        .push(reading.value.clone());
                }
            }
            groups
        });

        let (reduced, coverage) = match activation
            .grouping
            .as_ref()
            .and_then(|g| g.map_reduce.as_ref())
        {
            Some(_) => {
                let mr = self
                    .contexts
                    .get(context)
                    .and_then(|r| r.map_reduce.clone());
                match mr {
                    Some(mr) => {
                        self.metrics.map_reduce_executions += 1;
                        // Batch ingestion into the MapReduce substrate is
                        // its own span; the per-phase wall times become
                        // compute spans nested under it.
                        let ingest =
                            self.begin_wall_span(ctx, SpanStage::Ingest, &|| context.to_owned());
                        let ingest_ctx = ingest.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
                            trace_id: ctx.trace_id,
                            parent: id,
                        });
                        // Chunk ingestion clones handles: the executor's
                        // input records share the batch's values.
                        let input: Vec<(Payload, Payload)> = readings
                            .iter()
                            .filter_map(|r| r.group.clone().map(|g| (g, r.value.clone())))
                            .collect();
                        let adapter = LogicAdapter(mr.as_ref());
                        let mut job = match self.processing {
                            ProcessingMode::Serial => Job::serial(),
                            ProcessingMode::Parallel(workers) => Job::parallel(workers),
                        }
                        .task_retries(self.recovery.task_retries)
                        .allow_partial(true);
                        if let Some(speculation) = self.recovery.task_speculation {
                            job = job.speculation(speculation);
                        }
                        if let Some(plan) = self.faults.as_ref().and_then(FaultInjector::task_plan)
                        {
                            job = job.fault_plan(plan.clone());
                        }
                        let outcome = match job.try_run_to_map(&adapter, input) {
                            Ok(result) => {
                                let phases = [
                                    ("map", result.stats.map_time),
                                    ("shuffle", result.stats.shuffle_time),
                                    ("reduce", result.stats.reduce_time),
                                ];
                                if self.obs.is_enabled() {
                                    // Surface the executor's per-phase wall
                                    // times as processing durations.
                                    for (phase, time) in phases {
                                        let us =
                                            u64::try_from(time.as_micros()).unwrap_or(u64::MAX);
                                        self.obs.record(
                                            Activity::Processing,
                                            &format!("{context}/{phase}"),
                                            us,
                                        );
                                    }
                                }
                                if ingest_ctx.is_active() {
                                    let now = self.queue.now();
                                    for (phase, time) in phases {
                                        let us =
                                            u64::try_from(time.as_micros()).unwrap_or(u64::MAX);
                                        let label = if self.obs.spans_materializing() {
                                            format!("{context}/{phase}")
                                        } else {
                                            String::new()
                                        };
                                        let id = self.obs.open_span(
                                            ingest_ctx.trace_id,
                                            ingest_ctx.parent,
                                            SpanStage::Compute,
                                            &label,
                                            now,
                                        );
                                        self.obs.close_span(id, now, us);
                                    }
                                }
                                self.account_batch_processing(
                                    context,
                                    &result.stats,
                                    &result.failed_tasks,
                                );
                                (Some(result.output), Some(result.stats.coverage))
                            }
                            Err(err) => {
                                // Unreachable while `allow_partial` is set,
                                // but contained rather than trusted.
                                self.contain(RuntimeError::Configuration(format!(
                                    "context `{context}` batch processing failed: {err}"
                                )));
                                (None, None)
                            }
                        };
                        self.end_wall_span(ingest);
                        outcome
                    }
                    None => {
                        self.contain(RuntimeError::Configuration(format!(
                            "context `{context}` reached a MapReduce batch without phases"
                        )));
                        (None, None)
                    }
                }
            }
            None => (None, None),
        };

        let batch = BatchData {
            device_type: device,
            source,
            readings,
            grouped,
            reduced,
            coverage,
            window_ms,
        };
        self.activate_context(
            context,
            activation_idx,
            ContextActivation::Batch(&batch),
            ctx,
        );
        self.end_wall_span(open);
    }

    /// Folds one batch execution's fault-tolerance outcome into metrics,
    /// traces, observability, and the context's `@quality` verdict.
    fn account_batch_processing(
        &mut self,
        context: &str,
        stats: &ExecutionStats,
        failed_tasks: &[TaskError],
    ) {
        let coverage = stats.coverage;
        self.metrics.task_retries += u64::from(coverage.task_retries);
        self.metrics.task_speculations += u64::from(coverage.speculative_attempts);
        self.metrics.tasks_failed += failed_tasks.len() as u64;
        if coverage.injected_faults > 0 {
            self.metrics.faults_injected += u64::from(coverage.injected_faults);
            if let Some(injector) = self.faults.as_mut() {
                for _ in 0..coverage.injected_faults {
                    injector.count_injection();
                }
            }
        }
        let at = self.queue.now();
        if self.trace_active() {
            for failed in failed_tasks {
                self.record_trace(
                    at,
                    TraceKind::TaskFailed {
                        context: context.to_owned(),
                        phase: failed.phase.to_string(),
                        task: u32::try_from(failed.task).unwrap_or(u32::MAX),
                        attempts: failed.attempts,
                    },
                );
            }
        }
        if self.obs.is_enabled() && !stats.recovery_time.is_zero() {
            let us = u64::try_from(stats.recovery_time.as_micros()).unwrap_or(u64::MAX);
            self.obs
                .record(Activity::Recovering, &format!("{context}/tasks"), us);
        }
        let budget = self
            .quality_budgets
            .get(context)
            .copied()
            .unwrap_or_default();
        // A missed processing deadline is a QoS violation, not lost
        // coverage: the results are complete, just late.
        if budget
            .deadline_ms
            .is_some_and(|ms| stats.total_time() > Duration::from_millis(ms))
        {
            self.metrics.qos_violations += 1;
        }
        let coverage_pct = coverage.percent_covered();
        if coverage_pct < budget.coverage_pct {
            self.metrics.batches_degraded += 1;
            if self.trace_active() {
                self.record_trace(
                    at,
                    TraceKind::BatchDegraded {
                        context: context.to_owned(),
                        coverage_pct,
                        threshold_pct: budget.coverage_pct,
                        failed_tasks: u32::try_from(failed_tasks.len()).unwrap_or(u32::MAX),
                    },
                );
            }
            self.contain(RuntimeError::DegradedBatch {
                context: context.to_owned(),
                coverage_pct,
                threshold_pct: budget.coverage_pct,
            });
        }
    }

    // ---- component activation ---------------------------------------------

    fn activate_context(
        &mut self,
        name: &str,
        activation_idx: usize,
        input: ContextActivation<'_>,
        span: SpanCtx,
    ) {
        let publish_mode = match self
            .spec
            .context(name)
            .and_then(|c| c.activations.get(activation_idx))
        {
            Some(a) => a.publish,
            None => return,
        };
        let Some(mut logic) = self.contexts.get_mut(name).and_then(|r| r.logic.take()) else {
            self.contain(RuntimeError::ContractViolation {
                component: name.to_owned(),
                message: "re-entrant activation (a `get` cycle at runtime?)".to_owned(),
            });
            return;
        };
        self.metrics.context_activations += 1;
        if self.trace_active() {
            let at = self.queue.now();
            self.record_trace(
                at,
                TraceKind::ContextActivation {
                    context: name.to_owned(),
                },
            );
        }
        // The compute span stays open while the logic runs so actuations
        // and query-driven computations nest under it (via span_cursor);
        // it closes before the resulting publication is admitted.
        let compute = self.begin_wall_span(span, SpanStage::Compute, &|| name.to_owned());
        let ctx = compute.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
            trace_id: span.trace_id,
            parent: id,
        });
        let prev = std::mem::replace(&mut self.span_cursor, ctx);
        let started = self.obs.is_enabled().then(std::time::Instant::now);
        let result = {
            let mut api = ContextApi {
                backend: ApiBackend::Engine(self),
                context: name,
            };
            logic.activate(&mut api, input)
        };
        self.span_cursor = prev;
        if let Some(t0) = started {
            self.obs
                .record(Activity::Processing, name, obs::elapsed_us(t0));
        }
        self.end_wall_span(compute);
        self.contexts.get_mut(name).expect("context exists").logic = Some(logic);

        match result {
            Err(e) => self.contain(e.into()),
            Ok(maybe_value) => self.handle_publication(name, publish_mode, maybe_value, ctx),
        }
    }

    fn activate_controller(&mut self, name: &str, from: &str, value: &Value, span: SpanCtx) {
        let Some(mut logic) = self.controllers.get_mut(name).and_then(|r| r.logic.take()) else {
            self.contain(RuntimeError::ContractViolation {
                component: name.to_owned(),
                message: "re-entrant controller activation".to_owned(),
            });
            return;
        };
        self.metrics.controller_activations += 1;
        if self.trace_active() {
            let at = self.queue.now();
            self.record_trace(
                at,
                TraceKind::ControllerActivation {
                    controller: name.to_owned(),
                    from: from.to_owned(),
                },
            );
        }
        let compute = self.begin_wall_span(span, SpanStage::Compute, &|| name.to_owned());
        let ctx = compute.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
            trace_id: span.trace_id,
            parent: id,
        });
        let prev = std::mem::replace(&mut self.span_cursor, ctx);
        let started = self.obs.is_enabled().then(std::time::Instant::now);
        let result = {
            let mut api = ControllerApi {
                backend: ApiBackend::Engine(self),
                controller: name,
            };
            logic.on_context(&mut api, from, value)
        };
        self.span_cursor = prev;
        if let Some(t0) = started {
            self.obs
                .record(Activity::Processing, name, obs::elapsed_us(t0));
        }
        self.end_wall_span(compute);
        self.controllers
            .get_mut(name)
            .expect("controller exists")
            .logic = Some(logic);
        if let Err(e) = result {
            self.contain(e.into());
        }
    }

    /// Computes the on-demand value of a `when required` context.
    pub(crate) fn compute_on_demand(&mut self, name: &str) -> Result<Value, RuntimeError> {
        let ctx_decl = self
            .spec
            .context(name)
            .ok_or_else(|| RuntimeError::Unknown {
                kind: "context",
                name: name.to_owned(),
            })?;
        if !ctx_decl.is_required() {
            return Err(RuntimeError::ContractViolation {
                component: name.to_owned(),
                message: "context does not declare `when required`".to_owned(),
            });
        }
        let output_ty = ctx_decl.output.clone();
        let Some(mut logic) = self.contexts.get_mut(name).and_then(|r| r.logic.take()) else {
            return Err(RuntimeError::ContractViolation {
                component: name.to_owned(),
                message: "re-entrant on-demand computation (a `get` cycle?)".to_owned(),
            });
        };
        self.metrics.on_demand_computations += 1;
        self.metrics.context_activations += 1;
        // Query-driven computation nests under whatever activation asked
        // for it (the span cursor), forming a compute-inside-compute
        // chain for `get` cascades.
        let cursor = self.span_cursor;
        let compute = self.begin_wall_span(cursor, SpanStage::Compute, &|| name.to_owned());
        let ctx = compute.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
            trace_id: cursor.trace_id,
            parent: id,
        });
        let prev = std::mem::replace(&mut self.span_cursor, ctx);
        let started = self.obs.is_enabled().then(std::time::Instant::now);
        let result = {
            let mut api = ContextApi {
                backend: ApiBackend::Engine(self),
                context: name,
            };
            logic.activate(&mut api, ContextActivation::OnDemand)
        };
        self.span_cursor = prev;
        if let Some(t0) = started {
            self.obs
                .record(Activity::Processing, name, obs::elapsed_us(t0));
        }
        self.end_wall_span(compute);
        self.contexts.get_mut(name).expect("context exists").logic = Some(logic);

        let computed = result.map_err(RuntimeError::from)?;
        let value = match computed {
            Some(value) => {
                if !value.conforms_to(&output_ty, &self.spec) {
                    return Err(RuntimeError::TypeMismatch {
                        at: format!("on-demand value of context `{name}`"),
                        expected: output_ty.to_string(),
                        found: value.to_string(),
                    });
                }
                self.contexts
                    .get_mut(name)
                    .expect("context exists")
                    .last_value = Some(Payload::new(value.clone()));
                value
            }
            // Fall back to the most recent value when the logic has
            // nothing fresher (e.g. it accumulates from periodic polls).
            None => self
                .contexts
                .get(name)
                .and_then(|r| r.last_value.as_deref().cloned())
                .ok_or_else(|| RuntimeError::ContractViolation {
                    component: name.to_owned(),
                    message: "on-demand computation produced no value and none is cached"
                        .to_owned(),
                })?,
        };
        Ok(value)
    }
}

/// Adapts a dynamic [`MapReduceLogic`] to the typed
/// [`diaspec_mapreduce::MapReduce`] interface. Input records are payload
/// handles; `&Payload` dereferences to [`Value`] at the trait boundary.
struct LogicAdapter<'a>(&'a dyn MapReduceLogic);

impl MapReduce<Payload, Payload, Value, Value, Value, Value> for LogicAdapter<'_> {
    fn map(&self, key: &Payload, value: &Payload, collector: &mut MapCollector<Value, Value>) {
        self.0.map(key, value, &mut |k, v| collector.emit_map(k, v));
    }

    fn reduce(&self, key: &Value, values: &[Value], collector: &mut ReduceCollector<Value, Value>) {
        collector.emit_reduce(key.clone(), self.0.reduce(key, values));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaspec_core::compile_str;
    use std::sync::Arc;

    /// A driver that accepts any actuation and serves no sources.
    struct AcceptAllDriver;

    impl crate::entity::DeviceInstance for AcceptAllDriver {
        fn query(&mut self, source: &str, _now: u64) -> Result<Value, crate::error::DeviceError> {
            Err(crate::error::DeviceError::new("test", source, "no sources"))
        }

        fn invoke(
            &mut self,
            _action: &str,
            _args: &[Value],
            _now: u64,
        ) -> Result<(), crate::error::DeviceError> {
            Ok(())
        }
    }

    #[test]
    fn end_to_end_chain_activates_each_stage_once() {
        let spec = Arc::new(
            compile_str(
                r#"
                device Button { source pressed as Boolean; }
                device Bell { action ring; }
                context Pressed as Boolean {
                  when provided pressed from Button always publish;
                }
                controller Ring { when provided Pressed do ring on Bell; }
                "#,
            )
            .unwrap(),
        );
        let mut orch = Orchestrator::new(spec);
        orch.register_context(
            "Pressed",
            |_: &mut ContextApi<'_>, _: ContextActivation<'_>| Ok(Some(Value::Bool(true))),
        )
        .unwrap();
        orch.register_controller("Ring", |api: &mut ControllerApi<'_>, _: &str, _: &Value| {
            for bell in api.discover("Bell")?.ids() {
                api.invoke(&bell, "ring", &[])?;
            }
            Ok(())
        })
        .unwrap();
        orch.bind_entity(
            "b1".into(),
            "Button",
            Default::default(),
            Box::new(|_: &str, _: u64| Ok(Value::Bool(false))),
        )
        .unwrap();
        orch.bind_entity(
            "bell-1".into(),
            "Bell",
            Default::default(),
            Box::new(AcceptAllDriver),
        )
        .unwrap();
        orch.launch().unwrap();
        orch.emit_at(5, &"b1".into(), "pressed", Value::Bool(true), None)
            .unwrap();
        orch.run_until(10);
        assert_eq!(orch.metrics().emissions, 1);
        assert_eq!(orch.metrics().context_activations, 1);
        assert_eq!(orch.metrics().publications, 1);
        assert_eq!(orch.metrics().controller_activations, 1);
        assert_eq!(orch.metrics().actuations, 1);
    }

    #[test]
    fn fan_out_shares_one_payload_across_all_deliveries() {
        let spec = Arc::new(
            compile_str(
                r#"
                device Sensor { source reading as Integer; }
                context A as Integer { when provided reading from Sensor maybe publish; }
                context B as Integer { when provided reading from Sensor maybe publish; }
                context C as Integer { when provided reading from Sensor maybe publish; }
                "#,
            )
            .unwrap(),
        );
        let mut orch = Orchestrator::new(spec);
        for name in ["A", "B", "C"] {
            orch.register_context(
                name,
                |_: &mut ContextApi<'_>, activation: ContextActivation<'_>| {
                    if let ContextActivation::SourceEvent { value, .. } = activation {
                        assert_eq!(value.as_int(), Some(42));
                    }
                    Ok(None)
                },
            )
            .unwrap();
        }
        orch.bind_entity(
            "s1".into(),
            "Sensor",
            Default::default(),
            Box::new(|_: &str, _: u64| Ok(Value::Int(42))),
        )
        .unwrap();
        orch.launch().unwrap();
        orch.emit_at(1, &"s1".into(), "reading", Value::Int(42), None)
            .unwrap();
        orch.run_until(5);
        assert_eq!(orch.metrics().emissions, 1);
        assert_eq!(orch.metrics().context_activations, 3);
        assert_eq!(orch.metrics().messages_delivered, 3);
    }
}

//! Stage 3 — **schedule**: a routed event crosses the simulated
//! transport.
//!
//! Scheduling samples one transport hop per delivery event: latency, the
//! fault injector's message faults (drop / extra delay / duplicate), QoS
//! budget checks, and retry-with-backoff for dropped deliveries. Two
//! orderings here are part of the deterministic event order the golden
//! traces pin:
//!
//! - an injected **duplicate is scheduled before the primary** copy;
//! - the fault injector's RNG is consulted exactly once per send, in
//!   send order, so the fault sequence of a seeded run is reproducible.
//!
//! Because events carry [`Payload`](crate::payload::Payload) handles,
//! scheduling a duplicate or boxing an event for retry clones pointers,
//! never values.

use crate::clock::SimTime;
use crate::engine::Orchestrator;
use crate::obs::Activity;
use crate::spans::{SpanCtx, SpanStage};
use crate::trace::TraceKind;
use crate::transport::SendOutcome;

use super::Event;

impl Orchestrator {
    /// Checks a sampled delivery latency against the receiving context's
    /// declared `@qos(latencyMs = N)` budget (paper \[15\]).
    pub(crate) fn check_qos(&mut self, context: &str, latency: SimTime) {
        if let Some(budget) = self.qos_budgets.get(context) {
            if latency > *budget {
                self.metrics.qos_violations += 1;
                let at = self.queue.now();
                self.record_trace(
                    at,
                    TraceKind::Error {
                        message: format!(
                            "QoS violation: delivery to `{context}` took {latency} ms                              (budget {budget} ms)"
                        ),
                    },
                );
            }
        }
    }

    /// Samples one message across the transport, applying the fault
    /// injector when enabled; injected message faults are counted and
    /// traced here.
    pub(crate) fn sample_send(&mut self) -> SendOutcome {
        let Some(injector) = self.faults.as_mut() else {
            return SendOutcome::without_faults(self.transport.send());
        };
        let outcome = self.transport.send_through(injector);
        let at = self.queue.now();
        if outcome.fault_dropped {
            self.metrics.faults_injected += 1;
            if self.trace_active() {
                self.record_trace(
                    at,
                    TraceKind::FaultInjected {
                        fault: "message drop".to_owned(),
                    },
                );
            }
        }
        if outcome.extra_delay_ms > 0 {
            self.metrics.faults_injected += 1;
            if self.trace_active() {
                self.record_trace(
                    at,
                    TraceKind::FaultInjected {
                        fault: format!("message delay +{} ms", outcome.extra_delay_ms),
                    },
                );
            }
        }
        if outcome.duplicate.is_some() {
            self.metrics.faults_injected += 1;
            if self.trace_active() {
                self.record_trace(
                    at,
                    TraceKind::FaultInjected {
                        fault: "message duplicate".to_owned(),
                    },
                );
            }
        }
        outcome
    }

    /// Sends `event` across the transport (and the fault injector when
    /// enabled): schedules it on delivery, schedules the injected
    /// duplicate copy too, and arranges retry-with-backoff when the fault
    /// injector dropped the message. `attempt` numbers the send (initial
    /// send = 1) and `first_sent_at` anchors the retry timeout.
    pub(crate) fn send_event(
        &mut self,
        target: &str,
        qos_context: bool,
        mut event: Event,
        attempt: u32,
        first_sent_at: SimTime,
    ) {
        let outcome = self.sample_send();
        // The schedule span covers the simulated transport hop — sim-time
        // extent, recorded as a sibling per scheduled copy. The base
        // context deliberately keeps the *route* parent so a retried
        // send's schedule span is a sibling of the failed one.
        let base = event.span();
        if let Some(latency) = outcome.duplicate {
            self.metrics.messages_delivered += 1;
            self.metrics.total_transport_latency_ms += latency;
            self.obs.record(Activity::Delivering, target, latency);
            let mut copy = event.clone();
            if base.is_active() {
                copy.set_span(self.schedule_span(base, target, latency));
            }
            self.queue.schedule_in(latency, copy);
        }
        match outcome.delivery {
            Some(latency) => {
                self.metrics.messages_delivered += 1;
                self.metrics.total_transport_latency_ms += latency;
                self.obs.record(Activity::Delivering, target, latency);
                if qos_context {
                    self.check_qos(target, latency);
                }
                if base.is_active() {
                    event.set_span(self.schedule_span(base, target, latency));
                }
                self.queue.schedule_in(latency, event);
            }
            None if outcome.fault_dropped => {
                self.schedule_retry(target, event, attempt, first_sent_at);
            }
            None => self.metrics.messages_lost += 1,
        }
    }

    /// Records one transport-hop schedule span (sim-time extent `latency`
    /// from now) under `base` and returns the context the scheduled copy
    /// should carry so its dispatch parents under this hop.
    pub(crate) fn schedule_span(
        &mut self,
        base: SpanCtx,
        target: &str,
        latency: SimTime,
    ) -> SpanCtx {
        let label = if self.obs.spans_materializing() {
            target.to_owned()
        } else {
            String::new()
        };
        let now = self.queue.now();
        let id = self.obs.record_span(
            base.trace_id,
            base.parent,
            SpanStage::Schedule,
            &label,
            now,
            now + latency,
        );
        SpanCtx {
            trace_id: base.trace_id,
            parent: id,
        }
    }

    /// Arranges a backoff resend after the fault injector dropped a
    /// delivery. `failed_attempt` is the send attempt that just failed
    /// (initial send = 1); the delivery is abandoned once the configured
    /// retry budget or timeout is exhausted — or immediately when no
    /// retry is configured.
    fn schedule_retry(
        &mut self,
        target: &str,
        event: Event,
        failed_attempt: u32,
        first_sent_at: SimTime,
    ) {
        let Some(retry) = self.recovery.retry else {
            self.metrics.messages_lost += 1;
            return;
        };
        let now = self.queue.now();
        let backoff = retry.backoff_ms(failed_attempt);
        let retries_exhausted = failed_attempt > retry.max_attempts;
        let timed_out =
            now.saturating_add(backoff).saturating_sub(first_sent_at) > retry.timeout_ms;
        if retries_exhausted || timed_out {
            self.metrics.deliveries_abandoned += 1;
            self.metrics.messages_lost += 1;
            return;
        }
        self.metrics.delivery_retries += 1;
        self.record_trace(
            now,
            TraceKind::DeliveryRetry {
                to: target.to_owned(),
                attempt: failed_attempt,
            },
        );
        // Recovery cost: the backoff this delivery now waits out.
        self.obs.record(Activity::Recovering, target, backoff);
        // The retry span covers the backoff wait, a sibling of the failed
        // hop's schedule span (the boxed event keeps its route parent, so
        // the resend's schedule span lands beside this one too).
        let base = event.span();
        if base.is_active() {
            let label = if self.obs.spans_materializing() {
                target.to_owned()
            } else {
                String::new()
            };
            self.obs.record_span(
                base.trace_id,
                base.parent,
                SpanStage::Retry,
                &label,
                now,
                now + backoff,
            );
        }
        self.queue.schedule_in(
            backoff,
            Event::Redeliver {
                event: Box::new(event),
                attempt: failed_attempt + 1,
                first_sent_at,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use diaspec_core::compile_str;
    use std::sync::Arc;

    fn orchestrator() -> Orchestrator {
        let spec = Arc::new(
            compile_str(
                r#"
                device Sensor { source reading as Integer; }
                @qos(latencyMs = 1)
                context Tight as Integer {
                  when provided reading from Sensor maybe publish;
                }
                "#,
            )
            .unwrap(),
        );
        Orchestrator::new(spec)
    }

    #[test]
    fn qos_budget_violations_are_counted_and_traced() {
        let mut orch = orchestrator();
        orch.set_tracing(true);
        orch.check_qos("Tight", 5);
        assert_eq!(orch.metrics().qos_violations, 1);
        let trace = orch.take_trace();
        assert_eq!(trace.len(), 1);
        assert!(matches!(&trace[0].kind, TraceKind::Error { message }
            if message.contains("QoS violation") && message.contains("budget 1 ms")));
        // Within budget, and contexts without a budget, never violate.
        orch.check_qos("Tight", 1);
        orch.check_qos("Unbudgeted", 1_000_000);
        assert_eq!(orch.metrics().qos_violations, 1);
    }

    #[test]
    fn ideal_transport_delivers_immediately_without_faults() {
        let mut orch = orchestrator();
        let event = Event::ContextDeliver {
            context: "Tight".into(),
            from: "X".into(),
            value: crate::payload::Payload::new(Value::Int(1)),
            activation_idx: 0,
            span: SpanCtx::NONE,
        };
        orch.send_event("Tight", true, event, 1, 0);
        assert_eq!(orch.metrics().messages_delivered, 1);
        assert_eq!(orch.metrics().messages_lost, 0);
        assert_eq!(orch.metrics().qos_violations, 0);
    }
}

//! Stage 2 — **route**: resolve an admitted payload to its subscribers.
//!
//! Subscriptions are declared in the spec and the spec is immutable, so
//! the engine resolves them once, at construction, into a [`RouteTable`]:
//! `(device type, source)` → the event-driven context subscribers, and
//! `context` → the downstream context/controller subscribers. The hot
//! fan-out paths then walk a precomputed slice instead of re-filtering
//! every declared context per emission.
//!
//! Ordering is part of the engine's determinism contract: routes preserve
//! the name-ordered subscriber enumeration of
//! [`CheckedSpec::subscribers_of_source`] and
//! [`CheckedSpec::subscribers_of_context`] (contexts before controllers),
//! so the refactor from dynamic lookup to table lookup is
//! trace-invisible. Activation indices are resolved at build time with
//! the same predicate the dynamic lookup used, which makes the stored
//! index provably equal to a delivery-time resolution.

use crate::engine::Orchestrator;
use crate::entity::EntityId;
use crate::payload::Payload;
use crate::spans::{SpanCtx, SpanStage};
use diaspec_core::model::{ActivationTrigger, CheckedSpec, Subscriber};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use super::Event;

/// One event-driven subscription of a context to a `(device, source)`
/// emission.
pub(crate) struct SourceRoute {
    /// The subscribed context.
    pub(crate) context: String,
    /// Index of the matching `when provided ... from ...` activation.
    pub(crate) activation_idx: usize,
}

/// One subscription to a context's publications.
pub(crate) enum ContextRoute {
    /// A downstream context (`when provided Ctx`); QoS budgets apply.
    Context {
        name: String,
        /// Index of the matching `when provided Ctx` activation.
        activation_idx: usize,
    },
    /// A subscribed controller.
    Controller { name: String },
}

/// The precomputed subscription tables. Built once per orchestrator from
/// the immutable spec; see the [module docs](self).
pub(crate) struct RouteTable {
    /// `(concrete device type, source)` → event-driven subscribers, in
    /// spec (name) order. Only non-empty routes are stored.
    source_routes: BTreeMap<(String, String), Vec<SourceRoute>>,
    /// Publishing context → subscribers (contexts first, then
    /// controllers, each in name order). Only non-empty routes are stored.
    context_routes: BTreeMap<String, Vec<ContextRoute>>,
}

impl RouteTable {
    /// Resolves every possible subscription in `spec`.
    pub(crate) fn build(spec: &CheckedSpec) -> Self {
        // Candidate sources: every source name appearing in an
        // event-driven (`when provided ... from ...`) trigger. Periodic
        // subscriptions poll; they never consume emissions.
        let mut event_sources: BTreeSet<&str> = BTreeSet::new();
        for ctx in spec.contexts() {
            for activation in &ctx.activations {
                if let ActivationTrigger::DeviceSource { source, .. } = &activation.trigger {
                    event_sources.insert(source);
                }
            }
        }
        let mut source_routes = BTreeMap::new();
        for device in spec.devices() {
            for source in &event_sources {
                let routes: Vec<SourceRoute> = spec
                    .subscribers_of_source(&device.name, source)
                    .into_iter()
                    .filter_map(|ctx| {
                        ctx.activations
                            .iter()
                            .position(|a| {
                                matches!(
                                    &a.trigger,
                                    ActivationTrigger::DeviceSource { device: d, source: s }
                                        if s == *source && spec.device_is_subtype(&device.name, d)
                                )
                            })
                            .map(|activation_idx| SourceRoute {
                                context: ctx.name.clone(),
                                activation_idx,
                            })
                    })
                    .collect();
                if !routes.is_empty() {
                    source_routes.insert((device.name.clone(), (*source).to_owned()), routes);
                }
            }
        }
        let mut context_routes = BTreeMap::new();
        for ctx in spec.contexts() {
            let routes: Vec<ContextRoute> = spec
                .subscribers_of_context(&ctx.name)
                .into_iter()
                .map(|subscriber| match subscriber {
                    Subscriber::Context(name) => {
                        let activation_idx = spec
                            .context(&name)
                            .and_then(|c| {
                                c.activations.iter().position(|a| {
                                    matches!(
                                        &a.trigger,
                                        ActivationTrigger::Context(from) if *from == ctx.name
                                    )
                                })
                            })
                            .expect("subscriber has a matching activation");
                        ContextRoute::Context {
                            name,
                            activation_idx,
                        }
                    }
                    Subscriber::Controller(name) => ContextRoute::Controller { name },
                })
                .collect();
            if !routes.is_empty() {
                context_routes.insert(ctx.name.clone(), routes);
            }
        }
        RouteTable {
            source_routes,
            context_routes,
        }
    }

    /// Event-driven subscribers of a `(concrete device type, source)`
    /// emission, in deterministic spec order. Empty when nothing
    /// subscribes.
    pub(crate) fn source_subscribers(&self, device_type: &str, source: &str) -> &[SourceRoute] {
        self.source_routes
            .get(&(device_type.to_owned(), source.to_owned()))
            .map_or(&[], Vec::as_slice)
    }

    /// Subscribers of `context`'s publications (contexts first, then
    /// controllers). Empty when nothing subscribes.
    pub(crate) fn context_subscribers(&self, context: &str) -> &[ContextRoute] {
        self.context_routes.get(context).map_or(&[], Vec::as_slice)
    }
}

impl Orchestrator {
    /// Fans an admitted emission out to its subscribed contexts: one
    /// [`Event::SourceDeliver`] per route, each carrying a clone of the
    /// shared payload handle. One route span covers the whole fan-out;
    /// each scheduled delivery parents under it.
    pub(crate) fn fan_out_emission(
        &mut self,
        device_type: &str,
        entity: &EntityId,
        source: &str,
        value: &Payload,
        index: Option<&Payload>,
        span: SpanCtx,
    ) {
        let routes = Arc::clone(&self.routes);
        let now = self.queue.now();
        let open = self.begin_wall_span(span, SpanStage::Route, &|| {
            format!("{device_type}.{source}")
        });
        let ctx = open.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
            trace_id: span.trace_id,
            parent: id,
        });
        for route in routes.source_subscribers(device_type, source) {
            let event = Event::SourceDeliver {
                context: route.context.clone(),
                entity: entity.clone(),
                device_type: device_type.to_owned(),
                source: source.to_owned(),
                value: value.clone(),
                index: index.cloned(),
                activation_idx: route.activation_idx,
                span: ctx,
            };
            self.send_event(&route.context, true, event, 1, now);
        }
        self.end_wall_span(open);
    }

    /// Fans an admitted publication out to its subscribers — downstream
    /// contexts (QoS-budgeted) first, then controllers, as declared.
    pub(crate) fn fan_out_publication(&mut self, context: &str, value: &Payload, span: SpanCtx) {
        let routes = Arc::clone(&self.routes);
        let now = self.queue.now();
        let open = self.begin_wall_span(span, SpanStage::Route, &|| context.to_owned());
        let ctx = open.map_or(SpanCtx::NONE, |(id, _)| SpanCtx {
            trace_id: span.trace_id,
            parent: id,
        });
        for route in routes.context_subscribers(context) {
            let (target, qos_context, event) = match route {
                ContextRoute::Context {
                    name,
                    activation_idx,
                } => (
                    name.as_str(),
                    true,
                    Event::ContextDeliver {
                        context: name.clone(),
                        from: context.to_owned(),
                        value: value.clone(),
                        activation_idx: *activation_idx,
                        span: ctx,
                    },
                ),
                ContextRoute::Controller { name } => (
                    name.as_str(),
                    false,
                    Event::ControllerDeliver {
                        controller: name.clone(),
                        from: context.to_owned(),
                        value: value.clone(),
                        span: ctx,
                    },
                ),
            };
            self.send_event(target, qos_context, event, 1, now);
        }
        self.end_wall_span(open);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaspec_core::compile_str;

    const SPEC: &str = r#"
        device Sensor { source reading as Integer; }
        device FineSensor extends Sensor { source precision as Integer; }
        device Panel { action show(v as Integer); }
        context First as Integer {
          when provided reading from Sensor always publish;
        }
        context Second as Integer {
          when provided reading from FineSensor always publish;
        }
        context Chained as Integer {
          when provided First maybe publish;
        }
        controller Show { when provided First do show on Panel; }
    "#;

    #[test]
    fn source_routes_respect_subtyping_and_order() {
        let spec = compile_str(SPEC).unwrap();
        let table = RouteTable::build(&spec);
        // A base-type emission reaches only the base-type subscriber...
        let base: Vec<&str> = table
            .source_subscribers("Sensor", "reading")
            .iter()
            .map(|r| r.context.as_str())
            .collect();
        assert_eq!(base, ["First"]);
        // ...while a subtype emission reaches both, in name order.
        let fine: Vec<&str> = table
            .source_subscribers("FineSensor", "reading")
            .iter()
            .map(|r| r.context.as_str())
            .collect();
        assert_eq!(fine, ["First", "Second"]);
        assert!(table.source_subscribers("Panel", "reading").is_empty());
        assert!(table.source_subscribers("Sensor", "absent").is_empty());
    }

    #[test]
    fn stored_activation_indices_match_dynamic_resolution() {
        let spec = compile_str(SPEC).unwrap();
        let table = RouteTable::build(&spec);
        for ((device, source), routes) in &table.source_routes {
            for route in routes {
                let dynamic = spec
                    .context(&route.context)
                    .unwrap()
                    .activations
                    .iter()
                    .position(|a| {
                        matches!(
                            &a.trigger,
                            ActivationTrigger::DeviceSource { device: d, source: s }
                                if s == source && spec.device_is_subtype(device, d)
                        )
                    });
                assert_eq!(dynamic, Some(route.activation_idx));
            }
        }
    }

    #[test]
    fn context_routes_list_contexts_before_controllers() {
        let spec = compile_str(SPEC).unwrap();
        let table = RouteTable::build(&spec);
        let routes = table.context_subscribers("First");
        assert_eq!(routes.len(), 2);
        assert!(
            matches!(&routes[0], ContextRoute::Context { name, activation_idx }
                if name == "Chained" && *activation_idx == 0)
        );
        assert!(matches!(&routes[1], ContextRoute::Controller { name } if name == "Show"));
        assert!(table.context_subscribers("Chained").is_empty());
    }
}

//! Stage 1 — **admit**: a value enters the delivery pipeline.
//!
//! Admission is the single place where a raw [`Value`] becomes a shared
//! [`Payload`] handle (one allocation); every later stage — routing
//! fan-out, injected duplicates, retry re-sends, window accumulation —
//! clones the handle. Admission also owns the entry-side design checks
//! and bookkeeping, in this order (the order is pinned by the golden
//! traces):
//!
//! - **emissions**: crashed-device gate → emission metric → `Emission`
//!   trace → device-type lookup, then hand-off to the route stage;
//! - **publications**: publish-mode contract (`always` must publish, `no`
//!   must not) → output-type conformance → publication metric →
//!   `Publication` trace → cache as the context's last value, then
//!   hand-off to the route stage.

use crate::engine::Orchestrator;
use crate::entity::EntityId;
use crate::error::RuntimeError;
use crate::obs;
use crate::payload::Payload;
use crate::spans::{SpanCtx, SpanStage};
use crate::trace::TraceKind;
use crate::value::Value;
use diaspec_core::model::PublishMode;

use super::Event;

impl Orchestrator {
    /// Emits a source value from an entity at absolute time `at`
    /// (event-driven delivery). Primarily used by tests and examples;
    /// simulation processes use
    /// [`ProcessApi::emit`](crate::engine::ProcessApi::emit).
    ///
    /// The value is wrapped into a shared [`Payload`] handle here, once;
    /// downstream fan-out clones the handle.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unknown`] if the entity is not bound or its device
    /// does not declare `source`.
    pub fn emit_at(
        &mut self,
        at: crate::clock::SimTime,
        entity: &EntityId,
        source: &str,
        value: Value,
        index: Option<Value>,
    ) -> Result<(), RuntimeError> {
        let info = self
            .registry
            .entity(entity)
            .ok_or_else(|| RuntimeError::Unknown {
                kind: "entity",
                name: entity.to_string(),
            })?;
        let device = self
            .spec
            .device(&info.device_type)
            .expect("bound entity has declared device");
        if device.source(source).is_none() {
            return Err(RuntimeError::Unknown {
                kind: "source",
                name: format!("{source} on {}", info.device_type),
            });
        }
        self.queue.schedule(
            at,
            Event::Emit {
                entity: entity.clone(),
                source: source.to_owned(),
                value: Payload::new(value),
                index: index.map(Payload::new),
            },
        );
        Ok(())
    }

    /// Admits one due emission and hands it to the route stage. Every
    /// emission mints a fresh trace when span tracing is on; the admit
    /// span closes before routing begins (the stages are sequential, not
    /// nested).
    pub(crate) fn dispatch_emit(
        &mut self,
        entity: &EntityId,
        source: &str,
        value: &Payload,
        index: Option<&Payload>,
    ) {
        let admit = if self.obs.spans_enabled() {
            let trace_id = self.obs.mint_trace();
            let label = if self.obs.spans_materializing() {
                format!("{entity}.{source}")
            } else {
                String::new()
            };
            let now = self.queue.now();
            let id = self
                .obs
                .open_span(trace_id, 0, SpanStage::Admit, &label, now);
            Some((trace_id, id, std::time::Instant::now()))
        } else {
            None
        };
        let device_type = self.admit_emission(entity, source);
        let span = match admit {
            Some((trace_id, id, t0)) => {
                let now = self.queue.now();
                self.obs.close_span(id, now, obs::elapsed_us(t0));
                SpanCtx {
                    trace_id,
                    parent: id,
                }
            }
            None => SpanCtx::NONE,
        };
        let Some(device_type) = device_type else {
            return;
        };
        self.fan_out_emission(&device_type, entity, source, value, index, span);
    }

    /// Entry checks and bookkeeping for an emission; returns the emitting
    /// entity's concrete device type when the emission proceeds.
    fn admit_emission(&mut self, entity: &EntityId, source: &str) -> Option<String> {
        // A crashed device emits nothing until it restarts.
        if self.faults.is_some() && self.registry.is_crashed(entity) {
            return None;
        }
        self.metrics.emissions += 1;
        if self.trace_active() {
            let at = self.queue.now();
            self.record_trace(
                at,
                TraceKind::Emission {
                    entity: entity.to_string(),
                    source: source.to_owned(),
                },
            );
        }
        // The entity may have been unbound between emission and dispatch.
        let info = self.registry.entity(entity)?;
        Some(info.device_type.clone())
    }

    /// Enforces an activation's declared publish mode on its result.
    /// `span` carries the activating computation's trace so the resulting
    /// publication joins it ([`SpanCtx::NONE`] starts a fresh trace).
    pub(crate) fn handle_publication(
        &mut self,
        context: &str,
        mode: PublishMode,
        value: Option<Value>,
        span: SpanCtx,
    ) {
        match (mode, value) {
            (PublishMode::Always, None) => {
                self.contain(RuntimeError::ContractViolation {
                    component: context.to_owned(),
                    message: "activation declared `always publish` but produced no value"
                        .to_owned(),
                });
            }
            (PublishMode::No, Some(_)) => {
                self.contain(RuntimeError::ContractViolation {
                    component: context.to_owned(),
                    message: "activation declared `no publish` but produced a value".to_owned(),
                });
            }
            (PublishMode::Maybe, None) => {
                self.metrics.publications_declined += 1;
            }
            (PublishMode::No, None) => {}
            (PublishMode::Always | PublishMode::Maybe, Some(value)) => {
                self.publish(context, value, span);
            }
        }
    }

    /// Admits one context publication — conformance check, bookkeeping,
    /// last-value cache — then hands it to the route stage.
    fn publish(&mut self, context: &str, value: Value, span: SpanCtx) {
        let output_ty = match self.spec.context(context) {
            Some(c) => c.output.clone(),
            None => return,
        };
        if !value.conforms_to(&output_ty, &self.spec) {
            self.contain(RuntimeError::TypeMismatch {
                at: format!("publication of context `{context}`"),
                expected: output_ty.to_string(),
                found: value.to_string(),
            });
            return;
        }
        let admit = if self.obs.spans_enabled() {
            let trace_id = if span.is_active() {
                span.trace_id
            } else {
                self.obs.mint_trace()
            };
            let parent = if span.is_active() { span.parent } else { 0 };
            let label = if self.obs.spans_materializing() {
                context.to_owned()
            } else {
                String::new()
            };
            let now = self.queue.now();
            let id = self
                .obs
                .open_span(trace_id, parent, SpanStage::Admit, &label, now);
            Some((trace_id, id, std::time::Instant::now()))
        } else {
            None
        };
        let payload = Payload::new(value);
        self.metrics.publications += 1;
        if self.trace_active() {
            let at = self.queue.now();
            self.record_trace(
                at,
                TraceKind::Publication {
                    context: context.to_owned(),
                    value: payload.to_string(),
                },
            );
        }
        if let Some(runtime) = self.contexts.get_mut(context) {
            runtime.last_value = Some(payload.clone());
        }
        let ctx = match admit {
            Some((trace_id, id, t0)) => {
                let now = self.queue.now();
                self.obs.close_span(id, now, obs::elapsed_us(t0));
                SpanCtx {
                    trace_id,
                    parent: id,
                }
            }
            None => SpanCtx::NONE,
        };
        self.fan_out_publication(context, &payload, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaspec_core::compile_str;
    use std::sync::Arc;

    fn orchestrator() -> Orchestrator {
        let spec = Arc::new(
            compile_str(
                r#"
                device Sensor { source reading as Integer; }
                context Watch as Integer {
                  when provided reading from Sensor always publish;
                }
                "#,
            )
            .unwrap(),
        );
        let mut orch = Orchestrator::new(spec);
        orch.bind_entity(
            "s1".into(),
            "Sensor",
            Default::default(),
            Box::new(|_: &str, _: u64| Ok(Value::Int(1))),
        )
        .unwrap();
        orch
    }

    #[test]
    fn emit_at_rejects_unbound_entities_and_undeclared_sources() {
        let mut orch = orchestrator();
        assert!(matches!(
            orch.emit_at(0, &"ghost".into(), "reading", Value::Int(1), None),
            Err(RuntimeError::Unknown { kind: "entity", .. })
        ));
        assert!(matches!(
            orch.emit_at(0, &"s1".into(), "humidity", Value::Int(1), None),
            Err(RuntimeError::Unknown { kind: "source", .. })
        ));
        assert!(orch
            .emit_at(0, &"s1".into(), "reading", Value::Int(1), None)
            .is_ok());
    }

    #[test]
    fn publication_must_conform_to_the_declared_output_type() {
        let mut orch = orchestrator();
        orch.register_context(
            "Watch",
            |_: &mut crate::engine::ContextApi<'_>, _: crate::component::ContextActivation<'_>| {
                Ok(Some(Value::Str("not an int".into())))
            },
        )
        .unwrap();
        orch.launch().unwrap();
        orch.emit_at(1, &"s1".into(), "reading", Value::Int(7), None)
            .unwrap();
        orch.run_until(10);
        assert_eq!(orch.metrics().publications, 0);
        let errors = orch.drain_errors();
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0].error, RuntimeError::TypeMismatch { .. }));
    }

    #[test]
    fn always_publish_without_a_value_is_a_contract_violation() {
        let mut orch = orchestrator();
        orch.register_context(
            "Watch",
            |_: &mut crate::engine::ContextApi<'_>, _: crate::component::ContextActivation<'_>| {
                Ok(None)
            },
        )
        .unwrap();
        orch.launch().unwrap();
        orch.emit_at(1, &"s1".into(), "reading", Value::Int(7), None)
            .unwrap();
        orch.run_until(10);
        let errors = orch.drain_errors();
        assert_eq!(errors.len(), 1);
        assert!(matches!(
            errors[0].error,
            RuntimeError::ContractViolation { .. }
        ));
    }
}

//! The staged delivery pipeline.
//!
//! Every message the orchestrator moves — source emissions, context
//! publications, periodic batches, retries — flows through four explicit
//! stages, mirroring the paper's §IV *delivering data* activity:
//!
//! 1. [`admit`] — a value enters the pipeline: it is validated against
//!    the design (declared source, output type, publish mode), counted,
//!    traced, and wrapped **exactly once** into a shared
//!    [`Payload`](crate::payload::Payload) handle;
//! 2. [`route`] — the admitted payload is resolved to its subscribers
//!    through the precomputed [`RouteTable`] (built from the immutable
//!    spec at construction), yielding one delivery event per subscriber —
//!    fan-out to N subscribers is N handle clones, never N deep copies;
//! 3. [`schedule`] — each delivery event crosses the simulated transport:
//!    latency is sampled, injected faults (drop / delay / duplicate) are
//!    applied and traced, QoS budgets are checked, and
//!    retry-with-backoff is arranged for dropped deliveries;
//! 4. [`dispatch`] — a due event leaves the queue and activates its
//!    target component (context, controller, process, or the engine's own
//!    periodic / fault / lease machinery).
//!
//! The stages communicate through the [`Event`] vocabulary below. Stage
//! order is load-bearing: admission side effects (metrics, traces) happen
//! before routing, and scheduling decisions (duplicate before primary)
//! are part of the engine's deterministic event order — the
//! pipeline-equivalence golden tests pin both.

pub(crate) mod admit;
pub(crate) mod dispatch;
pub(crate) mod route;
pub(crate) mod schedule;

pub(crate) use route::RouteTable;

use crate::clock::SimTime;
use crate::entity::EntityId;
use crate::payload::Payload;
use crate::registry::PolledReading;
use crate::spans::SpanCtx;

/// A scheduled pipeline event. Delivery events carry their value as a
/// shared [`Payload`] handle, so cloning an event (fan-out, injected
/// duplicates, retry re-sends) never deep-copies the value.
#[derive(Clone)]
pub(crate) enum Event {
    /// A process emitted a source value (event-driven delivery).
    Emit {
        entity: EntityId,
        source: String,
        value: Payload,
        index: Option<Payload>,
    },
    /// A source emission arrives at a subscribed context. The activation
    /// index was resolved at route time (the route predicate equals the
    /// activation-lookup predicate, so the resolution cannot diverge).
    SourceDeliver {
        context: String,
        entity: EntityId,
        device_type: String,
        source: String,
        value: Payload,
        index: Option<Payload>,
        activation_idx: usize,
        /// Causal-tracing correlation IDs ([`SpanCtx::NONE`] when span
        /// tracing was off at admission).
        span: SpanCtx,
    },
    /// A context publication arrives at a subscribed context.
    ContextDeliver {
        context: String,
        from: String,
        value: Payload,
        activation_idx: usize,
        span: SpanCtx,
    },
    /// A context publication arrives at a subscribed controller.
    ControllerDeliver {
        controller: String,
        from: String,
        value: Payload,
        span: SpanCtx,
    },
    /// Time to poll a periodic activation.
    PeriodicPoll {
        context: String,
        activation_idx: usize,
    },
    /// A gathered periodic batch arrives at its context.
    BatchDeliver {
        context: String,
        activation_idx: usize,
        readings: Vec<PolledReading>,
        window_ms: Option<u64>,
        span: SpanCtx,
    },
    /// A simulation process wakes.
    ProcessWake { idx: usize },
    /// A scheduled fault fires (index into the fault plan).
    Fault { idx: usize },
    /// Periodic lease sweep (scheduled when leases are enabled).
    LeaseCheck,
    /// A delivery dropped by an injected fault is re-sent with backoff.
    Redeliver {
        event: Box<Event>,
        /// The send attempt this resend constitutes (initial send = 1).
        attempt: u32,
        /// When the initial send happened, for the retry timeout.
        first_sent_at: SimTime,
    },
}

impl Event {
    /// Display label of the component a delivery event is addressed to.
    pub(crate) fn target(&self) -> &str {
        match self {
            Event::SourceDeliver { context, .. }
            | Event::ContextDeliver { context, .. }
            | Event::BatchDeliver { context, .. } => context,
            Event::ControllerDeliver { controller, .. } => controller,
            _ => "",
        }
    }

    /// Whether the event is addressed to a context (QoS budgets apply).
    pub(crate) fn targets_context(&self) -> bool {
        matches!(
            self,
            Event::SourceDeliver { .. } | Event::ContextDeliver { .. } | Event::BatchDeliver { .. }
        )
    }

    /// The causal-tracing context the event carries
    /// ([`SpanCtx::NONE`] for non-delivery events).
    pub(crate) fn span(&self) -> SpanCtx {
        match self {
            Event::SourceDeliver { span, .. }
            | Event::ContextDeliver { span, .. }
            | Event::ControllerDeliver { span, .. }
            | Event::BatchDeliver { span, .. } => *span,
            Event::Redeliver { event, .. } => event.span(),
            _ => SpanCtx::NONE,
        }
    }

    /// Re-parents the event under a new span (used by the schedule stage
    /// so each scheduled copy parents under its own transport span).
    pub(crate) fn set_span(&mut self, ctx: SpanCtx) {
        match self {
            Event::SourceDeliver { span, .. }
            | Event::ContextDeliver { span, .. }
            | Event::ControllerDeliver { span, .. }
            | Event::BatchDeliver { span, .. } => *span = ctx,
            Event::Redeliver { event, .. } => event.set_span(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn delivery_events_name_their_target() {
        let ev = Event::ContextDeliver {
            context: "Occupancy".into(),
            from: "Presence".into(),
            value: Payload::new(Value::Bool(true)),
            activation_idx: 0,
            span: SpanCtx::NONE,
        };
        assert_eq!(ev.target(), "Occupancy");
        assert!(ev.targets_context());
        let ev = Event::ControllerDeliver {
            controller: "Panel".into(),
            from: "Occupancy".into(),
            value: Payload::new(Value::Int(3)),
            span: SpanCtx::NONE,
        };
        assert_eq!(ev.target(), "Panel");
        assert!(!ev.targets_context());
        assert_eq!(Event::LeaseCheck.target(), "");
        assert!(!Event::LeaseCheck.targets_context());
    }

    #[test]
    fn contained_errors_are_bounded_under_sustained_failure() {
        use crate::engine::{Orchestrator, ERRORS_CAP};
        use crate::error::RuntimeError;
        use diaspec_core::compile_str;
        use std::sync::Arc;

        let spec = Arc::new(compile_str("device D { source s as Integer; }").unwrap());
        let mut orch = Orchestrator::new(spec);
        // A pathological run: one million contained failures. The buffer
        // must stop growing at the cap while the counters stay honest.
        const TOTAL: u64 = 1_000_000;
        for _ in 0..TOTAL {
            orch.contain(RuntimeError::Configuration("boom".to_owned()));
        }
        assert_eq!(orch.metrics().component_errors, TOTAL);
        assert_eq!(
            orch.errors_dropped(),
            TOTAL - u64::try_from(ERRORS_CAP).unwrap()
        );
        let buffered = orch.drain_errors();
        assert_eq!(buffered.len(), ERRORS_CAP);
        // Draining resets the overflow window.
        assert_eq!(orch.errors_dropped(), 0);
        orch.contain(RuntimeError::Configuration("boom".to_owned()));
        assert_eq!(orch.errors_dropped(), 0);
        assert_eq!(orch.drain_errors().len(), 1);
    }

    #[test]
    fn cloning_an_event_shares_its_payload() {
        let value = Payload::new(Value::Str("big".into()));
        let ev = Event::Emit {
            entity: "s1".into(),
            source: "presence".into(),
            value: value.clone(),
            index: None,
        };
        let copy = ev.clone();
        // Original handle + event + clone = 3 handles, one value.
        assert_eq!(value.handle_count(), 3);
        drop(copy);
        assert_eq!(value.handle_count(), 2);
    }
}

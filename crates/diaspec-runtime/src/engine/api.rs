//! Component registration, the component-facing facades, and the runtime
//! conformance checks behind them.
//!
//! The engine hands these facades to registered logic: [`ContextApi`] to
//! context activations, [`ControllerApi`] to controller activations, and
//! [`ProcessApi`] to simulation processes. Each facade validates every
//! read or actuation against the calling component's *declared*
//! interactions (`get` clauses, `do ... on ...` bindings), enforcing the
//! paper's Sense-Compute-Control conformance at runtime: a component
//! cannot touch data or devices its design does not declare.

use crate::clock::SimTime;
use crate::component::{ContextLogic, ControllerLogic, MapReduceLogic};
use crate::engine::Orchestrator;
use crate::entity::{AttributeMap, DeviceInstance, EntityId};
use crate::error::RuntimeError;
use crate::obs::{self, Activity};
use crate::registry::{DiscoveryQuery, ErrorPolicy, ReadView};
use crate::spans::SpanStage;
use crate::trace::TraceKind;
use crate::value::Value;
use diaspec_core::model::{CheckedSpec, InputRef};
use std::sync::Arc;

/// Whether `context` declares a `get` of the given device source
/// (directly or against an ancestor device). A free function over the
/// immutable spec so both the engine facade and shard workers run the
/// identical conformance check.
pub(crate) fn context_declares_source_get(
    spec: &CheckedSpec,
    context: &str,
    device: &str,
    source: &str,
) -> bool {
    let Some(ctx) = spec.context(context) else {
        return false;
    };
    ctx.activations.iter().any(|a| {
        a.gets.iter().any(|g| match g {
            InputRef::DeviceSource {
                device: d,
                source: s,
            } => s == source && spec.device_is_subtype(device, d),
            InputRef::Context(_) => false,
        })
    })
}

/// Whether `context` declares `get <target>` for another context.
pub(crate) fn context_declares_context_get(
    spec: &CheckedSpec,
    context: &str,
    target: &str,
) -> bool {
    let Some(ctx) = spec.context(context) else {
        return false;
    };
    ctx.activations.iter().any(|a| {
        a.gets
            .iter()
            .any(|g| matches!(g, InputRef::Context(c) if c == target))
    })
}

/// Whether `controller` declares `do action on device` (allowing the
/// concrete device to be a subtype of the declared one).
pub(crate) fn controller_declares_action(
    spec: &CheckedSpec,
    controller: &str,
    device: &str,
    action: &str,
) -> bool {
    let Some(ctrl) = spec.controller(controller) else {
        return false;
    };
    ctrl.bindings.iter().any(|b| {
        b.actions
            .iter()
            .any(|(a, d)| a == action && spec.device_is_subtype(device, d))
    })
}

/// Whether `controller` declares any action touching `device`'s family.
pub(crate) fn controller_declares_device(
    spec: &CheckedSpec,
    controller: &str,
    device: &str,
) -> bool {
    let Some(ctrl) = spec.controller(controller) else {
        return false;
    };
    ctrl.bindings.iter().any(|b| {
        b.actions
            .iter()
            .any(|(_, d)| spec.device_is_subtype(device, d) || spec.device_is_subtype(d, device))
    })
}

/// An actuation a shard worker validated but could not perform: workers
/// hold no device drivers, so the coordinator's sequenced merge replays
/// these through the real registry in deterministic item order.
#[derive(Debug)]
pub(crate) struct DeferredActuation {
    pub(crate) entity: EntityId,
    pub(crate) device_type: String,
    pub(crate) action: String,
    pub(crate) args: Vec<Value>,
}

/// What a facade executes against: the live engine (serial path and the
/// coordinator's merge replay), or a shard worker's immutable snapshot.
///
/// The shard backend can answer time, conformance checks, and discovery
/// identically to the engine; device queries are unreachable behind it
/// (only contexts without `get` clauses are shard-eligible, so the
/// declaration check always fails first) and actuations are deferred for
/// the merge to replay.
pub(crate) enum ApiBackend<'a> {
    Engine(&'a mut Orchestrator),
    Shard(ShardAccess<'a>),
}

/// The engine state a shard worker is allowed to see: the sim clock of
/// the round, the immutable spec, a registry snapshot, and a buffer of
/// deferred actuations.
pub(crate) struct ShardAccess<'a> {
    pub(crate) now: SimTime,
    pub(crate) spec: &'a CheckedSpec,
    pub(crate) view: &'a ReadView,
    pub(crate) actuations: &'a mut Vec<DeferredActuation>,
}

impl<'a> ApiBackend<'a> {
    fn now(&self) -> SimTime {
        match self {
            ApiBackend::Engine(engine) => engine.queue.now(),
            ApiBackend::Shard(shard) => shard.now,
        }
    }

    fn spec(&self) -> &CheckedSpec {
        match self {
            ApiBackend::Engine(engine) => &engine.spec,
            ApiBackend::Shard(shard) => shard.spec,
        }
    }

    /// Declared device type of a bound entity, or `None` if unbound.
    fn entity_device_type(&self, entity: &EntityId) -> Option<String> {
        match self {
            ApiBackend::Engine(engine) => engine
                .registry
                .entity(entity)
                .map(|info| info.device_type.clone()),
            ApiBackend::Shard(shard) => shard
                .view
                .entity(entity)
                .map(|info| info.device_type.clone()),
        }
    }

    fn discover(&self, device_type: &str) -> DiscoveryQuery<'_> {
        match self {
            ApiBackend::Engine(engine) => engine.registry.discover(device_type),
            ApiBackend::Shard(shard) => shard.view.discover(device_type),
        }
    }
}

/// Guard for facade paths a shard worker can never reach: shard
/// eligibility guarantees the conformance check rejects the call first,
/// so hitting this means the eligibility rules and the facade disagree.
fn shard_backend_unreachable(component: &str, what: &str) -> RuntimeError {
    RuntimeError::Configuration(format!(
        "component `{component}` attempted a {what} on a shard worker; \
         shard eligibility should have kept it on the coordinator"
    ))
}

impl Orchestrator {
    /// Registers the logic of a declared context.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unknown`] if the context is not declared,
    /// [`RuntimeError::Configuration`] if logic was already registered.
    pub fn register_context(
        &mut self,
        name: &str,
        logic: impl ContextLogic + 'static,
    ) -> Result<(), RuntimeError> {
        let runtime = self
            .contexts
            .get_mut(name)
            .ok_or_else(|| RuntimeError::Unknown {
                kind: "context",
                name: name.to_owned(),
            })?;
        if runtime.logic.is_some() {
            return Err(RuntimeError::Configuration(format!(
                "context `{name}` already has logic registered"
            )));
        }
        runtime.logic = Some(Box::new(logic));
        Ok(())
    }

    /// Registers the MapReduce phases of a context whose design declares
    /// `with map ... reduce ...`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unknown`] if the context is not declared,
    /// [`RuntimeError::Configuration`] if the design declares no MapReduce
    /// for it or phases were already registered.
    pub fn register_map_reduce(
        &mut self,
        name: &str,
        logic: impl MapReduceLogic + 'static,
    ) -> Result<(), RuntimeError> {
        let declared = self
            .spec
            .context(name)
            .ok_or_else(|| RuntimeError::Unknown {
                kind: "context",
                name: name.to_owned(),
            })?
            .uses_map_reduce();
        if !declared {
            return Err(RuntimeError::Configuration(format!(
                "context `{name}` declares no `with map ... reduce ...` clause"
            )));
        }
        let runtime = self.contexts.get_mut(name).expect("checked above");
        if runtime.map_reduce.is_some() {
            return Err(RuntimeError::Configuration(format!(
                "context `{name}` already has MapReduce phases registered"
            )));
        }
        runtime.map_reduce = Some(Arc::new(logic));
        Ok(())
    }

    /// Registers the logic of a declared controller.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unknown`] if the controller is not declared,
    /// [`RuntimeError::Configuration`] if logic was already registered.
    pub fn register_controller(
        &mut self,
        name: &str,
        logic: impl ControllerLogic + 'static,
    ) -> Result<(), RuntimeError> {
        let runtime = self
            .controllers
            .get_mut(name)
            .ok_or_else(|| RuntimeError::Unknown {
                kind: "controller",
                name: name.to_owned(),
            })?;
        if runtime.logic.is_some() {
            return Err(RuntimeError::Configuration(format!(
                "controller `{name}` already has logic registered"
            )));
        }
        runtime.logic = Some(Box::new(logic));
        Ok(())
    }

    pub(crate) fn controller_declares_device(&self, controller: &str, device: &str) -> bool {
        controller_declares_device(&self.spec, controller, device)
    }
}

/// The query facade handed to
/// [`ContextLogic`](crate::component::ContextLogic) activations: the
/// runtime counterpart of the generated `discover` parameter in the
/// paper's Figure 9.
///
/// Every read is validated against the calling context's declared `get`
/// clauses — a context cannot read data its design does not declare
/// (design/implementation conformance, paper §V).
pub struct ContextApi<'a> {
    pub(crate) backend: ApiBackend<'a>,
    pub(crate) context: &'a str,
}

impl ContextApi<'_> {
    /// Current simulation time in milliseconds.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.backend.now()
    }

    /// The name of the activated context.
    #[must_use]
    pub fn context_name(&self) -> &str {
        self.context
    }

    /// Query-driven read of a device source (`get src from Dev`): returns
    /// the current reading of every bound entity of the device family, in
    /// deterministic entity order.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ContractViolation`] if the context's design does
    /// not declare this `get`; device errors surface per the `@error`
    /// policy.
    pub fn get_device_source(
        &mut self,
        device_type: &str,
        source: &str,
    ) -> Result<Vec<(EntityId, Value)>, RuntimeError> {
        if !context_declares_source_get(self.backend.spec(), self.context, device_type, source) {
            return Err(RuntimeError::ContractViolation {
                component: self.context.to_owned(),
                message: format!("design declares no `get {source} from {device_type}`"),
            });
        }
        let ApiBackend::Engine(engine) = &mut self.backend else {
            // Contexts with `get` clauses are never shard-eligible, so the
            // declaration check above already rejected every shard call.
            return Err(shard_backend_unreachable(self.context, "device query"));
        };
        let now = engine.queue.now();
        let ids = engine.registry.discover(device_type).ids();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(value) = engine.registry.query_source(&id, source, now)? {
                engine.metrics.component_queries += 1;
                out.push((id, value));
            }
        }
        Ok(out)
    }

    /// Query-driven read of a single entity's source.
    ///
    /// # Errors
    ///
    /// As [`ContextApi::get_device_source`], plus
    /// [`RuntimeError::Unknown`] for an unbound entity.
    pub fn get_entity_source(
        &mut self,
        entity: &EntityId,
        source: &str,
    ) -> Result<Option<Value>, RuntimeError> {
        let device_type =
            self.backend
                .entity_device_type(entity)
                .ok_or_else(|| RuntimeError::Unknown {
                    kind: "entity",
                    name: entity.to_string(),
                })?;
        if !context_declares_source_get(self.backend.spec(), self.context, &device_type, source) {
            return Err(RuntimeError::ContractViolation {
                component: self.context.to_owned(),
                message: format!("design declares no `get {source} from {device_type}`"),
            });
        }
        let ApiBackend::Engine(engine) = &mut self.backend else {
            return Err(shard_backend_unreachable(self.context, "device query"));
        };
        let now = engine.queue.now();
        let value = engine.registry.query_source(entity, source, now)?;
        if value.is_some() {
            engine.metrics.component_queries += 1;
        }
        Ok(value)
    }

    /// Pulls the current value of another context (`get Ctx`); the target
    /// must declare `when required`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ContractViolation`] if this context's design does
    /// not declare `get <target>`, or the computation fails.
    pub fn get_context(&mut self, target: &str) -> Result<Value, RuntimeError> {
        if !context_declares_context_get(self.backend.spec(), self.context, target) {
            return Err(RuntimeError::ContractViolation {
                component: self.context.to_owned(),
                message: format!("design declares no `get {target}`"),
            });
        }
        let ApiBackend::Engine(engine) = &mut self.backend else {
            return Err(shard_backend_unreachable(self.context, "context pull"));
        };
        engine.metrics.component_queries += 1;
        engine.compute_on_demand(target)
    }

    /// Attribute-filtered discovery (read-only), e.g. to learn which
    /// entities exist in a group.
    #[must_use]
    pub fn discover(&self, device_type: &str) -> DiscoveryQuery<'_> {
        self.backend.discover(device_type)
    }
}

/// The actuation facade handed to
/// [`ControllerLogic`](crate::component::ControllerLogic) activations:
/// the runtime counterpart of the generated discover object in the
/// paper's Figure 11.
///
/// Actuation is validated against the controller's declared `do ... on
/// ...` clauses, enforcing the Sense-Compute-Control layering at runtime.
pub struct ControllerApi<'a> {
    pub(crate) backend: ApiBackend<'a>,
    pub(crate) controller: &'a str,
}

impl ControllerApi<'_> {
    /// Current simulation time in milliseconds.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.backend.now()
    }

    /// The name of the activated controller.
    #[must_use]
    pub fn controller_name(&self) -> &str {
        self.controller
    }

    /// Discovers entities of a device type this controller actuates.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ContractViolation`] if the controller's design
    /// declares no action on that device family.
    pub fn discover(&self, device_type: &str) -> Result<DiscoveryQuery<'_>, RuntimeError> {
        if !controller_declares_device(self.backend.spec(), self.controller, device_type) {
            return Err(RuntimeError::ContractViolation {
                component: self.controller.to_owned(),
                message: format!("design declares no action on device `{device_type}`"),
            });
        }
        Ok(self.backend.discover(device_type))
    }

    /// Invokes a declared action on an entity.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ContractViolation`] if the action/device pair is
    /// not declared by this controller (SCC enforcement); otherwise see
    /// [`crate::registry::Registry::invoke`].
    pub fn invoke(
        &mut self,
        entity: &EntityId,
        action: &str,
        args: &[Value],
    ) -> Result<(), RuntimeError> {
        let device_type =
            self.backend
                .entity_device_type(entity)
                .ok_or_else(|| RuntimeError::Unknown {
                    kind: "entity",
                    name: entity.to_string(),
                })?;
        if !controller_declares_action(self.backend.spec(), self.controller, &device_type, action) {
            return Err(RuntimeError::ContractViolation {
                component: self.controller.to_owned(),
                message: format!("design declares no `do {action} on {device_type}`"),
            });
        }
        match &mut self.backend {
            ApiBackend::Engine(engine) => {
                engine.invoke_for_controller(entity, &device_type, action, args)
            }
            ApiBackend::Shard(shard) => {
                // Workers hold no drivers: the conformance checks above
                // ran against the same spec and snapshot the coordinator
                // would use, so the actuation is recorded and replayed by
                // the sequenced merge in deterministic order. A driver
                // failure consequently surfaces as a contained error at
                // the merge instead of propagating into the logic — the
                // documented sharding envelope.
                shard.actuations.push(DeferredActuation {
                    entity: entity.clone(),
                    device_type,
                    action: action.to_owned(),
                    args: args.to_vec(),
                });
                Ok(())
            }
        }
    }
}

impl Orchestrator {
    /// Performs one validated controller actuation against the live
    /// registry: the driver call plus all its accounting (activity
    /// histogram, actuate/recover spans, metrics, traces, masked-fallback
    /// bookkeeping). Shared by the serial facade path and the shard
    /// merge's deferred-actuation replay.
    pub(crate) fn invoke_for_controller(
        &mut self,
        entity: &EntityId,
        device_type: &str,
        action: &str,
        args: &[Value],
    ) -> Result<(), RuntimeError> {
        let now = self.queue.now();
        // One Instant serves both the activity histogram and the actuate
        // span; taken only when either consumer is live.
        let cursor = self.span_cursor;
        let started = (self.obs.is_enabled() || cursor.is_active()).then(std::time::Instant::now);
        let fallbacks_before = self.registry.stats().fallback_invocations;
        self.registry.invoke(entity, action, args, now)?;
        if let Some(t0) = started {
            let us = obs::elapsed_us(t0);
            if self.obs.is_enabled() {
                let label = format!("{device_type}.{action}");
                self.obs.record(Activity::Actuating, &label, us);
            }
            if cursor.is_active() {
                // The actuate span nests inside the controller's open
                // compute span.
                let label = if self.obs.spans_materializing() {
                    format!("{device_type}.{action}")
                } else {
                    String::new()
                };
                let id = self.obs.open_span(
                    cursor.trace_id,
                    cursor.parent,
                    SpanStage::Actuate,
                    &label,
                    now,
                );
                self.obs.close_span(id, now, us);
            }
        }
        self.metrics.actuations += 1;
        self.record_trace(
            now,
            TraceKind::Actuation {
                entity: entity.to_string(),
                action: action.to_owned(),
            },
        );
        // The registry masked the failure with the device's declared
        // `@error(fallback = ...)` action: surface it as a recovery event.
        let masked = self.registry.stats().fallback_invocations - fallbacks_before;
        if masked > 0 {
            self.metrics.fallback_actuations += masked;
            let fallback = self
                .spec
                .device(device_type)
                .map(ErrorPolicy::of_device)
                .and_then(|policy| policy.fallback)
                .unwrap_or_default();
            self.record_trace(
                now,
                TraceKind::FallbackActuation {
                    entity: entity.to_string(),
                    action: fallback.clone(),
                },
            );
            // A masked fallback is a recovery episode inside the same
            // trace: a sibling of the actuate span.
            if cursor.is_active() {
                let label = if self.obs.spans_materializing() {
                    format!("{device_type}.{fallback}")
                } else {
                    String::new()
                };
                self.obs.record_span(
                    cursor.trace_id,
                    cursor.parent,
                    SpanStage::Recover,
                    &label,
                    now,
                    now,
                );
            }
        }
        Ok(())
    }
}

/// The facade handed to simulation [`Process`](crate::process::Process)es.
pub struct ProcessApi<'a> {
    pub(crate) engine: &'a mut Orchestrator,
}

impl ProcessApi<'_> {
    /// Current simulation time in milliseconds.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.engine.queue.now()
    }

    /// Emits a source value from an entity (event-driven delivery).
    ///
    /// # Errors
    ///
    /// See [`Orchestrator::emit_at`].
    pub fn emit(
        &mut self,
        entity: &EntityId,
        source: &str,
        value: Value,
        index: Option<Value>,
    ) -> Result<(), RuntimeError> {
        let now = self.engine.queue.now();
        self.engine.emit_at(now, entity, source, value, index)
    }

    /// Binds a new entity at runtime (paper §IV: runtime binding).
    ///
    /// # Errors
    ///
    /// See [`crate::registry::Registry::bind`].
    pub fn bind_entity(
        &mut self,
        id: EntityId,
        device_type: &str,
        attributes: AttributeMap,
        driver: Box<dyn DeviceInstance>,
    ) -> Result<(), RuntimeError> {
        self.engine.bind_entity(id, device_type, attributes, driver)
    }

    /// Unbinds an entity at runtime.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unknown`] if the entity is not bound.
    pub fn unbind_entity(&mut self, id: &EntityId) -> Result<(), RuntimeError> {
        self.engine.unbind_entity(id)
    }

    /// Read-only discovery, letting environment models inspect the world.
    #[must_use]
    pub fn discover(&self, device_type: &str) -> crate::registry::DiscoveryQuery<'_> {
        self.engine.registry.discover(device_type)
    }
}
